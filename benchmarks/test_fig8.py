"""Figure 8 benchmark: CFP-growth vs the FIMI/PARSEC algorithms."""

from functools import lru_cache

from repro.experiments import fig8


@lru_cache(maxsize=1)
def _panel_ab():
    return fig8.run(algorithms=fig8.PANEL_A_ALGORITHMS)


@lru_cache(maxsize=1)
def _panel_c():
    return fig8.run(algorithms=fig8.PANEL_C_ALGORITHMS)


@lru_cache(maxsize=1)
def _panel_d():
    return fig8.run(dataset="quest2", algorithms=fig8.PANEL_C_ALGORITHMS)


def test_fig8a_runtime(benchmark, save_report):
    result = benchmark.pedantic(_panel_ab, rounds=1, iterations=1)
    # §4.5: CFP-growth consistently outperforms all three FP-growth
    # variants across all supports.
    for point in result.points:
        cfp = point.runs["cfp-growth"].total_seconds
        for other in ("ct-pro", "fp-growth-tiny", "fp-array"):
            assert point.runs[other].total_seconds >= 0.99 * cfp, (
                point.min_support,
                other,
            )
    save_report("fig8ab", fig8.format_report(result, "(a,b)"))


def test_fig8b_memory(benchmark):
    result = benchmark.pedantic(_panel_ab, rounds=1, iterations=1)
    low = result.points[-1]
    # CFP-growth has the lowest footprint; Tiny and FP-array exhaust
    # memory early (Tiny keeps the big tree, FP-array the dataset copy).
    cfp = low.runs["cfp-growth"].peak_bytes
    for other in ("ct-pro", "fp-growth-tiny", "fp-array"):
        assert low.runs[other].peak_bytes > cfp, other
    physical = result.spec.physical_memory
    assert low.runs["fp-growth-tiny"].peak_bytes > physical
    assert low.runs["fp-array"].peak_bytes > physical


def test_fig8c_fimi_algorithms(benchmark, save_report):
    result = benchmark.pedantic(_panel_c, rounds=1, iterations=1)
    high = result.points[0]
    low = result.points[-1]
    # §4.5: LCM and CFP-growth perform similarly at high support (LCM may
    # be slightly faster)...
    lcm_high = high.runs["lcm"].total_seconds
    cfp_high = high.runs["cfp-growth"].total_seconds
    assert lcm_high < 3 * cfp_high
    # ...but LCM and the others degrade at low support while CFP stays
    # in-core longest.
    assert low.runs["lcm"].total_seconds > 3 * low.runs["cfp-growth"].total_seconds
    assert low.runs["nonordfp"].total_seconds > low.runs["cfp-growth"].total_seconds
    # AFOPT is the slowest of the remaining algorithms.
    assert low.runs["afopt"].total_seconds >= low.runs["nonordfp"].total_seconds
    save_report("fig8c", fig8.format_report(result, "(c)"))


def test_fig8d_quest2(benchmark, save_report):
    quest2 = benchmark.pedantic(_panel_d, rounds=1, iterations=1)
    quest1 = _panel_c()
    # §4.5: LCM's memory scales with the number of transactions, so Quest2
    # roughly doubles its footprint; CFP-growth's grows far less in
    # absolute terms.
    for q1, q2 in zip(quest1.points, quest2.points):
        lcm_growth = q2.runs["lcm"].peak_bytes / max(q1.runs["lcm"].peak_bytes, 1)
        assert lcm_growth > 1.5, q1.min_support
    low1, low2 = quest1.points[-1], quest2.points[-1]
    assert (
        low2.runs["cfp-growth"].peak_bytes - low1.runs["cfp-growth"].peak_bytes
        < low2.runs["lcm"].peak_bytes - low1.runs["lcm"].peak_bytes
    )
    # CFP-growth remains the fastest on the larger dataset.
    assert low2.runs["cfp-growth"].total_seconds < min(
        low2.runs[a].total_seconds for a in ("nonordfp", "lcm", "afopt")
    )
    save_report("fig8d", fig8.format_report(quest2, "(d)"))
