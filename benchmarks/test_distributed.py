"""Distributed FP-growth benchmark: group-count sweep (§5 class 4)."""

from functools import lru_cache

from repro.experiments import distributed


@lru_cache(maxsize=1)
def _result():
    return distributed.run()


def test_distributed_group_sweep(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    # All configurations find the identical itemset count.
    counts = {p.itemsets for p in result.points}
    assert len(counts) == 1
    # Memory balancing: more groups -> smaller largest shard tree.
    shards = [p.max_shard_bytes for p in result.points]
    assert shards == sorted(shards, reverse=True)
    save_report("distributed", distributed.format_report(result))


def test_distributed_duplication_cost(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    # The paper's caveat: partitioning "may or may not be effective" —
    # shard duplication and shuffle volume grow with the group count.
    duplication = [p.duplication for p in result.points]
    shuffle = [p.shuffle_bytes for p in result.points]
    assert duplication == sorted(duplication)
    assert shuffle == sorted(shuffle)
    assert duplication[0] == 1.0  # one group = no duplication
    # Duplication is bounded by min(groups, avg transaction length).
    for point in result.points:
        assert point.duplication <= point.n_groups
