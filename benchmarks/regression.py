#!/usr/bin/env python
"""Perf-regression harness — thin wrapper over ``repro bench``.

CI runs::

    python benchmarks/regression.py --quick \
        --baseline benchmarks/BENCH_baseline.json --tolerance 0.30

which times build/convert/mine at 1/2/4 workers, writes a
``BENCH_<timestamp>.json`` report next to this file, and exits 1 when any
phase is more than the tolerance slower than the baseline. Run it with no
arguments for a full-size local run compared against the newest previous
report. See docs/performance.md for the report format.
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import bench  # noqa: E402


if __name__ == "__main__":
    sys.exit(bench.main())
