"""Table 2 benchmark: CFP-tree field zero-byte accounting (webdocs proxy)."""

from repro.experiments import table2


def test_table2(benchmark, save_report):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    pcount = result.distributions["pcount"].fractions()
    delta = result.distributions["delta_item"].fractions()
    # §3.2: pcount is zero for the vast majority of nodes; delta_item is
    # never zero and almost always one byte.
    assert pcount[4] > 0.5
    assert delta[3] > 0.9
    assert delta[4] == 0.0
    save_report("table2", table2.format_report(result))
