"""Figure 7 benchmark: FP-growth vs CFP-growth under memory pressure.

One metered sweep feeds all four panels; each panel test verifies the
paper's qualitative claims and regenerates its series.
"""

from functools import lru_cache

from repro.experiments import fig7
from repro.experiments.fig7 import build_memory, build_seconds


@lru_cache(maxsize=1)
def _result():
    return fig7.run()


def _largest(result):
    return result.points[-1]


def test_fig7_sweep(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    assert len(result.points) >= 5
    # The x-axis (initial tree size) must grow as support falls.
    nodes = [p.tree_nodes for p in result.points]
    assert nodes == sorted(nodes)
    save_report("fig7", fig7.format_report(result))


def test_fig7a_build_time(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    point = _largest(result)
    fp = build_seconds(point.runs["fp-growth"])
    cfp = build_seconds(point.runs["cfp-growth"])
    # §4.3: the FP-tree build explodes under memory pressure while
    # CFP-growth's build+conversion stays near the scan floor.
    assert fp > 10 * cfp
    assert cfp < 100 * point.scan_seconds
    # At small trees the two builds are comparable (§4.3: "similar for
    # small prefix trees").
    small = result.points[0]
    fp_small = build_seconds(small.runs["fp-growth"])
    cfp_small = build_seconds(small.runs["cfp-growth"])
    assert fp_small < 50 * cfp_small


def test_fig7b_build_memory(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    for point in result.points:
        if point.tree_nodes < 1000:
            continue
        fp = build_memory(point.runs["fp-growth"])
        cfp = build_memory(point.runs["cfp-growth"])
        # About an order of magnitude less build memory (abstract, §1).
        assert fp > 5 * cfp, point.tree_nodes


def test_fig7c_total_time(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    # §4.4: CFP-growth outperforms FP-growth for all problem sizes, and by
    # an order of magnitude or more once FP-growth thrashes (paper: 20x).
    for point in result.points:
        fp = point.runs["fp-growth"].total_seconds
        cfp = point.runs["cfp-growth"].total_seconds
        assert fp >= 0.99 * cfp, point.tree_nodes
    point = _largest(result)
    ratio = (
        point.runs["fp-growth"].total_seconds
        / point.runs["cfp-growth"].total_seconds
    )
    assert ratio > 10


def test_fig7d_memory(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    physical = result.spec.physical_memory
    fp_crossing = None
    cfp_crossing = None
    for point in result.points:
        if fp_crossing is None and point.runs["fp-growth"].peak_bytes > physical:
            fp_crossing = point.tree_nodes
        if cfp_crossing is None and point.runs["cfp-growth"].peak_bytes > physical:
            cfp_crossing = point.tree_nodes
        # Average CFP memory sits below its peak.
        cfp = point.runs["cfp-growth"]
        assert cfp.avg_bytes <= cfp.peak_bytes
    # §4.4: CFP-growth performs in-core processing for a ~7.5x larger tree.
    assert fp_crossing is not None, "FP-growth never crossed the limit"
    if cfp_crossing is not None:
        assert cfp_crossing > 4 * fp_crossing
