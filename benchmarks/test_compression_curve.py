"""Compression-curve benchmark: §4.2's support trend on one dataset."""

from functools import lru_cache

from repro.experiments import compression_curve


@lru_cache(maxsize=1)
def _result():
    return compression_curve.run()


def test_compression_curve_band(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    sizes = [p.tree_bytes_per_node for p in result.points]
    # Every point sits inside the paper's 1.5-6 B band once the tree has
    # real chains (skip the tiniest tree).
    for point in result.points[1:]:
        assert 1.5 <= point.tree_bytes_per_node <= 6.0, point
    # §4.2's trend: node size falls as chains form, then rises again when
    # the tree "branches out more" at low support.
    minimum = min(sizes)
    assert sizes[0] > minimum
    assert sizes[-1] > minimum
    save_report("compression_curve", compression_curve.format_report(result))


def test_chaining_dominates_at_low_support(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    low = result.points[-1]
    assert low.chain_entries > 0.9 * low.nodes
