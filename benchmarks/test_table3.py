"""Table 3 benchmark: synthetic dataset summary (Quest1/Quest2)."""

from repro.experiments import table3


def test_table3(benchmark, save_report):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    quest1, quest2 = result.stats
    assert quest2.n_transactions == 2 * quest1.n_transactions
    # Both instances share the Quest1 item/length regime (§4.1 Table 3).
    assert 20 < quest1.avg_item_cardinality < 80
    assert abs(quest1.avg_item_cardinality - quest2.avg_item_cardinality) < 5
    save_report("table3", table3.format_report(result))
