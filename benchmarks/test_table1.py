"""Table 1 benchmark: FP-tree field zero-byte accounting (webdocs proxy)."""

from repro.experiments import table1


def test_table1(benchmark, save_report):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    # §3.1's qualitative claims must hold on the proxy.
    left = result.distributions["left"].fractions()
    right = result.distributions["right"].fractions()
    assert left[4] > 0.5, "left pointers should be mostly null"
    assert right[4] > 0.5, "right pointers should be mostly null"
    item = result.distributions["item"].fractions()
    assert item[3] + item[2] > 0.9, "item ids should be small"
    assert result.zero_fraction > 0.4, "roughly half the bytes are zeros"
    save_report("table1", table1.format_report(result))
