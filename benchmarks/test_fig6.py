"""Figure 6 benchmark: average node size of CFP-tree and CFP-array."""

from functools import lru_cache

from repro.experiments import fig6
from repro.fptree.ternary import PAPER_BASELINE_NODE_SIZE


@lru_cache(maxsize=1)
def _result():
    return fig6.run()


def test_fig6a(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    for cell in result.cells:
        if cell.nodes < 100:
            continue
        # Every measured tree must beat the 40 B baseline severalfold.
        assert cell.tree_bytes_per_node < PAPER_BASELINE_NODE_SIZE / 4, cell
    # The paper's headline range: roughly 1.5-7 bytes per node.
    measured = [c.tree_bytes_per_node for c in result.cells if c.nodes >= 100]
    assert min(measured) < 3.0
    assert max(measured) < 8.0
    # webdocs benefits most from chaining (§4.2): it must sit near the low
    # end at medium support.
    webdocs = result.cell("webdocs", "medium")
    assert webdocs.tree_bytes_per_node < 2.5
    save_report("fig6a", fig6.format_report(result).split("\n\n")[0])


def test_fig6b(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    for cell in result.cells:
        if cell.nodes < 100:
            continue
        # §4.2: "For all datasets, the average node size is below 5 bytes."
        assert cell.array_bytes_per_node < 5.0, cell
        assert cell.array_reduction > 8.0, cell
    save_report("fig6b", fig6.format_report(result).split("\n\n")[1])
