"""Microbenchmarks of the performance-critical primitives.

These wall-clock numbers are real (not simulated): codec throughput, arena
allocation, CFP-tree insertion, conversion, and mining on a fixed workload.
"""

import random

import pytest

from repro.compress import varint
from repro.compress.zero_suppression import decode_3bit, encode_3bit
from repro.core.cfp_growth import mine_rank_transactions
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import CountCollector
from repro.fptree.tree import FPTree
from repro.memman import Arena
from repro.util.items import prepare_transactions


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(99)
    database = []
    for __ in range(2_000):
        length = rng.randint(2, 20)
        database.append(sorted({int(300 * rng.random() ** 2.5) for _ in range(length)}))
    table, transactions = prepare_transactions(database, 4)
    return len(table), transactions


def test_varint_encode(benchmark):
    values = [((i * 2_654_435_761) % (1 << 28)) for i in range(1_000)]
    benchmark(lambda: [varint.encode(v) for v in values])


def test_varint_decode(benchmark):
    buf = b"".join(varint.encode((i * 37) % (1 << 21)) for i in range(1_000))

    def decode_all():
        offset = 0
        while offset < len(buf):
            __, offset = varint.decode_from(buf, offset)

    benchmark(decode_all)


def test_zero_suppression_roundtrip(benchmark):
    values = [(i * 977) % (1 << 24) for i in range(1_000)]

    def roundtrip():
        for value in values:
            mask, payload = encode_3bit(value)
            decode_3bit(mask, payload)

    benchmark(roundtrip)


def test_arena_alloc_free(benchmark):
    def churn():
        arena = Arena()
        chunks = [arena.alloc(7 + (i % 18)) for i in range(2_000)]
        for i, addr in enumerate(chunks):
            arena.free(addr, 7 + (i % 18))

    benchmark(churn)


def test_fp_tree_build(benchmark, workload):
    n_ranks, transactions = workload
    benchmark(lambda: FPTree.from_rank_transactions(transactions, n_ranks))


def test_cfp_tree_build(benchmark, workload):
    n_ranks, transactions = workload
    benchmark(lambda: TernaryCfpTree.from_rank_transactions(transactions, n_ranks))


def test_cfp_conversion(benchmark, workload):
    n_ranks, transactions = workload
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    benchmark(lambda: convert(tree))


def test_cfp_growth_mine(benchmark, workload):
    n_ranks, transactions = workload

    def mine():
        return mine_rank_transactions(
            list(transactions), n_ranks, 40, CountCollector()
        ).count

    count = benchmark(mine)
    assert count > 0


def test_bufferpool_sequential_read(benchmark, tmp_path):
    from repro.storage import BufferPool, PageFile
    from repro.storage.pagefile import PAGE_SIZE

    path = tmp_path / "bench.pf"
    with PageFile.create(path) as pagefile:
        pagefile.append_blob(bytes(64 * PAGE_SIZE))

        def scan():
            pool = BufferPool(pagefile, capacity_pages=8)
            pool.read(0, 64 * PAGE_SIZE)
            return pool.stats.faults

        faults = benchmark(scan)
        assert faults == 64


def test_cfp_tree_checkpoint_roundtrip(benchmark, workload, tmp_path):
    from repro.storage import load_cfp_tree, save_cfp_tree

    n_ranks, transactions = workload
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    path = tmp_path / "bench.cfpt"

    def roundtrip():
        save_cfp_tree(tree, path)
        return load_cfp_tree(path).node_count

    assert benchmark(roundtrip) == tree.node_count


def test_chain_split_heavy_inserts(benchmark):
    # Stress the restructure paths: long shared runs with divergences.
    def build():
        tree = TernaryCfpTree(64)
        base = list(range(1, 33))
        for divergence in range(2, 32, 2):
            ranks = base[:divergence] + [base[divergence] + 32]
            tree.insert(sorted(set(ranks)))
            tree.insert(base)
        return tree.node_count

    assert benchmark(build) > 0
