"""Shared helpers for the benchmark suite.

Each table/figure benchmark prints its paper-style report to stdout and
persists it under ``benchmarks/reports/`` so the regenerated rows/series
survive the pytest run.
"""

from __future__ import annotations

import pathlib

import pytest

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture
def save_report():
    """Print a report and persist it to benchmarks/reports/<name>.txt."""

    def _save(name: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
