"""Ablation bench: §2.2's count-based near-optimal sibling BSTs."""

import random

import pytest

from repro.fptree.ternary import TernaryFPTree
from repro.util.items import prepare_transactions
from repro.datasets import make_dataset


@pytest.fixture(scope="module")
def workload():
    database = make_dataset("retail", n_transactions=2500, seed=4)
    table, transactions = prepare_transactions(database, 5)
    return table, transactions


def _lookup_load(table, transactions, tree, repeats=3):
    """Search the tree for every transaction prefix, weighted by data."""
    tree.comparisons = 0
    rng = random.Random(0)
    sample = rng.sample(transactions, min(len(transactions), 800))
    for __ in range(repeats):
        for ranks in sample:
            tree.find(ranks)
    return tree.comparisons


def test_weighted_bst_reduces_comparisons(benchmark, workload):
    table, transactions = workload
    tree = TernaryFPTree.from_rank_transactions(transactions, len(table))
    before = _lookup_load(table, transactions, tree)
    benchmark.pedantic(tree.rebuild_weight_balanced, rounds=1, iterations=1)
    after = _lookup_load(table, transactions, tree)
    # The rebuild must not make the data-weighted search load worse, and
    # on skewed data it should help measurably.
    assert after <= before
    print(
        f"\nBST comparisons for the same lookup load: {before:,} before, "
        f"{after:,} after rebuild ({before / max(after, 1):.2f}x)\n"
    )


def test_weighted_bst_preserves_content(benchmark, workload):
    table, transactions = workload
    tree = TernaryFPTree.from_rank_transactions(transactions, len(table))
    supports_before = [tree.count[n] for rank in range(1, len(table) + 1) for n in tree.nodes_of(rank)]
    benchmark.pedantic(tree.rebuild_weight_balanced, rounds=1, iterations=1)
    supports_after = [tree.count[n] for rank in range(1, len(table) + 1) for n in tree.nodes_of(rank)]
    assert sorted(supports_before) == sorted(supports_after)
    for ranks in transactions[:200]:
        assert tree.find(ranks) != 0
