"""Out-of-core benchmark: real page faults vs buffer-pool size (§4.3)."""

from functools import lru_cache

from repro.experiments import outofcore


@lru_cache(maxsize=1)
def _result():
    return outofcore.run()


def test_outofcore_pool_sweep(benchmark, save_report):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    faults = [p.mine_faults for p in result.points]
    # Faults never increase with a bigger pool.
    assert faults == sorted(faults, reverse=True)
    # Once the pool covers the array, mining faults once per page.
    assert faults[-1] == result.array_pages
    # A pool far smaller than the array thrashes by orders of magnitude.
    assert faults[0] > 50 * result.array_pages
    save_report("outofcore", outofcore.format_report(result))


def test_outofcore_sequential_pattern(benchmark):
    result = benchmark.pedantic(_result, rounds=1, iterations=1)
    for point in result.points:
        # §4.3: sequential subarray access needs only one fault per page,
        # independent of pool size — the conversion-friendly pattern.
        assert point.sequential_faults == result.array_pages
    # Results are identical at every pool size.
    counts = {p.itemsets for p in result.points}
    assert len(counts) == 1
