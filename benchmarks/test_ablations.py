"""Ablation benchmarks: each CFP design choice isolated (DESIGN.md §5)."""

from functools import lru_cache

from repro.experiments import ablations


@lru_cache(maxsize=None)
def _result(dataset, relative_support):
    return ablations.run(dataset, relative_support)


def test_ablations_webdocs(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: _result("webdocs", 0.01), rounds=1, iterations=1
    )
    # 1. delta coding of item ids saves payload bytes (§3.2).
    assert result.delta_item_bytes <= result.raw_item_bytes
    # 2. partial counts compress far better than cumulative counts (§3.2).
    assert result.cumulative_count_bytes > 5 * result.pcount_bytes
    # 4. chains are the dominant saving on long-transaction data (§4.2).
    assert result.tree_no_chains > 2 * result.tree_full
    # 5. varint beats zero suppression for the mostly-small array fields.
    assert result.array_zero_suppression > result.array_varint
    # 6. item clustering removes a 5-byte nodelink per node (§3.4).
    assert result.array_with_nodelinks > 1.5 * result.array_varint
    save_report("ablations_webdocs", ablations.format_report(result))


def test_ablations_chain_length_monotone(benchmark):
    result = benchmark.pedantic(
        lambda: _result("webdocs", 0.01), rounds=1, iterations=1
    )
    # Longer chains monotonically shrink the tree on chain-friendly data;
    # the paper fixes 15 as the cap (§4.1).
    sizes = [size for __, size in sorted(result.tree_by_chain_length.items())]
    assert sizes == sorted(sizes, reverse=True)


def test_ablations_retail(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: _result("retail", 0.002), rounds=1, iterations=1
    )
    # 3. §3.3: embedding pays on short-transaction data.
    assert result.tree_no_embedding >= result.tree_full
    # The combined design always beats the plain ternary layout.
    assert result.tree_plain > result.tree_full
    save_report("ablations_retail", ablations.format_report(result))
