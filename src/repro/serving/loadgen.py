"""Load generation for the query server: latency and throughput under
concurrency, with answers verified against direct library calls.

:func:`run_load` drives N concurrent NDJSON clients (all on one event
loop — the server's concurrency comes from its executor threads hitting
the shared buffer pool) against an in-process :class:`ReproServer`,
using a seeded query mix over the store's own vocabulary, and returns a
:class:`LoadReport` with p50/p99 latency and throughput. Every response
is compared to the answer the library gives directly
(:meth:`ServingStore.support` / :meth:`~ServingStore.top_k` /
:meth:`~ServingStore.also_bought`), so a passing load run is also a
correctness run — the serving layer's core promise is byte-identical
answers to direct calls.

``python -m repro.serving.loadgen`` is the CLI used by the CI smoke
step: it builds a store from a FIMI/binary dataset (or a small built-in
synthetic one), runs the load, prints the report, and can gate on
``--max-p99-ms`` / ``--clients``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ReproError
from repro.serving.server import ReproServer
from repro.serving.store import ServingStore, build_store

#: Default query mix (must sum to 1.0): support lookups dominate, the
#: way a recommendation sidebar's traffic would.
DEFAULT_MIX = {"support": 0.8, "topk": 0.1, "rules": 0.1}


@dataclass
class LoadReport:
    """One load run's outcome."""

    clients: int
    requests: int
    errors: int
    mismatches: int
    wall_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    pool_hits: int = 0
    pool_faults: int = 0
    ops: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "pool_hits": self.pool_hits,
            "pool_faults": self.pool_faults,
            "ops": dict(self.ops),
        }


def _build_queries(
    store: ServingStore,
    n_queries: int,
    seed: int,
    mix: dict[str, float] | None = None,
    oracle: dict[Any, Any] | None = None,
) -> list[dict[str, Any]]:
    """A seeded query workload over the store's own item vocabulary.

    Each query dict carries the request fields plus an ``expected``
    entry computed through the direct library calls — the parity oracle.
    ``oracle`` memoizes the expensive oracle answers (top-k mines the
    array; rules filter the full rule set) across clients, so building a
    64-client workload does not redo the same direct call 64 times.
    """
    mix = dict(mix or DEFAULT_MIX)
    rng = random.Random(seed)
    if oracle is None:
        oracle = {}
    items = [store.table.item_of[rank] for rank in range(1, len(store.table) + 1)]
    if not items:
        raise ReproError("store has no frequent items; nothing to query")
    ops = sorted(mix)
    weights = [mix[op] for op in ops]
    queries: list[dict[str, Any]] = []
    for _ in range(n_queries):
        op = rng.choices(ops, weights=weights)[0]
        if op == "support":
            size = rng.randint(1, min(3, len(items)))
            itemset: list[Hashable] = rng.sample(items, size)
            queries.append(
                {
                    "op": "support",
                    "items": itemset,
                    "expected": store.support(itemset),
                }
            )
        elif op == "topk":
            k = rng.choice((5, 10, 20))
            key = ("topk", k)
            if key not in oracle:
                oracle[key] = [
                    [list(itemset), support]
                    for itemset, support in store.top_k(k)
                ]
            queries.append({"op": "topk", "k": k, "expected": oracle[key]})
        else:
            size = rng.randint(1, min(2, len(items)))
            basket = rng.sample(items, size)
            key = ("rules", tuple(basket))
            if key not in oracle:
                oracle[key] = [
                    {
                        "antecedent": list(rule.antecedent),
                        "consequent": list(rule.consequent),
                        "support": rule.support,
                        "confidence": rule.confidence,
                        "lift": rule.lift,
                    }
                    for rule in store.also_bought(basket, limit=5)
                ]
            queries.append(
                {"op": "rules", "basket": basket, "limit": 5, "expected": oracle[key]}
            )
    return queries


async def _client(
    host: str,
    port: int,
    queries: list[dict[str, Any]],
    latencies: list[float],
    counters: dict[str, int],
) -> None:
    """One client: sequential requests over one connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for index, query in enumerate(queries):
            request = {k: v for k, v in query.items() if k != "expected"}
            request["id"] = index
            payload = json.dumps(request).encode("ascii") + b"\n"
            started = time.perf_counter()
            writer.write(payload)
            await writer.drain()
            line = await reader.readline()
            latencies.append((time.perf_counter() - started) * 1000.0)
            counters[query["op"]] = counters.get(query["op"], 0) + 1
            if not line:
                counters["errors"] += len(queries) - index
                return
            response = json.loads(line)
            if not response.get("ok"):
                counters["errors"] += 1
            elif response.get("result") != query["expected"]:
                counters["mismatches"] += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):  # pragma: no cover
            pass


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _run_load_async(
    store: ServingStore,
    clients: int,
    requests_per_client: int,
    seed: int,
    mix: dict[str, float] | None,
    workers: int,
) -> LoadReport:
    server = ReproServer(store, workers=workers)
    await server.start()
    latencies: list[float] = []
    counters: dict[str, int] = {"errors": 0, "mismatches": 0}
    try:
        # The parity oracle warms the rules cache too, so the measured
        # run exercises serving, not the one-off lazy rule mine.
        oracle: dict[Any, Any] = {}
        per_client = [
            _build_queries(store, requests_per_client, seed + index, mix, oracle)
            for index in range(clients)
        ]
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _client(server.host, server.port, queries, latencies, counters)
                for queries in per_client
            )
        )
        wall = time.perf_counter() - started
    finally:
        await server.stop()
    latencies.sort()
    total = clients * requests_per_client
    pool_stats = store.array.pool.stats
    return LoadReport(
        clients=clients,
        requests=total,
        errors=counters.pop("errors"),
        mismatches=counters.pop("mismatches"),
        wall_s=wall,
        rps=total / wall if wall > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.5),
        p99_ms=_percentile(latencies, 0.99),
        max_ms=latencies[-1] if latencies else 0.0,
        pool_hits=pool_stats.hits,
        pool_faults=pool_stats.faults,
        ops=counters,
    )


def run_load(
    store: ServingStore,
    clients: int = 64,
    requests_per_client: int = 8,
    seed: int = 17,
    mix: dict[str, float] | None = None,
    workers: int = 8,
) -> LoadReport:
    """Run the load harness against an in-process server; see module doc."""
    if clients < 1 or requests_per_client < 1:
        raise ReproError("clients and requests_per_client must be >= 1")
    return asyncio.run(
        _run_load_async(store, clients, requests_per_client, seed, mix, workers)
    )


def _demo_database(seed: int = 29) -> list[list[int]]:
    """A small synthetic basket database for the no-dataset CLI path."""
    from repro.datasets.quest import QuestGenerator

    return QuestGenerator(
        n_transactions=1_500,
        avg_transaction_length=8.0,
        avg_pattern_length=3.0,
        n_items=200,
        n_patterns=60,
        seed=seed,
    ).generate()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="drive the query server with concurrent clients and "
        "verify answers against direct library calls",
    )
    parser.add_argument(
        "file",
        nargs="?",
        default="",
        help="FIMI text or .bin dataset to build the store from "
        "(default: a built-in synthetic dataset)",
    )
    parser.add_argument("--min-support", type=int, default=8)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--requests", type=int, default=8, help="per client")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=0.0,
        help="fail (exit 1) when p99 latency exceeds this many ms (0 = no gate)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    if args.file:
        from repro.datasets.binary import read_binary
        from repro.datasets.fimi import read_fimi

        database = (
            read_binary(args.file)
            if args.file.endswith(".bin")
            else read_fimi(args.file)
        )
    else:
        database = _demo_database()

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        array_path = f"{tmp}/store.cfpa"
        build_store(database, args.min_support, array_path)
        with ServingStore(array_path) as store:
            report = run_load(
                store,
                clients=args.clients,
                requests_per_client=args.requests,
                seed=args.seed,
                workers=args.workers,
            )
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"{report.clients} clients x {report.requests // report.clients} "
            f"requests: {report.rps:,.0f} req/s over {report.wall_s:.2f}s"
        )
        print(
            f"latency ms: p50={report.p50_ms:.2f} p99={report.p99_ms:.2f} "
            f"max={report.max_ms:.2f}"
        )
        print(
            f"pool: {report.pool_hits} hits / {report.pool_faults} faults; "
            f"errors={report.errors} mismatches={report.mismatches}"
        )
    if report.errors or report.mismatches:
        print(
            f"error: {report.errors} errors, {report.mismatches} mismatched "
            "answers vs direct calls",
            file=sys.stderr,
        )
        return 1
    if args.max_p99_ms and report.p99_ms > args.max_p99_ms:
        print(
            f"error: p99 {report.p99_ms:.2f}ms exceeds the "
            f"{args.max_p99_ms:.2f}ms gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
