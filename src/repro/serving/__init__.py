"""Mining-as-a-service: query serving over shared CFP-arrays.

The paper builds compressed structures so mining fits in memory; this
package is the payoff view of the same structures — once built, a
CFP-array is a read-only index that can answer itemset-support, top-k,
and "also bought" rule queries for many concurrent clients out of one
shared buffer pool (docs/serving.md):

* :mod:`repro.serving.store` — persistence (array + item-vocabulary
  sidecar) and :class:`ServingStore`, the thread-safe query facade;
* :mod:`repro.serving.follow` — :class:`FollowingStore`, the same query
  facade following a streaming snapshot manifest
  (:class:`repro.streaming.snapshots.SnapshotManager`), hot-swapping
  generations under live queries with zero drops (docs/streaming.md);
* :mod:`repro.serving.server` — :class:`ReproServer`, the asyncio
  NDJSON protocol server with budget-derived admission control,
  per-request latency histograms, and graceful drain;
* :mod:`repro.serving.loadgen` — the load harness that measures
  p50/p99/throughput under N concurrent clients while verifying every
  response against the direct library calls.

Start one from the command line with ``repro serve``.
"""

from repro.serving.server import ReproServer
from repro.serving.store import ServingStore, StoreError, build_store, write_sidecar

__all__ = [
    "FollowingStore",
    "LoadReport",
    "ReproServer",
    "ServingStore",
    "StoreError",
    "build_store",
    "run_load",
    "write_sidecar",
]


def __getattr__(name: str):
    # Lazy so `python -m repro.serving.loadgen` does not import the
    # module twice (once as a package attribute, once as __main__).
    # FollowingStore is lazy for a different reason: it pulls in
    # repro.streaming.snapshots, which imports this package's store
    # module — eager import here would re-enter a half-initialized
    # package and fail.
    if name in ("LoadReport", "run_load"):
        from repro.serving import loadgen

        return getattr(loadgen, name)
    if name == "FollowingStore":
        from repro.serving.follow import FollowingStore

        return FollowingStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
