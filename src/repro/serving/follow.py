"""Hot-swapping store: serve queries while following snapshot flips.

:class:`FollowingStore` exposes the same query surface as
:class:`repro.serving.store.ServingStore` but binds to a *snapshot
directory* (:class:`repro.streaming.snapshots.SnapshotManager`) instead
of one array file. A background follow thread (or an explicit
:meth:`refresh` call) polls the manifest; when the generation advances,
the new generation's store is opened **beside** the live one and then
swapped in under a lock — queries never observe a half-open store and
none are dropped during a flip (the zero-drop contract CI's
incremental-smoke job checks across a live flip).

Retirement is two-level. The manager's refcount pins a generation's
*files* against unlinking while this process still has it open; locally,
each query pins the store object it is using, so a superseded
:class:`ServingStore` (and its buffer pool) is only closed once the last
in-flight query on it finishes. A manifest that fails to parse or a
generation that fails to open is recorded on :attr:`errors` and the
current generation keeps serving — a torn flip degrades to staleness,
never to an outage.

Counter: ``serving.generation`` (one increment per observed flip; the
current generation number itself rides on the ``serve_request`` span's
``generation`` attribute and the ``stats`` op).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Hashable, Iterable, Iterator

from repro import obs
from repro.core.cfp_growth import DEFAULT_CACHE_BUDGET
from repro.errors import ReproError
from repro.rules import Rule
from repro.serving.store import DEFAULT_POOL_PAGES, ServingStore
from repro.streaming.snapshots import SnapshotError, SnapshotManager

#: Default manifest poll cadence for the follow thread.
DEFAULT_POLL_INTERVAL_S = 1.0


class FollowingStore:
    """Query facade over the newest generation in a snapshot directory.

    Construction requires at least one published, loadable generation
    (it performs the first :meth:`refresh` itself and raises
    :class:`SnapshotError` otherwise). Thereafter the store *always* has
    a live generation; flips only ever move it forward.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        pool_pages: int = DEFAULT_POOL_PAGES,
        cache_budget: int = DEFAULT_CACHE_BUDGET,
        hot_bytes: int = 0,
        verify: bool = True,
    ) -> None:
        self.manager = SnapshotManager(directory)
        self._options = {
            "pool_pages": pool_pages,
            "cache_budget": cache_budget,
            "hot_bytes": hot_bytes,
            "verify": verify,
        }
        self._lock = threading.Lock()
        self._store: ServingStore | None = None
        self._generation: int | None = None
        self._pins: dict[int, int] = {}
        self._superseded: dict[int, ServingStore] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._interval_s = DEFAULT_POLL_INTERVAL_S
        self._closed = False
        self.errors: list[str] = []
        if not self.refresh() or self._store is None:
            detail = self.errors[-1] if self.errors else "no manifest"
            raise SnapshotError(
                f"{self.manager.directory}: no loadable snapshot generation "
                f"({detail})"
            )

    # -- flip machinery -------------------------------------------------

    def refresh(self) -> bool:
        """Adopt the manifest's generation if it moved; True on a flip.

        Any failure — unreadable manifest, missing or corrupt generation
        files — leaves the current generation serving and is recorded on
        :attr:`errors`.
        """
        try:
            state = self.manager.current()
        except SnapshotError as exc:
            self.errors.append(str(exc))
            return False
        if state is None:
            self.errors.append(
                f"{self.manager.directory}: no snapshot published yet"
            )
            return False
        with self._lock:
            if self._generation is not None and state[0] <= self._generation:
                return False
        generation, path = self.manager.acquire()
        with self._lock:
            if self._generation is not None and generation <= self._generation:
                stale = True
            else:
                stale = False
        if stale:
            self.manager.release(generation)
            return False
        try:
            store = ServingStore(path, **self._options)
        except (ReproError, OSError) as exc:
            self.manager.release(generation)
            self.errors.append(f"generation {generation}: {exc}")
            return False
        close_now: tuple[int, ServingStore] | None = None
        with self._lock:
            old_generation, old_store = self._generation, self._store
            self._generation, self._store = generation, store
            if old_generation is not None and old_store is not None:
                if self._pins.get(old_generation, 0) > 0:
                    # In-flight queries still read the old store; the
                    # last unpin closes it (see _pinned).
                    self._superseded[old_generation] = old_store
                else:
                    close_now = (old_generation, old_store)
        if close_now is not None:
            close_now[1].close()
            self.manager.release(close_now[0])
        obs.metrics.add("serving.generation")
        return True

    @contextmanager
    def _pinned(self) -> Iterator[ServingStore]:
        """The live store, pinned for the duration of one query."""
        with self._lock:
            generation, store = self._generation, self._store
            assert generation is not None and store is not None
            self._pins[generation] = self._pins.get(generation, 0) + 1
        try:
            yield store
        finally:
            close_now: ServingStore | None = None
            with self._lock:
                count = self._pins.get(generation, 0) - 1
                if count <= 0:
                    self._pins.pop(generation, None)
                    close_now = self._superseded.pop(generation, None)
                else:
                    self._pins[generation] = count
            if close_now is not None:
                close_now.close()
                self.manager.release(generation)

    def start_following(
        self, interval_s: float = DEFAULT_POLL_INTERVAL_S
    ) -> None:
        """Poll the manifest on a daemon thread until :meth:`stop_following`."""
        if self._thread is not None:
            return
        self._interval_s = interval_s
        self._thread = threading.Thread(
            target=self._follow, name="repro-follow", daemon=True
        )
        self._thread.start()

    def stop_following(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._stop.clear()

    def _follow(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self.refresh()
            except ReproError as exc:  # pragma: no cover - defensive
                self.errors.append(str(exc))
            except OSError as exc:  # pragma: no cover - defensive
                self.errors.append(str(exc))

    # -- ServingStore surface -------------------------------------------

    @property
    def generation(self) -> int:
        with self._lock:
            assert self._generation is not None
            return self._generation

    @property
    def path(self) -> str:
        with self._lock:
            assert self._store is not None
            return self._store.path

    @property
    def table(self):
        with self._lock:
            assert self._store is not None
            return self._store.table

    @property
    def n_transactions(self) -> int:
        with self._lock:
            assert self._store is not None
            return self._store.n_transactions

    @property
    def array(self):
        with self._lock:
            assert self._store is not None
            return self._store.array

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            assert self._store is not None
            return self._store.resident_bytes

    def support(self, items: Iterable[Hashable]) -> int:
        with self._pinned() as store:
            return store.support(items)

    def top_k(
        self, k: int, min_length: int = 1
    ) -> list[tuple[tuple[Hashable, ...], int]]:
        with self._pinned() as store:
            return store.top_k(k, min_length=min_length)

    def rules(
        self,
        min_confidence: float = 0.5,
        max_consequent_size: int | None = None,
    ) -> list[Rule]:
        with self._pinned() as store:
            return store.rules(min_confidence, max_consequent_size)

    def also_bought(
        self,
        basket: Iterable[Hashable],
        limit: int = 10,
        min_confidence: float = 0.5,
    ) -> list[Rule]:
        with self._pinned() as store:
            return store.also_bought(
                basket, limit=limit, min_confidence=min_confidence
            )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop following and close every store this process still holds."""
        if self._closed:
            return
        self._closed = True
        self.stop_following()
        with self._lock:
            stores = list(self._superseded.items())
            self._superseded.clear()
            if self._store is not None and self._generation is not None:
                stores.append((self._generation, self._store))
                self._store = None
        for generation, store in stores:
            store.close()
            self.manager.release(generation)

    def __enter__(self) -> "FollowingStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FollowingStore({self.manager.directory!r}, "
            f"generation={self._generation})"
        )


__all__ = ["DEFAULT_POLL_INTERVAL_S", "FollowingStore"]
