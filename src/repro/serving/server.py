"""Mining-as-a-service: the asyncio NDJSON query server.

One :class:`ReproServer` serves one :class:`repro.serving.store.ServingStore`
— many concurrent clients, one shared buffer pool. The protocol is
newline-delimited JSON over TCP: each request is one JSON object per
line, each response is one JSON object per line, in request order per
connection::

    {"id": 1, "op": "support", "items": [3, 4]}
    {"id": 1, "ok": true, "result": 2}

Ops: ``ping``, ``support`` (``items``), ``topk`` (``k``, optional
``min_length``), ``rules`` (``basket``, optional ``limit`` /
``min_confidence``), and ``stats``. Failures answer
``{"ok": false, "error": {"code", "message"}}`` with codes
``bad_request`` (malformed request or parameters), ``overloaded``
(admission control), and ``internal``; the connection stays usable
after any of them.

Three server-side concerns, each tied to an existing subsystem:

* **Admission control** (:func:`repro.budget.admission_limit`): the
  maximum number of in-flight requests is derived from a memory budget
  minus the store's resident bytes, in per-request working-set slots.
  Requests beyond the limit are rejected immediately with
  ``overloaded`` instead of queueing unboundedly.
* **Observability** (:mod:`repro.obs`): per-op latency histograms
  (``serving.latency_ms.support`` and siblings), request/error/
  rejection/connection counters, and one ``serve_request`` span per
  request when a tracer is installed (recorded out-of-band via
  :meth:`repro.obs.Tracer.complete_span`, so interleaved requests
  cannot misnest phase spans).
* **Graceful drain** (:meth:`ReproServer.stop`): stop accepting, let
  in-flight requests finish and their responses flush, close idle
  connections, shut the executor down, and publish the pool's final
  counters.

Query work runs on a thread pool (``run_in_executor``) — the point of
the buffer-pool and subarray-cache locks is that these threads may hit
the same shared array concurrently.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable

from repro.budget import DEFAULT_REQUEST_BYTES, admission_limit
from repro.errors import DatasetError, ExperimentError, ReproError, TreeError
from repro.obs import metrics as _metrics
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import get_tracer
from repro.serving.store import ServingStore

#: Longest accepted request line; longer lines poison the stream and
#: close the connection with a ``bad_request`` response.
MAX_LINE_BYTES = 1 << 16

#: Default admission limit when no memory budget is given: the server
#: budgets for this many concurrent request slots on top of the store's
#: resident bytes.
DEFAULT_MAX_INFLIGHT = 64

#: Largest ``k`` a topk request may ask for, and the largest rule-query
#: ``limit`` — both bound per-request response size.
MAX_TOPK = 10_000
MAX_RULE_LIMIT = 1_000

#: Error kinds that are the client's fault: invalid parameters raised by
#: the query layer map to ``bad_request``; anything else is ``internal``.
_CLIENT_ERRORS = (TreeError, ExperimentError, DatasetError)


class _BadRequest(ReproError):
    """A request failed validation before reaching the query layer."""


class _Connection:
    """Per-connection state: the writer plus an in-flight marker."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


def _scalar_list(value: Any, what: str) -> list[Hashable]:
    """Validate a JSON itemset/basket: a non-empty list of scalars."""
    if not isinstance(value, list) or not value:
        raise _BadRequest(f"{what} must be a non-empty list")
    for element in value:
        if isinstance(element, bool) or not isinstance(
            element, (int, float, str)
        ):
            raise _BadRequest(
                f"{what} elements must be numbers or strings, "
                f"got {type(element).__name__}"
            )
    return value


def _int_param(
    request: dict, key: str, default: int | None, low: int, high: int
) -> int:
    value = request.get(key, default)
    if value is None:
        raise _BadRequest(f"missing required parameter {key!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise _BadRequest(f"{key} must be an integer")
    if not low <= value <= high:
        raise _BadRequest(f"{key} must be in [{low}, {high}], got {value}")
    return value


class ReproServer:
    """Concurrent query server over one shared serving store.

    Lifecycle: ``await start()`` binds (``port=0`` picks a free port,
    published back on ``self.port``), ``await serve_forever()`` blocks
    for CLI use, ``await stop()`` drains gracefully. All three run on
    one event loop; query work is offloaded to ``workers`` threads.
    """

    def __init__(
        self,
        store: ServingStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        memory_budget: int | None = None,
        per_request_bytes: int = DEFAULT_REQUEST_BYTES,
        workers: int = 8,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        if memory_budget is None:
            memory_budget = (
                store.resident_bytes + DEFAULT_MAX_INFLIGHT * per_request_bytes
            )
        self.memory_budget = memory_budget
        self.max_inflight = admission_limit(
            memory_budget, store.resident_bytes, per_request_bytes
        )
        self.workers = workers
        self._registry = registry if registry is not None else _metrics
        self._inflight = 0
        self._draining = False
        self._stopped = False
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._connections: set[_Connection] = set()
        self._client_tasks: set[asyncio.Task] = set()
        self._ops: dict[str, Callable[[dict], Any]] = {
            "support": self._op_support,
            "topk": self._op_topk,
            "rules": self._op_rules,
        }

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("serve_forever() requires start() first")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - CLI shutdown
            pass

    async def stop(self) -> None:
        """Graceful drain: finish in-flight work, then shut everything.

        Idempotent — a second call returns immediately, so a test (or the
        CLI's signal path) may stop a server its helper also stops.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle connections are parked in readline() with no request in
        # flight; closing their transports unblocks them with EOF. Busy
        # connections finish their request, flush the response, then see
        # the drain flag and exit their loop.
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        if self._client_tasks:
            await asyncio.gather(*list(self._client_tasks), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.store.array.pool.publish_metrics(self._registry)

    # -- connection handling --------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = self._registry
        registry.add("serving.connections")
        connection = _Connection(writer)
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while not self._draining:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than MAX_LINE_BYTES: the stream is
                    # poisoned mid-line, so answer and hang up.
                    registry.add("serving.errors")
                    await self._send(
                        writer,
                        _error_response(
                            None,
                            "bad_request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                response = await self._handle_line(connection, line)
                try:
                    await self._send(writer, response)
                except (ConnectionResetError, OSError):
                    break
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response, ensure_ascii=True).encode("ascii") + b"\n")
        await writer.drain()

    # -- request handling -----------------------------------------------

    async def _handle_line(self, connection: _Connection, line: bytes) -> dict:
        started = time.perf_counter()
        registry = self._registry
        registry.add("serving.requests")
        request_id: Any = None
        op = "invalid"
        try:
            request = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            registry.add("serving.errors")
            return _error_response(None, "bad_request", f"not JSON: {exc}")
        if isinstance(request, dict):
            request_id = request.get("id")
        response: dict
        try:
            if not isinstance(request, dict):
                raise _BadRequest("request must be a JSON object")
            raw_op = request.get("op")
            # The metric/span label comes from a fixed vocabulary: a
            # client-chosen op string must not mint new histogram names.
            op = (
                raw_op
                if isinstance(raw_op, str)
                and (raw_op in self._ops or raw_op in ("ping", "stats"))
                else "invalid"
            )
            if op == "ping":
                response = _ok_response(request_id, "pong")
            elif op == "stats":
                response = _ok_response(request_id, self._stats())
            else:
                handler = self._ops.get(op)
                if handler is None:
                    raise _BadRequest(f"unknown op {raw_op!r}")
                response = await self._dispatch(
                    connection, handler, request, request_id
                )
        except _BadRequest as exc:
            registry.add("serving.errors")
            response = _error_response(request_id, "bad_request", str(exc))
        except _CLIENT_ERRORS as exc:
            registry.add("serving.errors")
            response = _error_response(request_id, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001  # lint: ignore[INV004] - any unclassified failure becomes an "internal" response; the server must not die
            registry.add("serving.errors")
            response = _error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if response.get("error", {}).get("code") != "overloaded":
            registry.observe(f"serving.latency_ms.{op}", elapsed_ms)
        tracer = get_tracer()
        if tracer is not None:
            attrs = {"op": op, "ok": bool(response["ok"])}
            # A following store flips between snapshot generations under
            # live traffic; stamping the generation on every request span
            # makes a flip visible as a step in the trace.
            generation = getattr(self.store, "generation", None)
            if generation is not None:
                attrs["generation"] = generation
            tracer.complete_span("serve_request", started, attrs)
        return response

    async def _dispatch(
        self,
        connection: _Connection,
        handler: Callable[[dict], Any],
        request: dict,
        request_id: Any,
    ) -> dict:
        registry = self._registry
        if self._inflight >= self.max_inflight:
            registry.add("serving.rejected")
            return _error_response(
                request_id,
                "overloaded",
                f"server at its admission limit of {self.max_inflight} "
                "in-flight requests; retry later",
            )
        loop = asyncio.get_running_loop()
        self._inflight += 1
        connection.busy = True
        try:
            result = await loop.run_in_executor(self._executor, handler, request)
        finally:
            self._inflight -= 1
            connection.busy = False
        return _ok_response(request_id, result)

    # -- op handlers (run on executor threads) --------------------------

    def _op_support(self, request: dict) -> int:
        items = _scalar_list(request.get("items"), "items")
        return self.store.support(items)

    def _op_topk(self, request: dict) -> list[list[Any]]:
        k = _int_param(request, "k", None, 1, MAX_TOPK)
        min_length = _int_param(request, "min_length", 1, 1, 64)
        return [
            [list(itemset), support]
            for itemset, support in self.store.top_k(k, min_length=min_length)
        ]

    def _op_rules(self, request: dict) -> list[dict[str, Any]]:
        basket = _scalar_list(request.get("basket"), "basket")
        limit = _int_param(request, "limit", 10, 1, MAX_RULE_LIMIT)
        min_confidence = request.get("min_confidence", 0.5)
        if isinstance(min_confidence, bool) or not isinstance(
            min_confidence, (int, float)
        ):
            raise _BadRequest("min_confidence must be a number")
        rules = self.store.also_bought(
            basket, limit=limit, min_confidence=float(min_confidence)
        )
        return [
            {
                "antecedent": list(rule.antecedent),
                "consequent": list(rule.consequent),
                "support": rule.support,
                "confidence": rule.confidence,
                "lift": rule.lift,
            }
            for rule in rules
        ]

    def _stats(self) -> dict[str, Any]:
        """Cheap introspection op, answered inline on the event loop."""
        pool_stats = self.store.array.pool.stats
        registry = self._registry
        generation = getattr(self.store, "generation", None)
        stats: dict[str, Any] = {} if generation is None else {
            "generation": generation
        }
        return stats | {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "resident_bytes": self.store.resident_bytes,
            "memory_budget": self.memory_budget,
            "pool": {
                "hits": pool_stats.hits,
                "faults": pool_stats.faults,
                "evictions": pool_stats.evictions,
            },
            "requests": registry.get("serving.requests"),
            "errors": registry.get("serving.errors"),
            "rejected": registry.get("serving.rejected"),
        }


def _ok_response(request_id: Any, result: Any) -> dict:
    response: dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def _error_response(request_id: Any, code: str, message: str) -> dict:
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "MAX_LINE_BYTES",
    "MAX_RULE_LIMIT",
    "MAX_TOPK",
    "ReproServer",
]
