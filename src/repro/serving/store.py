"""The serving store: one CFP-array on disk plus its item vocabulary.

A mining run ends with structures in *rank* vocabulary; a query server
must answer in the caller's item vocabulary. :func:`build_store`
persists both halves next to each other — the ``.cfpa`` array file via
:func:`repro.storage.save_cfp_array` and a small JSON sidecar carrying
the item table (items with supports, in rank order), the build's
``min_support``, and the transaction count (needed for rule lift).
:class:`ServingStore` opens the pair read-only behind one shared
:class:`repro.storage.BufferPool` — a
:class:`repro.storage.PooledCfpArray` for monolithic (v2) stores, a
:class:`repro.storage.PartitionedCfpArray` for partitioned (v3) ones —
and exposes the three query families the server serves: itemset support,
top-k, and "also bought" rule recommendations.

The sidecar stores the table's :meth:`repro.util.items.ItemTable.fingerprint`
and the load path re-verifies it, so an item vocabulary that did not
survive the JSON round trip (mixed item types whose rank sort changed)
fails loudly instead of silently answering for the wrong items.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Hashable, Iterable

from repro.core.cfp_growth import DEFAULT_CACHE_BUDGET, mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.errors import ReproError
from repro.fptree.growth import ListCollector
from repro.mining.topk import mine_top_k
from repro.rules import Rule, also_bought, generate_rules
from repro.storage import (
    PartitionedCfpArray,
    PooledCfpArray,
    save_cfp_array,
    save_cfp_array_partitioned,
)
from repro.storage.cfp_store import PARTITIONED_FORMAT_VERSION, read_array_header
from repro.storage.pagefile import PageFile
from repro.util.items import ItemTable, TransactionDatabase, prepare_transactions
from repro.util.queries import itemset_support

#: The item-vocabulary sidecar lives next to the array file.
SIDECAR_SUFFIX = ".items.json"

#: Default pool size for a serving store: generous relative to the mining
#: default because a server's working set is the whole array, not one
#: conditional chain.
DEFAULT_POOL_PAGES = 256


class StoreError(ReproError):
    """A serving store is missing, malformed, or inconsistent."""


def sidecar_path(array_path: str | os.PathLike[str]) -> str:
    """Path of the item-vocabulary sidecar for ``array_path``."""
    return os.fspath(array_path) + SIDECAR_SUFFIX


def write_sidecar(
    array_path: str | os.PathLike[str],
    table: ItemTable,
    n_transactions: int,
) -> str:
    """Write the item-vocabulary sidecar next to an array file.

    Shared by :func:`build_store` and the streaming snapshot publisher
    (:class:`repro.streaming.snapshots.SnapshotManager`) so every store
    a :class:`ServingStore` opens carries the same metadata shape.
    Returns the sidecar path.
    """
    sidecar = {
        "min_support": table.min_support,
        "n_transactions": n_transactions,
        "fingerprint": table.fingerprint(),
        "items": [
            [table.item_of[rank], table.rank_supports[rank]]
            for rank in range(1, len(table) + 1)
        ],
    }
    path = sidecar_path(array_path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sidecar, handle)
        handle.write("\n")
    return path


def build_store(
    database: TransactionDatabase,
    min_support: int,
    array_path: str | os.PathLike[str],
    *,
    partition_bytes: int | None = None,
) -> int:
    """Build and persist a serving store; returns the array file size.

    Runs the standard build pipeline (prepare -> CFP-tree -> convert),
    saves the array, and writes the sidecar. The sidecar is written
    *after* the array so a crash mid-build leaves no openable store.
    ``partition_bytes`` writes the partitioned (v3) format instead of the
    monolithic v2 file; :class:`ServingStore` opens either.
    """
    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(tree)
    del tree
    if partition_bytes is not None:
        size = save_cfp_array_partitioned(
            array, array_path, partition_bytes=partition_bytes
        )
    else:
        size = save_cfp_array(array, array_path)
    write_sidecar(array_path, table, len(database))
    return size


class ServingStore:
    """Read-only query facade over one persisted CFP-array.

    All query methods are thread-safe — the underlying pool and decoded-
    subarray cache carry their own locks — so the server may call them
    from executor threads concurrently. Rule generation is lazy: the
    first rules query mines the full itemset collection once (under a
    lock, so concurrent first queries do not mine twice) and caches the
    derived rule list per confidence threshold.
    """

    def __init__(
        self,
        array_path: str | os.PathLike[str],
        *,
        pool_pages: int = DEFAULT_POOL_PAGES,
        cache_budget: int = DEFAULT_CACHE_BUDGET,
        hot_bytes: int = 0,
        verify: bool = True,
    ) -> None:
        self.path = os.fspath(array_path)
        sidecar = sidecar_path(array_path)
        meta = self._read_sidecar(sidecar)
        # The sidecar is parsed into the resident ItemTable, so its size
        # is long-lived memory the admission controller must see — a store
        # with a huge vocabulary is not "free" just because the array
        # pages through the pool.
        self._sidecar_bytes = os.path.getsize(sidecar)
        try:
            supports = {item: support for item, support in meta["items"]}
        except TypeError:
            raise StoreError(
                f"{sidecar}: sidecar items are not hashable"
            ) from None
        self.table = ItemTable(meta["min_support"], supports)
        if self.table.fingerprint() != meta["fingerprint"]:
            raise StoreError(
                f"{sidecar}: item table does not round-trip "
                "(fingerprint mismatch); the store must be rebuilt"
            )
        self.n_transactions = meta["n_transactions"]
        with PageFile.open_readonly(array_path) as peek:
            version = read_array_header(peek).version
        self.array: PooledCfpArray | PartitionedCfpArray
        if version >= PARTITIONED_FORMAT_VERSION:
            self.array = PartitionedCfpArray(
                array_path,
                pool_pages,
                cache_budget,
                hot_bytes=hot_bytes,
                verify=verify,
            )
        else:
            self.array = PooledCfpArray(
                array_path, pool_pages, cache_budget, verify=verify
            )
        self._rules_lock = threading.Lock()
        self._rules_cache: dict[tuple[float, int | None], list[Rule]] = {}

    @staticmethod
    def _read_sidecar(path: str) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            raise StoreError(
                f"{path}: item sidecar not found (not a serving store; "
                "build one with `repro serve --build` or build_store())"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}: sidecar is not valid JSON: {exc}") from None
        for key in ("min_support", "n_transactions", "fingerprint", "items"):
            if key not in meta:
                raise StoreError(f"{path}: sidecar is missing {key!r}")
        items = meta["items"]
        if not isinstance(items, list) or not all(
            isinstance(pair, list) and len(pair) == 2 for pair in items
        ):
            raise StoreError(f"{path}: sidecar items must be [item, support] pairs")
        return meta

    # -- queries --------------------------------------------------------

    def support(self, items: Iterable[Hashable]) -> int:
        """Absolute support of an itemset (0 for unknown items)."""
        return itemset_support(self.array, self.table, items)

    def top_k(
        self, k: int, min_length: int = 1
    ) -> list[tuple[tuple[Hashable, ...], int]]:
        """The k best itemsets, translated to item vocabulary."""
        return [
            (self.table.ranks_to_items(ranks), support)
            for ranks, support in mine_top_k(self.array, k, min_length=min_length)
        ]

    def rules(
        self,
        min_confidence: float = 0.5,
        max_consequent_size: int | None = None,
    ) -> list[Rule]:
        """The full rule set at a confidence threshold (mined lazily)."""
        key = (float(min_confidence), max_consequent_size)
        with self._rules_lock:
            cached = self._rules_cache.get(key)
            if cached is None:
                collector = ListCollector()
                mine_array(self.array, self.table.min_support, collector)
                itemsets = [
                    (self.table.ranks_to_items(ranks), support)
                    for ranks, support in collector.itemsets
                ]
                cached = generate_rules(
                    itemsets,
                    self.n_transactions,
                    min_confidence,
                    max_consequent_size,
                )
                self._rules_cache[key] = cached
        return cached

    def also_bought(
        self,
        basket: Iterable[Hashable],
        limit: int = 10,
        min_confidence: float = 0.5,
    ) -> list[Rule]:
        """Rules a basket triggers, strongest first (see repro.rules)."""
        return also_bought(self.rules(min_confidence), basket, limit)

    # -- lifecycle ------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Long-lived memory the store holds (admission-control input).

        Covers the array reader (pool + item index + cache budget + any
        pinned hot set) *and* the item-table sidecar, whose parsed
        vocabulary stays resident for the life of the store.
        """
        return self.array.memory_bytes + self._sidecar_bytes

    def close(self) -> None:
        self.array.close()

    def __enter__(self) -> "ServingStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingStore({self.path!r}, items={len(self.table)}, "
            f"n_transactions={self.n_transactions})"
        )


__all__ = [
    "DEFAULT_POOL_PAGES",
    "SIDECAR_SUFFIX",
    "ServingStore",
    "StoreError",
    "build_store",
    "sidecar_path",
    "write_sidecar",
]
