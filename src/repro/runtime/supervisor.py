"""Supervised task execution for the parallel build and mine phases.

``ProcessPoolExecutor`` turns any worker death — OOM kill, fork failure,
a corrupted shared segment taking the interpreter down — into one opaque
``BrokenProcessPool`` that poisons every outstanding future. For a
system whose point is keeping huge mining problems *in core on one
machine* (where the OOM killer is a fact of life), that is not a
failure model; it is the absence of one. This module wraps pool
execution in a :class:`Supervisor` that provides the discipline the
secondary-memory miners apply to partition-level restarts (PAPERS.md):

* **Heartbeat watchdog.** Instead of blocking on each future, the
  supervisor wakes every ``heartbeat_interval`` seconds, harvests
  completed tasks, and checks every running task against its per-task
  deadline. A hung worker is *terminated*, not waited on.
* **Failure classification.** Each failure is classified as a
  :class:`FailureKind` — worker crash, deadline timeout, shared-memory
  attach failure, transient I/O, poisoned task (a deterministic
  exception), or pool-unavailable — and only the retryable kinds are
  retried.
* **Bounded retry with exponential backoff.** Only the *failed* tasks
  are re-executed (completed shard results are kept); tasks that were
  merely in flight on a broken pool are resubmitted without being
  charged an attempt. Task bodies are pure functions over an immutable
  shared segment and results are merged by the caller in a fixed order,
  so a retry cannot perturb the byte-identical-to-serial guarantee.
* **Graceful degradation.** When retries are exhausted, a task is
  poisoned, or the pool cannot be (re)created, the supervisor raises
  :class:`repro.errors.SupervisionError`; both parallel phases catch it
  and fall back to the serial path (unless ``--no-fallback``), so a
  ``--jobs N`` run completes wherever a ``--jobs 1`` run would.

Every event is counted in the :data:`repro.obs.metrics` registry
(``parallel.retries``, ``parallel.worker_deaths``, ``parallel.timeouts``,
``parallel.heartbeats``, ``parallel.failures.*``; the callers count
``parallel.degraded_serial``) and each retry round opens a trace span,
so a chaotic run explains itself. See docs/robustness.md.
"""

from __future__ import annotations

import enum
import os
import time
from concurrent.futures import Executor, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Hashable, Mapping, TypeVar

from repro import obs
from repro.errors import SupervisionError, TaskTimeoutError, TransientIOError

K = TypeVar("K", bound=Hashable)

#: One task: a picklable callable plus its positional arguments.
TaskSpec = tuple[Callable[..., Any], tuple[Any, ...]]


class FailureKind(enum.Enum):
    """Why a supervised task attempt failed."""

    WORKER_CRASH = "worker_crash"  #: the worker process died (pool broken)
    TIMEOUT = "timeout"  #: the attempt exceeded the per-task deadline
    ATTACH_FAILURE = "attach_failure"  #: the shared segment could not be opened
    TRANSIENT_IO = "transient_io"  #: a retryable I/O error escaped the task
    POISONED = "poisoned"  #: a deterministic exception; retrying cannot help
    POOL_UNAVAILABLE = "pool_unavailable"  #: the worker pool cannot be created


#: Kinds worth another attempt. POISONED is deterministic and
#: POOL_UNAVAILABLE blocks every task, so both fail supervision outright.
RETRYABLE_KINDS = frozenset(
    {
        FailureKind.WORKER_CRASH,
        FailureKind.TIMEOUT,
        FailureKind.ATTACH_FAILURE,
        FailureKind.TRANSIENT_IO,
    }
)


def classify_failure(exc: BaseException) -> FailureKind:
    """Map an exception surfaced by a task future to a :class:`FailureKind`."""
    if isinstance(exc, BrokenProcessPool):
        return FailureKind.WORKER_CRASH
    if isinstance(exc, TaskTimeoutError):
        return FailureKind.TIMEOUT
    if isinstance(exc, TransientIOError):
        return FailureKind.TRANSIENT_IO
    if isinstance(exc, FileNotFoundError):
        # The only files a worker task opens by name are shared-memory
        # segments; a vanished name is an attach race, not a task bug.
        return FailureKind.ATTACH_FAILURE
    return FailureKind.POISONED


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines, retry budget, and backoff shape for supervised runs."""

    max_retries: int = 2  #: attempts charged to one task beyond the first
    task_timeout: float | None = None  #: per-attempt deadline in seconds
    backoff_base: float = 0.05  #: first retry delay in seconds
    backoff_factor: float = 2.0  #: growth per subsequent retry
    backoff_max: float = 2.0  #: delay ceiling in seconds
    heartbeat_interval: float = 0.25  #: watchdog wake period in seconds
    fallback_serial: bool = True  #: degrade to the serial path on failure

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): bounded exponential.

        ``backoff(1) == backoff_base``; each further attempt multiplies
        by ``backoff_factor``, clamped to ``backoff_max``. Deliberately
        jitter-free — supervised runs must stay deterministic.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )


#: Process-wide policy overrides installed by :func:`configure` (the CLI).
_OVERRIDES: dict[str, Any] = {}


def configure(
    task_timeout: float | None = None,
    max_retries: int | None = None,
    fallback: bool | None = None,
) -> None:
    """Set process-wide policy fields (``None`` leaves a field alone).

    The CLI maps ``--task-timeout`` / ``--max-retries`` / ``--no-fallback``
    here so the policy reaches both phases without threading a parameter
    through every mining layer. ``task_timeout=0`` disables the deadline.
    """
    if task_timeout is not None:
        _OVERRIDES["task_timeout"] = task_timeout if task_timeout > 0 else None
    if max_retries is not None:
        _OVERRIDES["max_retries"] = max(0, max_retries)
    if fallback is not None:
        _OVERRIDES["fallback_serial"] = fallback


def reset_configuration() -> None:
    """Drop every :func:`configure` override (tests)."""
    _OVERRIDES.clear()


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def default_policy() -> RetryPolicy:
    """The effective policy: defaults, then environment, then CLI overrides.

    Environment knobs: ``REPRO_TASK_TIMEOUT`` (seconds; 0 disables),
    ``REPRO_MAX_RETRIES``, ``REPRO_NO_FALLBACK`` (any non-empty value
    disables serial degradation).
    """
    policy = RetryPolicy()
    timeout = _env_float("REPRO_TASK_TIMEOUT")
    if timeout is not None:
        policy = replace(policy, task_timeout=timeout if timeout > 0 else None)
    retries = _env_int("REPRO_MAX_RETRIES")
    if retries is not None:
        policy = replace(policy, max_retries=max(0, retries))
    if os.environ.get("REPRO_NO_FALLBACK"):
        policy = replace(policy, fallback_serial=False)
    if _OVERRIDES:
        policy = replace(policy, **_OVERRIDES)
    return policy


def _terminate_pool(pool: Executor) -> None:
    """Hard-stop a pool's worker processes (deadline enforcement).

    ``Executor.shutdown`` merely *waits* for running tasks, which is
    exactly wrong for a hung worker. Process pools expose their worker
    table as ``_processes``; anything without one (a thread pool in
    tests) has nothing to terminate.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


class Supervisor:
    """Run a keyed batch of pool tasks to completion under a retry policy.

    ``pool_factory`` returns the executor to submit to (it may cache and
    it may raise — a raise is classified :data:`FailureKind.POOL_UNAVAILABLE`);
    ``pool_reset`` discards the cached pool after it broke or was
    terminated so the next round starts fresh. ``phase`` labels spans and
    error messages (``"mine"`` / ``"build"``).
    """

    def __init__(
        self,
        pool_factory: Callable[[], Executor],
        policy: RetryPolicy,
        phase: str,
        pool_reset: Callable[[], None],
    ) -> None:
        self._pool_factory = pool_factory
        self._policy = policy
        self._phase = phase
        self._pool_reset = pool_reset

    def run(self, tasks: Mapping[K, TaskSpec]) -> dict[K, Any]:
        """Execute every task, retrying per policy; returns key -> result.

        Raises :class:`repro.errors.SupervisionError` when any task
        cannot be completed. Results of tasks that already finished are
        kept across retry rounds — only failed (or preempted) tasks are
        re-executed.
        """
        remaining: dict[K, TaskSpec] = dict(tasks)
        attempts: dict[K, int] = {key: 0 for key in tasks}
        results: dict[K, Any] = {}
        round_no = 0
        barren_rounds = 0
        while remaining:
            round_no += 1
            before = len(remaining)
            failed = self._run_round(remaining, results)
            if not failed:
                # A round that completed nothing and charged nobody (a pool
                # that broke before accepting a single task) must not spin:
                # two in a row means the pool is effectively unavailable.
                if len(remaining) == before:
                    barren_rounds += 1
                    if barren_rounds > 1:
                        raise SupervisionError(
                            f"{self._phase}: worker pool broke twice before "
                            f"accepting any task",
                            kind=FailureKind.POOL_UNAVAILABLE.value,
                        )
                else:
                    barren_rounds = 0
                continue
            barren_rounds = 0
            delay = self._charge_and_classify(failed, attempts)
            with obs.maybe_span(
                "parallel.retry",
                phase=self._phase,
                round=round_no,
                tasks=len(failed),
                kinds=",".join(sorted({kind.value for kind in failed.values()})),
                backoff_s=delay,
            ):
                obs.metrics.add("parallel.retries", len(failed))
                if delay > 0:
                    time.sleep(delay)
        return results

    # ------------------------------------------------------------------
    # One submission round
    # ------------------------------------------------------------------

    def _run_round(
        self, remaining: dict[K, TaskSpec], results: dict[K, Any]
    ) -> dict[K, FailureKind]:
        """Submit every remaining task once; harvest under the watchdog.

        Completed tasks move from ``remaining`` into ``results``. Returns
        the tasks that must be charged a retry attempt; tasks that were
        merely in flight when the pool broke stay in ``remaining``
        uncharged.
        """
        try:
            pool = self._pool_factory()
        except Exception as exc:  # lint: ignore[INV004] - classification point
            raise SupervisionError(
                f"{self._phase}: worker pool unavailable: {exc}",
                kind=FailureKind.POOL_UNAVAILABLE.value,
            ) from exc
        key_of: dict[Future[Any], K] = {}
        started: dict[K, float] = {}
        failed: dict[K, FailureKind] = {}
        pool_dead = False
        for key, (fn, args) in remaining.items():
            try:
                future = pool.submit(fn, *args)
            except Exception:  # lint: ignore[INV004] - classification point
                # The pool broke mid-submission (a worker died while later
                # tasks were still being handed over). Harvest whatever was
                # submitted — those futures carry the real failure — and
                # leave the rest in `remaining` for the next round.
                pool_dead = True
                break
            key_of[future] = key
            started[key] = time.monotonic()
        if pool_dead and not key_of:
            obs.metrics.add("parallel.worker_deaths")
            self._pool_reset()
            return failed
        pending = set(key_of)
        while pending:
            done, pending = wait(pending, timeout=self._policy.heartbeat_interval)
            if obs.get_tracer() is not None:
                # Routine-path counter: untraced runs keep the registry
                # empty (failure counters below fire on exceptions only).
                obs.metrics.add("parallel.heartbeats")
            for future in done:
                key = key_of[future]
                try:
                    results[key] = future.result()
                    del remaining[key]
                except Exception as exc:  # lint: ignore[INV004] - classification point
                    kind = classify_failure(exc)
                    failed[key] = kind
                    obs.metrics.add(f"parallel.failures.{kind.value}")
                    if kind is FailureKind.WORKER_CRASH:
                        pool_dead = True
            if pool_dead:
                # A broken pool fails every outstanding future; the tasks
                # still pending here were victims, not causes — leave them
                # in `remaining` uncharged for the next round.
                obs.metrics.add("parallel.worker_deaths")
                break
            if self._policy.task_timeout is not None and pending:
                now = time.monotonic()
                overdue = [
                    key_of[future]
                    for future in pending
                    if now - started[key_of[future]] > self._policy.task_timeout
                ]
                if overdue:
                    # The deadline is enforced by killing the workers: a
                    # future past its deadline cannot be cancelled, only
                    # orphaned. Unexpired in-flight tasks become victims.
                    for key in overdue:
                        failed[key] = FailureKind.TIMEOUT
                        obs.metrics.add(f"parallel.failures.{FailureKind.TIMEOUT.value}")
                    obs.metrics.add("parallel.timeouts", len(overdue))
                    _terminate_pool(pool)
                    pool_dead = True
                    break
        if pool_dead:
            self._pool_reset()
        return failed

    # ------------------------------------------------------------------
    # Retry accounting
    # ------------------------------------------------------------------

    def _charge_and_classify(
        self, failed: dict[K, FailureKind], attempts: dict[K, int]
    ) -> float:
        """Charge one attempt per failed task; returns the backoff delay.

        Raises :class:`SupervisionError` for non-retryable failures and
        for tasks whose retry budget is exhausted.
        """
        for key, kind in failed.items():
            if kind not in RETRYABLE_KINDS:
                raise SupervisionError(
                    f"{self._phase}: task {key!r} failed deterministically "
                    f"({kind.value}); not retrying",
                    kind=kind.value,
                    failures={str(key): kind.value},
                )
            attempts[key] += 1
        exhausted = {
            key: kind
            for key, kind in failed.items()
            if attempts[key] > self._policy.max_retries
        }
        if exhausted:
            dominant = next(iter(exhausted.values()))
            raise SupervisionError(
                f"{self._phase}: {len(exhausted)} task(s) failed after "
                f"{self._policy.max_retries} retries "
                f"(kinds: {sorted({kind.value for kind in exhausted.values()})})",
                kind=dominant.value,
                failures={str(key): kind.value for key, kind in exhausted.items()},
            )
        return self._policy.backoff(max(attempts[key] for key in failed))


__all__ = [
    "FailureKind",
    "RETRYABLE_KINDS",
    "RetryPolicy",
    "Supervisor",
    "TaskSpec",
    "classify_failure",
    "configure",
    "default_policy",
    "reset_configuration",
]
