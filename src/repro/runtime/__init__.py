"""Fault-tolerant supervised execution for the parallel phases.

Public surface of :mod:`repro.runtime.supervisor`: the
:class:`Supervisor` (heartbeat watchdog, per-task deadlines, failure
classification, bounded exponential-backoff retry), the
:class:`RetryPolicy` it runs under, and the :func:`configure` /
:func:`default_policy` pair the CLI uses to set the process-wide policy.
Both :func:`repro.core.parallel.mine_array_parallel` and
:func:`repro.core.build_parallel.build_tree_parallel` execute their
worker tasks through this layer. See docs/robustness.md.
"""

from repro.runtime.supervisor import (
    RETRYABLE_KINDS,
    FailureKind,
    RetryPolicy,
    Supervisor,
    TaskSpec,
    classify_failure,
    configure,
    default_policy,
    reset_configuration,
)

__all__ = [
    "FailureKind",
    "RETRYABLE_KINDS",
    "RetryPolicy",
    "Supervisor",
    "TaskSpec",
    "classify_failure",
    "configure",
    "default_policy",
    "reset_configuration",
]
