"""Parallel sharded build phase (leading-rank partitioning).

The build phase inserts one ranked transaction at a time into the ternary
CFP-tree — the last fully serial hot path now that the mine phase fans out.
This module parallelizes it with the projection idea used by partition-based
miners (see PAPERS.md): a transaction ``[r1 < r2 < ...]`` only ever touches
the root's level-1 subtree rooted at its *leading rank* ``r1``, so routing
transactions by leading rank makes the per-shard trees fully independent.

* **Ownership sets.** The distinct leading ranks are partitioned into
  ``jobs`` disjoint sets, LPT-balanced by the counting-phase weight of each
  rank (total ranks across its transactions — a direct proxy for insert
  cost). Each worker builds one :class:`~repro.core.ternary.TernaryCfpTree`
  shard, in its own arena, from exactly the transactions whose leading rank
  it owns, via the sorted-insert fast path.
* **One segment, no copies.** The prepared transactions are published once
  through :mod:`multiprocessing.shared_memory` as ``[header | offsets |
  flat ranks]``; workers attach, filter by leading rank, and detach. Only
  the (small) ownership set is pickled per task.
* **Deterministic rank-ordered merge.** Workers return their shards
  *flattened* (:func:`repro.core.conversion.flatten_subtrees`): per level-1
  subtree, the preorder ``(ranks, parents, counts)`` arrays with cumulative
  counts already folded in. The parent splices the subtrees in ascending
  leading-rank order through :func:`repro.core.conversion.splice_subtree` —
  the same cursor walk the serial converter uses — rebasing every ``dpos``
  against the global per-rank cursors, then bulk-encodes the subarrays.
  Because the serial DFS is exactly the concatenation of the level-1
  subtree DFSs in ascending leading-rank order, and the CFP-tree is
  insertion-order independent, the resulting :class:`CfpArray` is
  **byte-identical to the serial build+convert for any worker count**.
  (Splicing raw per-shard *bytes* would not be: a rebased ``dpos`` can
  change its varint width, which shifts every later local position in the
  same subarray — the merge must re-run the sizing walk, which the flat
  arrays make a tight loop instead of a tree traversal.)

The worker pool is shared with the mine phase (:mod:`repro.core.parallel`),
so a ``--build-jobs N --jobs N`` run forks exactly one pool.
"""

from __future__ import annotations

import struct
from array import array as _flatarray
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro import faultinject, obs
from repro.core.cfp_array import CfpArray
from repro.core.conversion import (
    Layout,
    assemble,
    convert,
    flatten_subtrees,
    splice_subtree,
)
from repro.core.parallel import _attach_untracked, _get_pool, shutdown_pools
from repro.core.ternary import TernaryCfpTree
from repro.errors import ParallelBuildError, SupervisionError
from repro.obs.tracer import Tracer
from repro.runtime import RetryPolicy, Supervisor, default_policy

#: Segment layout: magic, format version, n_ranks, transaction count, flat
#: rank count — followed by ``n_txns + 1`` little-endian u64 offsets into the
#: flat rank area, then the concatenated transaction ranks as u32s.
_TXN_HEADER = struct.Struct("<8sHxxxxxxQQQ")

_TXN_MAGIC = b"CFPTXN\x00\x00"

_TXN_FORMAT_VERSION = 1

#: One flattened shard subtree shipped back by a worker:
#: ``(leading_rank, ranks_blob, parents_blob, counts_blob)`` with the flat
#: preorder arrays packed as little-endian i64 bytes (cheap to pickle).
_SubtreeBlob = tuple[int, bytes, bytes, bytes]

#: One build task's result: subtree blobs, exported span records (None when
#: untraced), and the worker's metric-registry movement.
_BuildResult = tuple[
    list[_SubtreeBlob], list[dict[str, Any]] | None, dict[str, int] | None
]


def _pack(values: list[int]) -> bytes:
    return _flatarray("q", values).tobytes()


def _unpack(blob: bytes) -> list[int]:
    values = _flatarray("q")
    values.frombytes(blob)
    return values.tolist()


# ----------------------------------------------------------------------
# Shared-memory publication (parent side)
# ----------------------------------------------------------------------


def publish_transactions(
    transactions: Sequence[list[int]], n_ranks: int
) -> tuple[shared_memory.SharedMemory, dict[int, int]]:
    """Copy the prepared transactions into a fresh shared-memory segment.

    Returns ``(segment, weights)`` where ``weights`` maps each distinct
    leading rank to the total number of ranks across its transactions —
    the LPT balance weight for :func:`partition_leading_ranks`. The caller
    owns the segment and must ``close()`` and ``unlink()`` it.
    """
    n_txns = len(transactions)
    flat_len = sum(len(txn) for txn in transactions)
    offsets_size = (n_txns + 1) * 8
    total = _TXN_HEADER.size + offsets_size + flat_len * 4
    segment = shared_memory.SharedMemory(create=True, size=total)
    view = memoryview(segment.buf)
    weights: dict[int, int] = {}
    try:
        _TXN_HEADER.pack_into(
            view, 0, _TXN_MAGIC, _TXN_FORMAT_VERSION, n_ranks, n_txns, flat_len
        )
        offsets = view[_TXN_HEADER.size : _TXN_HEADER.size + offsets_size].cast("Q")
        flat = view[_TXN_HEADER.size + offsets_size :].cast("I")
        try:
            cursor = 0
            for index, txn in enumerate(transactions):
                offsets[index] = cursor
                flat[cursor : cursor + len(txn)] = _flatarray("I", txn)
                cursor += len(txn)
                lead = txn[0]
                weights[lead] = weights.get(lead, 0) + len(txn)
            offsets[n_txns] = cursor
        finally:
            offsets.release()
            flat.release()
    finally:
        view.release()
    return segment, weights


def partition_leading_ranks(
    weights: dict[int, int], jobs: int
) -> list[frozenset[int]]:
    """LPT-partition the distinct leading ranks into ``jobs`` ownership sets.

    Classic longest-processing-time: ranks are taken heaviest first and
    assigned to the least-loaded worker, with deterministic tie-breaks
    (rank ascending among equal weights, lowest worker index among equal
    loads). Determinism here is a debugging nicety, not a correctness
    requirement — any disjoint cover yields byte-identical output.
    """
    loads = [0] * jobs
    owned: list[set[int]] = [set() for __ in range(jobs)]
    for rank in sorted(weights, key=lambda r: (-weights[r], r)):
        worker = loads.index(min(loads))
        owned[worker].add(rank)
        loads[worker] += weights[rank]
    return [frozenset(ranks) for ranks in owned]


# ----------------------------------------------------------------------
# Worker task
# ----------------------------------------------------------------------


def _build_shard_task(
    name: str,
    owned: frozenset[int],
    want_trace: bool,
    faults: tuple[str, str | None] | None = None,
) -> _BuildResult:
    """Build one tree shard from the owned leading ranks and flatten it.

    Attaches to the published transaction segment, inserts every owned
    transaction through the sorted-insert fast path, and returns the
    shard's level-1 subtrees as flat preorder arrays — the merge input of
    :func:`build_tree_parallel`. The attachment is released before the
    task returns; the parent owns the unlink.

    ``faults`` is the parent's exported fault-injection plan (``None``
    outside chaos runs), adopted before anything else so count-bounded
    faults share one cross-process budget.
    """
    faultinject.adopt(faults)
    faultinject.fire("build.worker", shard=min(owned, default=-1))
    segment = _attach_untracked(name)
    base = memoryview(segment.buf)
    try:
        magic, version, n_ranks, n_txns, flat_len = _TXN_HEADER.unpack_from(base, 0)
        if magic != _TXN_MAGIC or version != _TXN_FORMAT_VERSION:
            raise ParallelBuildError(
                f"shared segment {name!r} is not a v{_TXN_FORMAT_VERSION} "
                f"transaction block"
            )
        offsets_end = _TXN_HEADER.size + (n_txns + 1) * 8
        offsets = base[_TXN_HEADER.size : offsets_end].cast("Q")
        flat = base[offsets_end : offsets_end + flat_len * 4].cast("I")
        try:
            txns: list[list[int]] = []
            for index in range(n_txns):
                start = offsets[index]
                if flat[start] in owned:
                    txns.append(list(flat[start : offsets[index + 1]]))
        finally:
            offsets.release()
            flat.release()
    finally:
        base.release()
        segment.close()
    tracer = Tracer() if want_trace else None
    previous = obs.set_tracer(tracer) if want_trace else None
    registry_before = obs.metrics.counters() if want_trace else {}
    try:
        with obs.maybe_span(
            "build_shard", ranks_owned=len(owned), transactions=len(txns)
        ) as span:
            tree = TernaryCfpTree(n_ranks)
            tree.insert_batch(txns)
            if want_trace:
                span.set("logical_nodes", tree.logical_node_count)
                span.set("tree_bytes", tree.memory_bytes)
                span.set("prefix_skip_hits", tree.prefix_skip_hits)
        blobs: list[_SubtreeBlob] = [
            (lead, _pack(ranks), _pack(parents), _pack(counts))
            for lead, ranks, parents, counts in flatten_subtrees(tree)
        ]
    finally:
        if want_trace:
            obs.set_tracer(previous)
    delta: dict[str, int] = {}
    if want_trace:
        for key, value in obs.metrics.counters().items():
            moved = value - registry_before.get(key, 0)
            if moved:
                delta[key] = moved
    records = tracer.export() if tracer is not None else None
    return blobs, records, delta or None


# ----------------------------------------------------------------------
# The parallel build phase
# ----------------------------------------------------------------------


def build_tree_parallel(
    transactions: Sequence[list[int]],
    n_ranks: int,
    jobs: int = 1,
    policy: RetryPolicy | None = None,
) -> CfpArray:
    """Build the top-level CFP-array from prepared rank transactions.

    ``jobs <= 1`` (or a transaction set with fewer than two distinct
    leading ranks) runs the serial path: sorted-insert batch build plus
    :func:`repro.core.conversion.convert`. ``jobs > 1`` shards the build by
    leading rank across the shared worker pool and merges the flattened
    shards in ascending leading-rank order. The produced array is
    byte-identical for any worker count.

    Shard tasks run under a :class:`repro.runtime.Supervisor` with
    ``policy`` (default :func:`repro.runtime.default_policy`): a dead or
    hung worker re-executes only its own shard — finished shards are
    kept, and the ascending-leading-rank merge is indifferent to which
    attempt produced a blob. If supervision fails outright the build
    degrades to the serial path (counting ``parallel.degraded_serial``)
    unless ``policy.fallback_serial`` is off, in which case it raises
    :class:`repro.errors.ParallelBuildError`.

    Note the result has no cache budget set (like a raw ``convert``);
    callers that mine it should call :meth:`CfpArray.set_cache_budget`.
    """
    txns = transactions if isinstance(transactions, list) else list(transactions)
    if jobs <= 1:
        return convert(TernaryCfpTree.from_rank_transactions(txns, n_ranks))
    # Empty transactions are no-ops (insert_batch skips them) but would make
    # a worker read the *next* transaction's leading rank through an empty
    # slice — drop them before publishing.
    if any(not txn for txn in txns):
        txns = [txn for txn in txns if txn]
    leads = {txn[0] for txn in txns}
    if len(leads) < 2:
        return convert(TernaryCfpTree.from_rank_transactions(txns, n_ranks))
    if policy is None:
        policy = default_policy()
    parent_tracer = obs.get_tracer()
    want_trace = parent_tracer is not None
    segment, weights = publish_transactions(txns, n_ranks)
    owned_sets = partition_leading_ranks(weights, min(jobs, len(weights)))
    results: list[_BuildResult] = []
    with obs.maybe_span(
        "build_parallel", jobs=len(owned_sets), transactions=len(txns)
    ):
        parent_span_id = (
            parent_tracer.current_span_id if parent_tracer is not None else None
        )
        try:
            faults = faultinject.exported()
            tasks: dict[int, tuple[Any, tuple[Any, ...]]] = {
                worker: (
                    _build_shard_task,
                    (segment.name, owned, want_trace, faults),
                )
                for worker, owned in enumerate(owned_sets)
            }
            supervisor = Supervisor(
                lambda: _get_pool(len(owned_sets)),
                policy,
                phase="build",
                pool_reset=shutdown_pools,
            )
            try:
                keyed = supervisor.run(tasks)
            except SupervisionError as exc:
                if not policy.fallback_serial:
                    raise ParallelBuildError(
                        f"parallel build failed ({exc}) and serial fallback "
                        f"is disabled"
                    ) from exc
                obs.metrics.add("parallel.degraded_serial")
                with obs.maybe_span(
                    "parallel.degraded_serial", phase="build", reason=exc.kind
                ):
                    return convert(
                        TernaryCfpTree.from_rank_transactions(txns, n_ranks)
                    )
            results = [keyed[worker] for worker in range(len(owned_sets))]
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
        # Deterministic merge: splice every shard subtree in ascending
        # leading-rank order — the serial DFS order — rebasing dpos values
        # against the global per-rank cursors, then bulk-encode.
        subtrees: dict[int, tuple[bytes, bytes, bytes]] = {}
        for worker, (blobs, records, metrics_delta) in enumerate(results):
            for lead, ranks_blob, parents_blob, counts_blob in blobs:
                if lead in subtrees:
                    raise ParallelBuildError(
                        f"leading rank {lead} produced by two build shards"
                    )
                subtrees[lead] = (ranks_blob, parents_blob, counts_blob)
            if records is not None and parent_tracer is not None:
                parent_tracer.ingest(records, parent_id=parent_span_id, worker=worker)
            if metrics_delta:
                for key, value in metrics_delta.items():
                    obs.metrics.add(key, value)
        if set(subtrees) != leads:
            missing = sorted(leads - set(subtrees))
            raise ParallelBuildError(
                f"build shards returned no subtree for leading ranks {missing}"
            )
        layout = Layout(n_ranks)
        for lead in sorted(subtrees):
            ranks_blob, parents_blob, counts_blob = subtrees.pop(lead)
            splice_subtree(
                layout, _unpack(ranks_blob), _unpack(parents_blob), _unpack(counts_blob)
            )
        return assemble(layout)
