"""Field accounting for the CFP structures (paper §3.2 Table 2, §4.2 Fig 6).

Table 2 shows why the CFP-tree compresses so well: after the structural
changes, ``pcount`` is zero for almost every node (4 leading zero bytes) and
``delta_item`` almost always fits one byte. These functions compute the same
distributions for any tree built by this library.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.fptree.accounting import FieldDistribution

#: Fields of a logical CFP-tree node (Table 2 rows).
CFP_FIELDS = ("delta_item", "pcount")


class _NodeSource(Protocol):
    """Anything that can enumerate logical nodes with their parent rank."""

    def iter_nodes_with_parent(self) -> Iterator[tuple[int, int, int]]: ...


def cfp_field_distributions(tree: _NodeSource) -> dict[str, FieldDistribution]:
    """Leading-zero-byte distributions of ``delta_item`` and ``pcount``.

    ``tree`` may be a :class:`repro.core.TernaryCfpTree` or any object with
    ``iter_nodes_with_parent()`` yielding ``(rank, pcount, parent_rank)``.
    """
    delta_dist = FieldDistribution()
    pcount_dist = FieldDistribution()
    for rank, pcount, parent_rank in tree.iter_nodes_with_parent():
        delta_dist.add(rank - parent_rank)
        pcount_dist.add(pcount)
    return {"delta_item": delta_dist, "pcount": pcount_dist}
