"""CFP-growth: FP-growth over the compressed structures (paper §3, §4).

The algorithm is FP-growth with both phases re-based on the CFP structures:

1. **Build** — two database passes produce a ternary CFP-tree.
2. **Convert** — the tree becomes a CFP-array; the tree is discarded
   immediately afterwards so its memory can serve the mine phase (§3.5).
3. **Mine** — items are processed least frequent first. For each item, the
   prefix paths are collected by backward traversal in the CFP-array, a
   *conditional* CFP-tree is built from them, converted, and mined
   recursively. Trees that degenerate to a single path are enumerated
   directly without conversion.

The miner is instrumented: a :class:`repro.machine.Meter` (optional)
receives structure-size samples and operation counts that drive the
simulated-machine experiments.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Protocol

from repro.algorithms.base import register
from repro.core.cfp_array import CfpArray
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.util.items import TransactionDatabase, prepare_transactions


class SupportCollector(Protocol):
    """Sink for mined itemsets (:class:`repro.fptree.growth.ListCollector`)."""

    def emit(self, itemset: tuple[int, ...], support: int) -> None: ...

    def emit_path_subsets(
        self, path: list[tuple[int, int]], suffix: tuple[int, ...]
    ) -> None: ...


def mine_array(
    array: CfpArray,
    min_support: int,
    collector: SupportCollector,
    suffix: tuple[int, ...] = (),
    meter: Any = None,
) -> None:
    """Recursively mine a CFP-array (the §2.1 mine loop on §3.4 structures)."""
    for rank in array.active_ranks_descending():
        support = array.rank_support(rank)
        if support < min_support:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        conditional = _conditional_tree(array, rank, min_support, meter)
        if conditional is None:
            continue
        path = conditional.single_path()
        if path is not None:
            if path:
                collector.emit_path_subsets(path, itemset)
            if meter is not None:
                meter.on_structure_freed(conditional.memory_bytes)
            continue
        cond_array = convert(conditional)
        if meter is not None:
            meter.on_conversion(conditional, cond_array)
        # The conditional tree is discarded here; only the array recurses.
        del conditional
        mine_array(cond_array, min_support, collector, itemset, meter)
        if meter is not None:
            meter.on_structure_freed(cond_array.memory_bytes)


def _conditional_tree(
    array: CfpArray, rank: int, min_support: int, meter: Any = None
) -> TernaryCfpTree | None:
    """Build the conditional CFP-tree for ``rank`` from its prefix paths."""
    paths = []
    counts: dict[int, int] = defaultdict(int)
    for local, __, __, count in array.iter_subarray(rank):
        path = array.path_ranks(rank, local)
        if path:
            paths.append((path, count))
            for path_rank in path:
                counts[path_rank] += count
    if meter is not None:
        meter.on_mine_scan(array.subarray_bytes(rank), sum(len(p) for p, __ in paths))
    frequent = {r for r, c in counts.items() if c >= min_support}
    if not frequent:
        return None
    conditional = TernaryCfpTree(array.n_ranks)
    inserted = False
    for path, count in paths:
        filtered = [r for r in path if r in frequent]
        if filtered:
            conditional.insert(filtered, count)
            inserted = True
    if not inserted:
        return None
    if meter is not None:
        meter.on_structure_built(conditional.memory_bytes)
    return conditional


def mine_rank_transactions(
    transactions: list[list[int]],
    n_ranks: int,
    min_support: int,
    collector: SupportCollector | None = None,
    meter: Any = None,
) -> SupportCollector:
    """Full CFP-growth over prepared rank transactions; returns the collector."""
    if collector is None:
        collector = ListCollector()
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    if meter is not None:
        meter.on_build(tree)
    path = tree.single_path()
    if path is not None:
        if path:
            collector.emit_path_subsets(path, ())
        return collector
    array = convert(tree)
    if meter is not None:
        meter.on_conversion(tree, array)
    del tree  # §3.5: the CFP-tree is discarded right after conversion.
    mine_array(array, min_support, collector, (), meter)
    return collector


def cfp_growth(
    database: TransactionDatabase, min_support: int
) -> list[tuple[tuple[Hashable, ...], int]]:
    """End-to-end CFP-growth over an item-level database."""
    table, transactions = prepare_transactions(database, min_support)
    collector = ListCollector()
    mine_rank_transactions(transactions, len(table), min_support, collector)
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.itemsets
    ]


@register
class CfpGrowth:
    """Miner-interface wrapper around :func:`cfp_growth`."""

    name = "cfp-growth"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[tuple[tuple[Hashable, ...], int]]:
        return cfp_growth(database, min_support)
