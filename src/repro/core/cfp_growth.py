"""CFP-growth: FP-growth over the compressed structures (paper §3, §4).

The algorithm is FP-growth with both phases re-based on the CFP structures:

1. **Build** — two database passes produce a ternary CFP-tree.
2. **Convert** — the tree becomes a CFP-array; the tree is discarded
   immediately afterwards so its memory can serve the mine phase (§3.5).
3. **Mine** — items are processed least frequent first. For each item, the
   prefix paths are collected by backward traversal in the CFP-array, a
   *conditional* CFP-tree is built from them, converted, and mined
   recursively. Trees that degenerate to a single path are enumerated
   directly without conversion.

The miner is instrumented: a :class:`repro.machine.Meter` (optional)
receives structure-size samples and operation counts that drive the
simulated-machine experiments.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Protocol

from repro import obs
from repro.algorithms.base import register
from repro.core import kernels
from repro.core.cfp_array import CfpArray
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.fptree.growth import ListCollector
from repro.machine.meter import Meter
from repro.obs.tracer import Span, Tracer
from repro.util.items import TransactionDatabase, prepare_transactions


class SupportCollector(Protocol):
    """Sink for mined itemsets (:class:`repro.fptree.growth.ListCollector`)."""

    def emit(self, itemset: tuple[int, ...], support: int) -> None: ...

    def emit_path_subsets(
        self, path: list[tuple[int, int]], suffix: tuple[int, ...]
    ) -> None: ...


def _meter_counts(meter: Any) -> tuple[int, int, int, float]:
    """Snapshot of a meter's cumulative counters, for span deltas."""
    meter.flush_mine_scans()
    return (
        meter._total_ops,
        sum(p.bytes_touched for p in meter.phases),
        sum(p.io_bytes for p in meter.phases),
        meter._integral,
    )


def _attach_meter_delta(
    span: Span, meter: Any, before: tuple[int, int, int, float]
) -> None:
    """Write the meter's movement since ``before`` onto a span.

    This is the meter->span bridge: every traced span's ``ops`` /
    ``bytes_touched`` numbers are *deltas of the one live Meter*, so the
    trace and the meter cannot disagree —
    :func:`repro.obs.report.meter_from_trace` rebuilds the same totals.
    """
    ops, touched, io_bytes, integral = _meter_counts(meter)
    span.set("ops", ops - before[0])
    span.set("bytes_touched", touched - before[1])
    if io_bytes - before[2]:
        span.set("io_bytes", io_bytes - before[2])
    span.set("integral", integral - before[3])
    span.set("peak_bytes", meter.peak_bytes)


def mine_array(
    array: CfpArray,
    min_support: int,
    collector: SupportCollector,
    suffix: tuple[int, ...] = (),
    meter: Any = None,
) -> None:
    """Recursively mine a CFP-array (the §2.1 mine loop on §3.4 structures).

    With a tracer installed (:func:`repro.obs.set_tracer`) the *top-level*
    loop (``suffix == ()``) emits one ``mine_rank`` span per rank, carrying
    meter deltas — the same per-rank granularity the parallel miner ships
    back from its workers, so serial and parallel traces have one shape.
    Recursive (conditional) calls are never traced per-span: tracing must
    not change the mine phase's asymptotics.
    """
    tracer = obs.get_tracer()
    if tracer is not None and not suffix:
        _mine_array_traced(array, min_support, collector, meter, tracer)
        return
    for rank in array.active_ranks_descending():
        mine_rank(array, rank, min_support, collector, suffix, meter)
    if meter is not None and not suffix:
        # Untraced metered runs never hit a span snapshot; fold the
        # batched scan accounting in before the caller reads the meter.
        meter.flush_mine_scans()


def mine_array_partitioned(
    array: Any,
    min_support: int,
    collector: SupportCollector,
    meter: Any = None,
) -> None:
    """Partition-at-a-time mine loop over a partitioned (v3) CFP-array.

    ``array`` is a :class:`repro.storage.partitioned.PartitionedCfpArray`
    (typed structurally — core must not import storage): it adds
    ``partitions_descending`` / ``begin_partition`` /
    ``active_ranks_in_partition`` on top of the :class:`CfpArray`
    traversal interface. Partitions are visited in descending rank order
    and ranks descending within each, which concatenates to exactly
    :func:`mine_array`'s global least-frequent-first order — the output
    is byte-identical to the monolithic mine. ``begin_partition`` hands
    the scheduler's next-partition hint to the array's background
    prefetcher before the active partition is scanned, so sequential
    read-ahead overlaps the columnar mine work: only the active
    partition, the read-ahead, and the pinned hot set need be resident.
    """
    for part in array.partitions_descending():
        array.begin_partition(part.index)
        for rank in array.active_ranks_in_partition(part):
            mine_rank(array, rank, min_support, collector, (), meter)
    if meter is not None:
        meter.flush_mine_scans()


def _mine_array_traced(
    array: CfpArray,
    min_support: int,
    collector: SupportCollector,
    meter: Any,
    tracer: Tracer,
) -> None:
    """Top-level mine loop with per-rank spans (serial tracing path)."""
    # Results never depend on the meter; a local one supplies span deltas
    # when the caller did not pass its own.
    if meter is None:
        meter = Meter()
    cache_before = array.cache_counts()
    backend = kernels.backend()  # constant per process, not per span
    for rank in array.active_ranks_descending():
        span = tracer.begin_span(
            "mine_rank",
            {
                "rank": rank,
                "subarray_bytes": array.subarray_bytes(rank),
                "kernel_backend": backend,
            },
        )
        try:
            before = _meter_counts(meter)
            mine_rank(array, rank, min_support, collector, (), meter)
            _attach_meter_delta(span, meter, before)
        finally:
            tracer.end_span(span)
    array.publish_cache_metrics(obs.metrics, baseline=cache_before)


def mine_rank(
    array: CfpArray,
    rank: int,
    min_support: int,
    collector: SupportCollector,
    suffix: tuple[int, ...] = (),
    meter: Any = None,
) -> None:
    """Mine one top-level rank of ``array`` — the body of the outer loop.

    Exposed separately so the parallel miner (:mod:`repro.core.parallel`)
    can run per-rank tasks through exactly the serial code path, which is
    what makes worker output byte-identical to the serial miner's.
    """
    support = array.rank_support(rank)
    if support < min_support:
        return
    itemset = (rank,) + suffix
    collector.emit(itemset, support)
    chain, cond_array = _conditional_struct(array, rank, min_support, meter)
    if chain is not None:
        # Degenerate (single-path) conditional: the chain already carries
        # the suffix-summed counts the tree's single_path() would report,
        # and no per-node structure was ever materialized.
        collector.emit_path_subsets(chain, itemset)
        return
    if cond_array is None:
        return
    cond_array.set_cache_budget(array.cache_budget)
    mine_array(cond_array, min_support, collector, itemset, meter)
    if obs.get_tracer() is not None:
        # Conditional arrays are ephemeral; fold their cache counters into
        # the registry before they vanish (traced runs only — one publish
        # per conditional tree, never per node).
        cond_array.publish_cache_metrics(obs.metrics)
    if meter is not None:
        meter.on_structure_freed(cond_array.memory_bytes)


def _conditional_struct(
    array: CfpArray, rank: int, min_support: int, meter: Any = None
) -> tuple[list[tuple[int, int]] | None, CfpArray | None]:
    """Build ``rank``'s conditional structure via the columnar kernels.

    Returns ``(chain, None)`` when the conditional degenerates to a
    single path — ``chain`` is exactly what the conditional tree's
    ``single_path()`` would report, but no tree is ever built —
    ``(None, cond_array)`` with the conditional CFP-array encoded
    straight from the aggregated paths otherwise, and ``(None, None)``
    when nothing frequent remains. The mined output is bit-identical to
    :func:`_conditional_tree_reference` (the per-node implementation this
    replaced, retained for the identity suites): sorted aggregated paths
    determine the logical conditional trie, and
    :func:`repro.core.kernels.build_conditional_array` encodes that trie
    through the same splice/assemble primitives ``convert`` uses — the
    intermediate ternary tree never exists.
    """
    paths = array.prefix_paths(rank)
    if not paths:
        if meter is not None:
            meter._scan_ops += 1
            meter._scan_bytes += array.subarray_bytes(rank)
        return None, None
    # Prefix paths hold strict ancestors, so every rank on them is < rank:
    # the counts column only needs to reach rank - 1, not n_ranks.
    if meter is None:
        counts = kernels.conditional_counts(paths, rank - 1)
    else:
        # on_mine_scan's quantities, batched as plain adds: the method
        # call per conditional dominated traced-run overhead once the
        # kernels made the conditionals themselves this cheap. Readers
        # fold the pending adds in via Meter.flush_mine_scans().
        counts, items = kernels.conditional_counts_metered(paths, rank - 1)
        meter._scan_ops += items + 1
        meter._scan_bytes += array.subarray_bytes(rank) + items * 3
    aggregated = kernels.filter_aggregate(paths, counts, min_support)
    if not aggregated:
        return None, None
    chain = kernels.single_path_merge(aggregated)
    if chain is not None:
        return chain, None
    cond_array = kernels.build_conditional_array(
        sorted(aggregated.items()), array.n_ranks
    )
    if meter is not None:
        meter.on_structure_built(cond_array.memory_bytes)
    return None, cond_array


def _conditional_tree_reference(
    array: CfpArray, rank: int, min_support: int, meter: Any = None
) -> TernaryCfpTree | None:
    """Per-node reference for :func:`_conditional_struct` (tests only).

    The pre-kernel implementation, kept verbatim so the hypothesis
    identity suites can hold the columnar path to it: dict-increment
    counting, per-path filtering, and one root descent per prefix path.
    The kernels must produce a conditional whose converted array — and
    single-path verdict — match this tree's exactly.
    """
    paths = []
    counts: dict[int, int] = defaultdict(int)
    for path, count in array.prefix_paths(rank):
        if path:
            paths.append((path, count))
            for path_rank in path:
                counts[path_rank] += count
    if meter is not None:
        meter.on_mine_scan(array.subarray_bytes(rank), sum(len(p) for p, __ in paths))
    frequent = {r for r, c in counts.items() if c >= min_support}
    if not frequent:
        return None
    conditional = TernaryCfpTree(array.n_ranks)
    inserted = False
    for path, count in paths:
        filtered = [r for r in path if r in frequent]
        if filtered:
            conditional.insert(filtered, count)
            inserted = True
    if not inserted:
        return None
    if meter is not None:
        meter.on_structure_built(conditional.memory_bytes)
    return conditional


#: Default byte budget of the decoded-subarray LRU cache the mine phase
#: enables on every CFP-array it creates (see docs/performance.md).
#: Rebased from 1 MiB when the cache switched to charging *decoded*
#: column bytes (the honest residency, ~6-8× the encoded length): 8 MiB
#: decoded keeps at least the working set the old encoded-byte budget
#: effectively cached.
DEFAULT_CACHE_BUDGET = 8 << 20


def mine_rank_transactions(
    transactions: list[list[int]],
    n_ranks: int,
    min_support: int,
    collector: SupportCollector | None = None,
    meter: Any = None,
    jobs: int = 1,
    cache_budget: int = DEFAULT_CACHE_BUDGET,
    build_jobs: int = 1,
) -> SupportCollector:
    """Full CFP-growth over prepared rank transactions; returns the collector.

    ``jobs > 1`` fans the top-level mine loop out to a shared-memory worker
    pool (:mod:`repro.core.parallel`); output is byte-identical to the
    serial run for any worker count. ``jobs=1`` is the unchanged serial
    path with its full Meter instrumentation.

    ``build_jobs > 1`` shards the build phase by leading rank
    (:func:`repro.core.build_parallel.build_tree_parallel`) and merges
    straight into the CFP-array — still byte-identical, but the
    intermediate CFP-tree never exists in the parent, so the tree-level
    Meter probes (``on_build``/``on_conversion``) report through the
    build-worker spans instead of the parent meter.
    """
    if collector is None:
        collector = ListCollector()
    tracer = obs.get_tracer()
    if tracer is not None and meter is None:
        meter = Meter()  # supplies span deltas; results are unaffected
    if build_jobs > 1:
        from repro.core.build_parallel import build_tree_parallel

        if meter is not None and tracer is not None:
            # Sequential fractions as in repro.experiments.drivers.
            meter.begin_phase("build", 0.2)
        array = build_tree_parallel(transactions, n_ranks, jobs=build_jobs)
        array.set_cache_budget(cache_budget)
        path = array.single_path()
        if path is not None:
            if path:
                collector.emit_path_subsets(path, ())
            return collector
    else:
        if meter is not None and tracer is not None:
            # Sequential fractions as in repro.experiments.drivers.
            meter.begin_phase("build", 0.2)
        with obs.maybe_span("build") as span:
            before = _meter_counts(meter) if meter is not None else None
            tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
            if meter is not None:
                meter.on_build(tree)
                _attach_meter_delta(span, meter, before)  # type: ignore[arg-type]
            if tracer is not None:
                span.set("transactions", tree.transaction_count)
                span.set("logical_nodes", tree.logical_node_count)
                span.set("tree_bytes", tree.memory_bytes)
                span.set("arena_allocs", tree.arena.stats().alloc_count)
        path = tree.single_path()
        if path is not None:
            if path:
                collector.emit_path_subsets(path, ())
            return collector
        if meter is not None and tracer is not None:
            meter.begin_phase("convert", 0.9)
        with obs.maybe_span("convert") as span:
            before = _meter_counts(meter) if meter is not None else None
            array = convert(tree)
            array.set_cache_budget(cache_budget)
            if meter is not None:
                meter.on_conversion(tree, array)
                _attach_meter_delta(span, meter, before)  # type: ignore[arg-type]
            if tracer is not None:
                span.set("nodes", array.node_count)
                span.set("array_bytes", array.memory_bytes)
        del tree  # §3.5: the CFP-tree is discarded right after conversion.
    if meter is not None and tracer is not None:
        meter.begin_phase("mine", 0.4)
    if jobs > 1:
        from repro.core.parallel import mine_array_parallel

        mine_array_parallel(array, min_support, collector, (), meter, jobs=jobs)
    else:
        mine_array(array, min_support, collector, (), meter)
    return collector


def cfp_growth(
    database: TransactionDatabase,
    min_support: int,
    jobs: int = 1,
    build_jobs: int = 1,
) -> list[tuple[tuple[Hashable, ...], int]]:
    """End-to-end CFP-growth over an item-level database."""
    table, transactions = prepare_transactions(database, min_support)
    collector = ListCollector()
    mine_rank_transactions(
        transactions,
        len(table),
        min_support,
        collector,
        jobs=jobs,
        build_jobs=build_jobs,
    )
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.itemsets
    ]


@register
class CfpGrowth:
    """Miner-interface wrapper around :func:`cfp_growth`."""

    name = "cfp-growth"

    #: Worker count for the mine phase; 1 = serial. The CLI's ``--jobs``
    #: overrides this on the instance.
    jobs = 1

    #: Worker count for the build phase; 1 = serial. The CLI's
    #: ``--build-jobs`` overrides this on the instance.
    build_jobs = 1

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[tuple[tuple[Hashable, ...], int]]:
        return cfp_growth(
            database, min_support, jobs=self.jobs, build_jobs=self.build_jobs
        )


@register
class CfpGrowthParallel(CfpGrowth):
    """Two-worker shared-memory CFP-growth.

    Registered as its own algorithm so the equivalence gate
    (tests/algorithms) holds the parallel mine phase to byte-identical
    output against every other miner on every shared database.
    """

    name = "cfp-growth-par"

    jobs = 2
