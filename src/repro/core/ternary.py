"""The compressed physical CFP-tree (paper §3.3).

The build-phase structure: a ternary search tree whose nodes live as
variable-size byte chunks in an Appendix-A arena. Sibling nodes (direct
suffixes of the same parent) form a binary search tree threaded through
``left``/``right`` slots; ``suffix`` slots move one level down. Node kinds
and byte layouts are defined in :mod:`repro.core.node_codec`:

* standard nodes (mask byte + zero-suppressed ``delta_item``/``pcount`` +
  present pointers),
* embedded leaves (5 bytes inside the parent's pointer slot),
* chain nodes (runs of single-child nodes in one chunk, max length 15).

Every node chunk is referenced by exactly **one** slot (there are no parent
pointers or nodelinks in a CFP-tree), so chunks can be relocated on resize
by patching that single slot — which the insert path does whenever a node's
encoded size changes (pcount growth, pointer additions, promotions, chain
splits).

The three structural features can be disabled individually
(``enable_chains``, ``enable_embedding``) for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core import node_codec as codec
from repro.core.cfp_tree import CfpNode, CfpTree
from repro.core.node_codec import (
    ChainNode,
    StandardNode,
    decode_embedded_leaf,
    decode_node,
    encode_embedded_leaf,
    is_chain_at,
    leaf_embeddable,
    pointer_slot,
    read_slot,
    slot_address,
    slot_is_embedded,
)
from repro.compress.zero_suppression import payload_size_2bit, payload_size_3bit
from repro.errors import TreeError
from repro.memman import Arena
from repro.obs import get_tracer, metrics
from repro.memman.arena import MIN_CHUNK_SIZE
from repro.memman.pointers import POINTER_SIZE


@dataclass
class PhysicalStats:
    """Structural census of a ternary CFP-tree."""

    standard_nodes: int = 0
    chain_nodes: int = 0
    chain_entries: int = 0
    embedded_leaves: int = 0

    @property
    def logical_nodes(self) -> int:
        """FP-tree nodes represented (standard + chain entries + embedded)."""
        return self.standard_nodes + self.chain_entries + self.embedded_leaves

    @property
    def chunks(self) -> int:
        """Arena chunks in use (embedded leaves use none)."""
        return self.standard_nodes + self.chain_nodes


class TernaryCfpTree:
    """Arena-backed compressed CFP-tree with the §3.3 insert path."""

    def __init__(
        self,
        n_ranks: int,
        arena: Arena | None = None,
        *,
        enable_chains: bool = True,
        enable_embedding: bool = True,
        max_chain_length: int = codec.DEFAULT_MAX_CHAIN_LENGTH,
    ) -> None:
        if n_ranks < 0:
            raise TreeError(f"n_ranks must be non-negative, got {n_ranks}")
        if not 1 <= max_chain_length <= codec.DEFAULT_MAX_CHAIN_LENGTH:
            raise TreeError(
                f"max_chain_length must be in 1..{codec.DEFAULT_MAX_CHAIN_LENGTH}"
            )
        self.n_ranks = n_ranks
        self.arena = arena if arena is not None else Arena()
        self.enable_chains = enable_chains
        self.enable_embedding = enable_embedding
        self.max_chain_length = max_chain_length
        #: The root's suffix slot: a 5-byte chunk holding the top-level BST.
        self._root_slot = self.arena.alloc(POINTER_SIZE)
        self.logical_node_count = 0
        self.transaction_count = 0
        #: Sorted-insert fast-path counters (see :meth:`insert_batch`).
        self.prefix_skip_hits = 0
        self.prefix_skip_levels = 0

    @classmethod
    def from_rank_transactions(
        cls, transactions: Iterable[list[int]], n_ranks: int, **kwargs: Any
    ) -> "TernaryCfpTree":
        tree = cls(n_ranks, **kwargs)
        tree.insert_batch(transactions)
        return tree

    @classmethod
    def restore(
        cls,
        arena: Arena,
        *,
        n_ranks: int,
        root_slot: int,
        logical_node_count: int,
        transaction_count: int,
        enable_chains: bool = True,
        enable_embedding: bool = True,
        max_chain_length: int = codec.DEFAULT_MAX_CHAIN_LENGTH,
    ) -> "TernaryCfpTree":
        """Re-attach a tree to an arena restored from a checkpoint.

        Unlike ``__init__`` this allocates nothing: the root slot and all
        node chunks already live inside ``arena``.
        """
        tree = cls.__new__(cls)
        tree.n_ranks = n_ranks
        tree.arena = arena
        tree.enable_chains = enable_chains
        tree.enable_embedding = enable_embedding
        tree.max_chain_length = max_chain_length
        tree._root_slot = root_slot
        tree.logical_node_count = logical_node_count
        tree.transaction_count = transaction_count
        tree.prefix_skip_hits = 0
        tree.prefix_skip_levels = 0
        return tree

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Exact physical bytes in live chunks (plus the 5-byte root slot)."""
        return self.arena.live_bytes

    @property
    def node_count(self) -> int:
        """Logical (FP-tree-equivalent) node count."""
        return self.logical_node_count

    def average_node_size(self) -> float:
        """Bytes per logical node — the Figure 6(a) metric."""
        if self.logical_node_count == 0:
            return 0.0
        return self.memory_bytes / self.logical_node_count

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, ranks: list[int], count: int = 1) -> None:
        """Insert a rank-sorted transaction, adding ``count`` to its pcount."""
        if not ranks:
            return
        self._validate_ranks(ranks)
        self.transaction_count += count
        self._insert_from(ranks, count, self._root_slot, 0, 0, None)

    def insert_batch(
        self,
        transactions: Iterable[list[int]],
        counts: Sequence[int] | None = None,
    ) -> int:
        """Insert many transactions via the sorted-insert fast path.

        ``counts`` (aligned with ``transactions``) adds each transaction
        with a multiplicity, exactly as per-transaction
        :meth:`insert` calls with those counts would — the conditional
        mine kernels use this to insert each distinct filtered prefix
        path once. Omitted, every transaction counts once (the build
        phase).

        The batch is sorted lexicographically (a cheap scan skips the sort
        when it arrives already sorted), so consecutive transactions share
        rank prefixes. Each insert then resumes from the deepest still-valid
        node of the previous insert's path instead of descending from the
        root: the *trail* records, per depth, the slot referencing the node
        the previous insert matched there, and an insert re-enters at the
        first divergent rank. Sorted order makes the resume O(1) even in
        degenerate sibling BSTs: the divergent rank is always >= the
        recorded node's rank, so the search continues below it rather than
        re-walking the sibling BST from its root. Trail entries below a
        mutated depth are discarded — a resize there may have relocated the
        chunks they point into (see :meth:`_replace`); sorting is mandatory
        for the same reason (a smaller rank would resume into the wrong
        BST subtree).

        Returns the number of non-empty transactions inserted. The logical
        tree is identical to per-transaction :meth:`insert` calls in any
        order (and so is the converted CFP-array); the physical arena
        layout may differ, because insertion order steers chain and sibling
        creation.
        """
        txns = list(transactions)
        weights: list[int] | None = None
        if counts is not None:
            weights = list(counts)
            if len(weights) != len(txns):
                raise TreeError(
                    f"insert_batch counts ({len(weights)}) must align with "
                    f"transactions ({len(txns)})"
                )
        if any(txns[k] < txns[k - 1] for k in range(1, len(txns))):
            if weights is None:
                txns = sorted(txns)
            else:
                order = sorted(range(len(txns)), key=txns.__getitem__)
                txns = [txns[k] for k in order]
                weights = [weights[k] for k in order]
        trail: list[tuple[int, int] | None] = [None]
        prev: list[int] = []
        valid = 0  # trail[:valid] may be resumed
        inserted = 0
        hits_before = self.prefix_skip_hits
        for position, ranks in enumerate(txns):
            if not ranks:
                continue
            self._validate_ranks(ranks)
            inserted += 1
            count = 1 if weights is None else weights[position]
            self.transaction_count += count
            n = len(ranks)
            limit = min(len(prev), n, valid)
            lcp = 0
            while lcp < limit and prev[lcp] == ranks[lcp]:
                lcp += 1
            resume = min(lcp, valid - 1, n - 1)
            while resume > 0 and trail[resume] is None:
                resume -= 1
            if len(trail) <= n:
                trail.extend([None] * (n + 1 - len(trail)))
            if resume > 0:
                entry = trail[resume]
                assert entry is not None
                slot, base = entry
                self.prefix_skip_hits += 1
                self.prefix_skip_levels += resume
            else:
                resume = 0
                slot, base = self._root_slot, 0
            stop = self._insert_from(ranks, count, slot, base, resume, trail)
            valid = stop + 1
            prev = ranks
        # Metric publication is gated on an installed tracer, like every
        # other component: an untraced run keeps the registry empty.
        if inserted and get_tracer() is not None:
            metrics.add("build.batch_transactions", inserted)
            metrics.add(
                "build.prefix_skip_hits", self.prefix_skip_hits - hits_before
            )
        return inserted

    @staticmethod
    def _validate_ranks(ranks: list[int]) -> None:
        previous = 0
        for rank in ranks:
            if rank <= previous:
                raise TreeError(
                    f"transaction ranks must be strictly ascending and "
                    f"positive: {ranks}"
                )
            previous = rank

    def _insert_from(
        self,
        ranks: list[int],
        count: int,
        slot: int,
        base: int,
        i: int,
        trail: list[tuple[int, int] | None] | None,
    ) -> int:
        """Run the §3.3 insert descent for ``ranks[i:]`` starting at ``slot``.

        ``slot`` must reference a position in the sibling BST of depth ``i``
        (the root slot, a suffix slot, or a left/right slot) with ``base``
        the depth ``i-1`` rank on the path. When ``trail`` is given, the
        slot found referencing this transaction's node at each depth is
        recorded at ``trail[depth]`` as ``(slot, base)``; depths interior to
        a chain chunk get ``None`` (there is no per-depth slot to resume at
        inside a chain).

        Returns the *stop depth*: the first depth of the chunk the final
        mutation touched. Trail entries at depths <= stop keep pointing into
        chunks this insert cannot have relocated: every relocation patches
        the single slot referencing the moved chunk, and that slot lives
        outside it — while slots *inside* the moved chunk reference strictly
        deeper nodes, whose trail depths exceed the returned stop.
        """
        buf = self.arena.buf
        n = len(ranks)
        while True:
            delta = ranks[i] - base
            raw = read_slot(buf, slot)
            if raw == codec.NULL_SLOT:
                content = self._build_path(ranks, i, base, count)
                self._write_slot(slot, content)
                if trail is not None:
                    trail[i] = (slot, base)
                return i
            if slot_is_embedded(raw):
                leaf_delta, leaf_pcount = decode_embedded_leaf(raw)
                if leaf_delta == delta and i == n - 1:
                    new_pcount = leaf_pcount + count
                    if leaf_embeddable(leaf_delta, new_pcount):
                        self._write_slot(
                            slot, encode_embedded_leaf(leaf_delta, new_pcount)
                        )
                    else:
                        node = StandardNode(leaf_delta, new_pcount)
                        self._write_slot(slot, pointer_slot(self._store(node)))
                    if trail is not None:
                        trail[i] = (slot, base)
                    return i
                # The leaf gains a child or a sibling: promote to standard.
                node = StandardNode(leaf_delta, leaf_pcount)
                self._write_slot(slot, pointer_slot(self._store(node)))
                buf = self.arena.buf
                continue
            addr = slot_address(raw)
            if is_chain_at(buf, addr):
                chain_depth = i
                result = self._step_chain(slot, addr, ranks, i, base, count, trail)
                if result is None:
                    return chain_depth
                slot, base, i = result
                buf = self.arena.buf
                continue
            node, size = StandardNode.decode(buf, addr)
            if node.delta_item == delta:
                if trail is not None:
                    trail[i] = (slot, base)
                if i == n - 1:
                    node.pcount += count
                    self._replace(slot, addr, size, node)
                    return i
                if node.suffix is None:
                    node.suffix = self._build_path(ranks, i + 1, ranks[i], count)
                    self._replace(slot, addr, size, node)
                    return i
                slot = addr + size - POINTER_SIZE
                base = ranks[i]
                i += 1
                continue
            if delta < node.delta_item:
                if node.left is None:
                    node.left = self._build_path(ranks, i, base, count)
                    new_addr = self._replace(slot, addr, size, node)
                    if trail is not None:
                        trail[i] = (
                            new_addr + self._standard_left_offset(node),
                            base,
                        )
                    return i
                slot = addr + self._standard_left_offset(node)
                continue
            if node.right is None:
                node.right = self._build_path(ranks, i, base, count)
                new_addr = self._replace(slot, addr, size, node)
                if trail is not None:
                    trail[i] = (
                        new_addr + self._standard_right_offset(node),
                        base,
                    )
                return i
            slot = addr + self._standard_right_offset(node)

    def _step_chain(
        self,
        slot: int,
        addr: int,
        ranks: list[int],
        i: int,
        base: int,
        count: int,
        trail: list[tuple[int, int] | None] | None = None,
    ) -> tuple[int, int, int] | None:
        """Advance an insert through the chain node at ``addr``.

        Returns the next ``(slot, base, i)`` to process, or None when the
        insert completed inside the chain.
        """
        buf = self.arena.buf
        chain, size = ChainNode.decode(buf, addr)
        entries = chain.entries
        n = len(ranks)
        delta = ranks[i] - base
        first_delta = entries[0][0]
        if delta != first_delta:
            # Sibling navigation hangs off the chain's first element.
            if delta < first_delta:
                if chain.left is None:
                    chain.left = self._build_path(ranks, i, base, count)
                    new_addr = self._replace(slot, addr, size, chain)
                    if trail is not None:
                        trail[i] = (
                            new_addr
                            + self._chain_pointer_offset(
                                chain, chain.encoded_size(), "left"
                            ),
                            base,
                        )
                    return None
                return addr + self._chain_pointer_offset(chain, size, "left"), base, i
            if chain.right is None:
                chain.right = self._build_path(ranks, i, base, count)
                new_addr = self._replace(slot, addr, size, chain)
                if trail is not None:
                    trail[i] = (
                        new_addr
                        + self._chain_pointer_offset(
                            chain, chain.encoded_size(), "right"
                        ),
                        base,
                    )
                return None
            return addr + self._chain_pointer_offset(chain, size, "right"), base, i
        if trail is not None:
            # The chain's first entry is this transaction's depth-``i`` node,
            # reachable through the chain's referencing slot.
            trail[i] = (slot, base)
        j = 0
        while True:
            # entries[j] matches ranks[i].
            base = ranks[i]
            i += 1
            if i == n:
                entry_delta, entry_pcount = entries[j]
                entries[j] = (entry_delta, entry_pcount + count)
                self._replace(slot, addr, size, chain)
                return None
            delta = ranks[i] - base
            j += 1
            if j == len(entries):
                if chain.suffix is None:
                    chain.suffix = self._build_path(ranks, i, base, count)
                    self._replace(slot, addr, size, chain)
                    return None
                return addr + size - POINTER_SIZE, base, i
            # Depth i sits inside this chain chunk: no slot to resume at.
            # A split overwrites this via the level-root recording on return.
            if trail is not None:
                trail[i] = None
            if entries[j][0] != delta:
                suffix_slot = self._split_chain(slot, addr, size, chain, j)
                return suffix_slot, base, i

    def _split_chain(
        self, slot: int, addr: int, size: int, chain: ChainNode, j: int
    ) -> int:
        """Split ``chain`` before entry ``j``; return the prefix's suffix slot.

        The prefix ``entries[:j]`` stays in place (keeping the chain's
        left/right siblings); entry ``j`` becomes a standard node so it can
        take BST siblings; the tail ``entries[j+1:]`` is re-materialized
        below it, ending in the chain's original suffix.
        """
        entries = chain.entries
        tail_content = self._materialize_run(list(entries[j + 1 :]), chain.suffix)
        pivot_delta, pivot_pcount = entries[j]
        pivot = StandardNode(pivot_delta, pivot_pcount, suffix=tail_content)
        pivot_ptr = pointer_slot(self._store(pivot))
        prefix_entries = entries[:j]
        if len(prefix_entries) == 1:
            prefix = StandardNode(
                prefix_entries[0][0],
                prefix_entries[0][1],
                left=chain.left,
                right=chain.right,
                suffix=pivot_ptr,
            )
        else:
            prefix = ChainNode(
                prefix_entries, left=chain.left, right=chain.right, suffix=pivot_ptr
            )
        new_addr = self._replace(slot, addr, size, prefix)
        return new_addr + prefix.encoded_size() - POINTER_SIZE

    def _build_path(
        self, ranks: list[int], i: int, base: int, count: int
    ) -> bytes:
        """Materialize the fresh path ``ranks[i:]`` and return slot content."""
        entries = []
        prev = base
        for rank in ranks[i:]:
            entries.append((rank - prev, 0))
            prev = rank
        entries[-1] = (entries[-1][0], count)
        self.logical_node_count += len(entries)
        content = self._materialize_run(entries, None)
        assert content is not None
        return content

    def _materialize_run(
        self, entries: list[tuple[int, int]], below: bytes | None
    ) -> bytes | None:
        """Encode a vertical run of single-child nodes ending in ``below``.

        Returns slot content (pointer or embedded leaf), or ``below`` itself
        when ``entries`` is empty. Chains and leaf embedding are applied per
        the tree's configuration.
        """
        content = below
        remaining = entries
        if content is None and remaining:
            last_delta, last_pcount = remaining[-1]
            # Embed the leaf when that is the cheaper layout: a lone leaf
            # in the parent's pointer slot costs 5 bytes against 8 for a
            # pointer plus a 3-byte standard node. When a chain will be
            # built anyway, keeping the leaf as the chain's final entry
            # (1-3 bytes) beats spending a 5-byte suffix slot on it.
            chain_absorbs_leaf = self.enable_chains and len(remaining) >= 2
            if (
                self.enable_embedding
                and not chain_absorbs_leaf
                and last_pcount > 0
                and leaf_embeddable(last_delta, last_pcount)
            ):
                content = encode_embedded_leaf(last_delta, last_pcount)
                remaining = remaining[:-1]
        while remaining:
            if self.enable_chains and len(remaining) >= 2:
                take = min(len(remaining), self.max_chain_length)
                chunk = remaining[-take:]
                remaining = remaining[:-take]
                node: StandardNode | ChainNode = ChainNode(chunk, suffix=content)
            else:
                delta_item, pcount = remaining[-1]
                remaining = remaining[:-1]
                node = StandardNode(delta_item, pcount, suffix=content)
            content = pointer_slot(self._store(node))
        return content

    # ------------------------------------------------------------------
    # Chunk plumbing
    # ------------------------------------------------------------------

    def _store(self, node: StandardNode | ChainNode) -> int:
        data = node.encode()
        addr = self.arena.alloc(max(len(data), MIN_CHUNK_SIZE))
        self.arena.write(addr, data)
        return addr

    def _replace(
        self, slot: int, addr: int, old_size: int, node: StandardNode | ChainNode
    ) -> int:
        """Re-encode ``node`` over its old chunk, relocating if it outgrew it."""
        data = node.encode()
        old_chunk = max(old_size, MIN_CHUNK_SIZE)
        new_chunk = max(len(data), MIN_CHUNK_SIZE)
        if new_chunk == old_chunk:
            self.arena.write(addr, data)
            return addr
        self.arena.free(addr, old_chunk)
        new_addr = self.arena.alloc(new_chunk)
        self.arena.write(new_addr, data)
        self._write_slot(slot, pointer_slot(new_addr))
        return new_addr

    def _write_slot(self, slot: int, raw: bytes) -> None:
        self.arena.write(slot, raw)

    @staticmethod
    def _standard_left_offset(node: StandardNode) -> int:
        return 1 + payload_size_2bit(node.delta_item) + payload_size_3bit(node.pcount)

    @classmethod
    def _standard_right_offset(cls, node: StandardNode) -> int:
        offset = cls._standard_left_offset(node)
        if node.left is not None:
            offset += POINTER_SIZE
        return offset

    @staticmethod
    def _chain_pointer_offset(chain: ChainNode, size: int, which: str) -> int:
        present = sum(
            slot is not None for slot in (chain.left, chain.right, chain.suffix)
        )
        pointer_area = size - present * POINTER_SIZE
        if which == "left":
            return pointer_area
        offset = pointer_area
        if chain.left is not None:
            offset += POINTER_SIZE
        return offset

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_events(self) -> Iterator[tuple[str, int, int]]:
        """Preorder DFS events: ``("enter", rank, pcount)`` / ``("leave", 0, 0)``.

        Siblings are visited in ascending rank order (in-order over the
        sibling BSTs), children after their parent — the traversal order the
        CFP-array conversion uses.
        """
        buf = self.arena.buf
        root_raw = read_slot(buf, self._root_slot)
        if root_raw == codec.NULL_SLOT:
            return
        stack: list[tuple[Any, ...]] = [("slot", root_raw, 0)]
        while stack:
            frame = stack.pop()
            kind = frame[0]
            if kind == "leave":
                yield ("leave", 0, 0)
                continue
            if kind == "emit":
                __, rank, pcount, suffix_raw = frame
                yield ("enter", rank, pcount)
                stack.append(("leave",))
                if suffix_raw is not None and suffix_raw != codec.NULL_SLOT:
                    stack.append(("slot", suffix_raw, rank))
                continue
            if kind == "chain":
                __, entries, suffix_raw, base = frame
                rank = base
                for delta_item, pcount in entries:
                    rank += delta_item
                    yield ("enter", rank, pcount)
                for __ in entries:
                    stack.append(("leave",))
                if suffix_raw is not None and suffix_raw != codec.NULL_SLOT:
                    stack.append(("slot", suffix_raw, rank))
                continue
            # kind == "slot": expand a BST position in-order.
            __, raw, base = frame
            if slot_is_embedded(raw):
                delta_item, pcount = decode_embedded_leaf(raw)
                stack.append(("emit", base + delta_item, pcount, None))
                continue
            addr = slot_address(raw)
            if is_chain_at(buf, addr):
                chain, __ = ChainNode.decode(buf, addr)
                if chain.right is not None:
                    stack.append(("slot", chain.right, base))
                stack.append(("chain", chain.entries, chain.suffix, base))
                if chain.left is not None:
                    stack.append(("slot", chain.left, base))
            else:
                node, __ = StandardNode.decode(buf, addr)
                if node.right is not None:
                    stack.append(("slot", node.right, base))
                stack.append(
                    ("emit", base + node.delta_item, node.pcount, node.suffix)
                )
                if node.left is not None:
                    stack.append(("slot", node.left, base))

    def iter_nodes_with_parent(self) -> Iterator[tuple[int, int, int]]:
        """DFS preorder ``(rank, pcount, parent_rank)`` triples."""
        path: list[int] = [0]
        for kind, rank, pcount in self.iter_events():
            if kind == "enter":
                yield rank, pcount, path[-1]
                path.append(rank)
            else:
                path.pop()

    def to_logical(self) -> CfpTree:
        """Reconstruct the logical CFP-tree (used by tests and validation)."""
        tree = CfpTree(self.n_ranks)
        node_stack: list[tuple[int, CfpNode]] = [(0, tree.root)]
        for kind, rank, pcount in self.iter_events():
            if kind == "enter":
                parent_rank, parent = node_stack[-1]
                child = CfpNode(rank - parent_rank, pcount)
                if rank in parent.children:
                    raise TreeError(f"duplicate sibling rank {rank} in DFS")
                parent.children[rank] = child
                tree._node_count += 1
                tree._transaction_count += pcount
                node_stack.append((rank, child))
            else:
                node_stack.pop()
        return tree

    def single_path(self) -> list[tuple[int, int]] | None:
        """The tree's single path as ``(rank, count)`` pairs, or None.

        Counts are reconstructed from partial counts: on a path the count of
        a node is the suffix sum of pcounts from that node to the leaf. Used
        by CFP-growth's single-path shortcut (mining a path needs no
        conversion to a CFP-array).
        """
        buf = self.arena.buf
        raw = read_slot(buf, self._root_slot)
        rank = 0
        nodes: list[tuple[int, int]] = []  # (rank, pcount)
        while raw != codec.NULL_SLOT:
            if slot_is_embedded(raw):
                delta_item, pcount = decode_embedded_leaf(raw)
                rank += delta_item
                nodes.append((rank, pcount))
                break
            addr = slot_address(raw)
            node, __ = decode_node(buf, addr)
            if node.left is not None or node.right is not None:
                return None
            if isinstance(node, ChainNode):
                for delta_item, pcount in node.entries:
                    rank += delta_item
                    nodes.append((rank, pcount))
            else:
                rank += node.delta_item
                nodes.append((rank, node.pcount))
            raw = node.suffix if node.suffix is not None else codec.NULL_SLOT
        # Suffix-sum the pcounts to get cumulative counts.
        path = []
        running = 0
        for node_rank, pcount in reversed(nodes):
            running += pcount
            path.append((node_rank, running))
        path.reverse()
        return path

    def physical_stats(self) -> PhysicalStats:
        """Census of node kinds actually stored (Figure 6(a) analysis)."""
        buf = self.arena.buf
        stats = PhysicalStats()
        root_raw = read_slot(buf, self._root_slot)
        if root_raw == codec.NULL_SLOT:
            return stats
        stack = [root_raw]
        while stack:
            raw = stack.pop()
            if slot_is_embedded(raw):
                stats.embedded_leaves += 1
                continue
            addr = slot_address(raw)
            node, __ = decode_node(buf, addr)
            if isinstance(node, ChainNode):
                stats.chain_nodes += 1
                stats.chain_entries += len(node.entries)
            else:
                stats.standard_nodes += 1
            for slot in (node.left, node.right, node.suffix):
                if slot is not None and slot != codec.NULL_SLOT:
                    stack.append(slot)
        return stats
