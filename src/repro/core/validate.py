"""Structural validator for the ternary CFP-tree byte format.

Walks the raw arena bytes (independent of the traversal code paths) and
checks every invariant of the §3.3 layout:

* slot contents are null, a valid in-range pointer, or an embedded leaf,
* every chunk is referenced by exactly one slot,
* compression masks decode and payload sizes are canonical (no wasted
  leading zero bytes),
* chain lengths lie within 1..max, escape entries are only used when the
  fast path cannot represent them,
* delta_item >= 1 everywhere; reconstructed ranks stay within ``n_ranks``,
* the sum of pcounts equals the tree's transaction count.

Returns a :class:`ValidationReport`; raises nothing for an intact tree.
Used by tests (including corruption tests) and available to users as a
consistency check after restores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compress.zero_suppression import payload_size_2bit, payload_size_3bit
from repro.core import node_codec as codec
from repro.core.node_codec import (
    ChainNode,
    StandardNode,
    decode_embedded_leaf,
    decode_node,
    read_slot,
    slot_address,
    slot_is_embedded,
)
from repro.core.ternary import TernaryCfpTree
from repro.errors import ReproError
from repro.memman.pointers import POINTER_SIZE


class ValidationError(ReproError):
    """The tree's byte structure violates a layout invariant."""


@dataclass
class ValidationReport:
    """Census gathered during validation."""

    standard_nodes: int = 0
    chain_nodes: int = 0
    embedded_leaves: int = 0
    logical_nodes: int = 0
    pcount_total: int = 0
    max_depth: int = 0
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def validate_tree(tree: TernaryCfpTree, strict: bool = True) -> ValidationReport:
    """Validate every invariant; raise on the first issue when ``strict``."""
    report = ValidationReport()
    buf = tree.arena.buf
    seen_addresses: set[int] = set()

    def issue(message: str) -> None:
        if strict:
            raise ValidationError(message)
        report.issues.append(message)

    def count_logical(rank: int, pcount: int) -> None:
        report.logical_nodes += 1
        report.pcount_total += pcount
        if not 1 <= rank <= tree.n_ranks:
            issue(f"reconstructed rank {rank} outside 1..{tree.n_ranks}")
        if pcount < 0:
            issue(f"negative pcount {pcount}")

    # Iterative walk (sibling BSTs can degenerate to long left/right
    # chains, so recursion is unsafe). Stack holds (raw_slot, base, depth).
    stack: list[tuple[bytes, int, int]] = []
    root_raw = read_slot(buf, tree._root_slot)
    if root_raw != codec.NULL_SLOT:
        stack.append((root_raw, 0, 1))
    while stack:
        raw, base_rank, depth = stack.pop()
        if raw == codec.NULL_SLOT:
            issue(f"stored slot is null at depth {depth} (presence-bit violation)")
            continue
        report.max_depth = max(report.max_depth, depth)
        if slot_is_embedded(raw):
            delta_item, pcount = decode_embedded_leaf(raw)
            if delta_item < 1:
                issue(f"embedded leaf with delta_item {delta_item} < 1")
            if pcount < 1:
                issue("embedded leaf with pcount 0 represents nothing")
            count_logical(base_rank + delta_item, pcount)
            report.embedded_leaves += 1
            continue
        address = slot_address(raw)
        if not 0 < address < tree.arena.used_bytes:
            issue(f"pointer {address:#x} outside the arena's used region")
            continue
        if address in seen_addresses:
            issue(f"chunk at {address:#x} referenced by more than one slot")
            continue
        seen_addresses.add(address)
        try:
            node, size = decode_node(buf, address)
        except ReproError as exc:
            issue(f"undecodable node at {address:#x}: {exc}")
            continue
        if isinstance(node, ChainNode):
            report.chain_nodes += 1
            if not 1 <= len(node.entries) <= tree.max_chain_length:
                issue(
                    f"chain at {address:#x} has {len(node.entries)} entries "
                    f"(max {tree.max_chain_length})"
                )
            rank = base_rank
            for delta_item, pcount in node.entries:
                if delta_item < 1:
                    issue(
                        f"chain entry with delta_item {delta_item} at {address:#x}"
                    )
                rank += delta_item
                count_logical(rank, pcount)
            if node.suffix is None and node.entries[-1][1] < 1:
                issue(
                    f"chain at {address:#x} ends in a zero-pcount entry "
                    f"with no suffix"
                )
            suffix_base = rank
            suffix_depth = depth + len(node.entries)
        else:
            report.standard_nodes += 1
            if node.delta_item < 1:
                issue(
                    f"standard node at {address:#x} has delta_item "
                    f"{node.delta_item}"
                )
            expected = (
                1
                + payload_size_2bit(node.delta_item)
                + payload_size_3bit(node.pcount)
                + POINTER_SIZE
                * sum(
                    s is not None for s in (node.left, node.right, node.suffix)
                )
            )
            if size != expected:
                issue(
                    f"standard node at {address:#x}: encoded {size} bytes, "
                    f"canonical {expected}"
                )
            rank = base_rank + node.delta_item
            count_logical(rank, node.pcount)
            suffix_base = rank
            suffix_depth = depth + 1
        if node.left is not None:
            stack.append((node.left, base_rank, depth))
        if node.right is not None:
            stack.append((node.right, base_rank, depth))
        if node.suffix is not None:
            stack.append((node.suffix, suffix_base, suffix_depth))

    if report.logical_nodes != tree.logical_node_count:
        issue(
            f"logical node count mismatch: walked {report.logical_nodes}, "
            f"tree records {tree.logical_node_count}"
        )
    if report.pcount_total != tree.transaction_count:
        issue(
            f"pcount sum {report.pcount_total} != transaction count "
            f"{tree.transaction_count}"
        )
    return report
