"""Byte layouts of ternary CFP-tree nodes (paper §3.3).

Three node kinds share the arena:

**Standard node** — the paper's Figure 4 layout::

    +------+-----------+---------+------+-------+--------+
    | mask | delta_item| pcount  | left | right | suffix |
    | 1 B  | 1-4 B     | 0-4 B   | 5 B? | 5 B?  | 5 B?   |
    +------+-----------+---------+------+-------+--------+

  The mask byte packs the 2-bit zero-suppression mask for ``delta_item``,
  the 3-bit mask for ``pcount`` and three pointer presence bits
  (:mod:`repro.compress.masks`). Pointers are stored only when present.

**Embedded leaf** — a small leaf stored *inside* its parent's 5-byte pointer
  slot: marker byte ``0xFF``, one byte ``delta_item`` (< 256), three bytes
  ``pcount`` (< 2^24). The memory manager never allocates addresses whose
  top pointer byte is ``0xFF``, so the marker is unambiguous.

**Chain node** — a run of single-child nodes packed into one chunk. The
  paper describes chains but not their exact bytes; this implementation
  uses::

    +------+--------+----------------+------+-------+--------+
    | tag  | length | entries        | left | right | suffix |
    | 1 B  | 1 B    | 1+ B per entry | 5 B? | 5 B?  | 5 B?   |
    +------+--------+----------------+------+-------+--------+

  The tag byte reuses the mask layout with the (otherwise impossible)
  pcount-mask value 7 as the chain marker, and the same three presence
  bits. ``left``/``right`` attach the chain's *first* element into its
  sibling BST; ``suffix`` continues below the *last* element. Each entry is
  a single byte ``delta_item`` in 1..255 (meaning pcount 0 — the common
  case), or the escape byte ``0x00`` followed by varint ``delta_item`` and
  varint ``pcount``. This keeps the >90%-typical interior node at one byte.

Pointer slots are handled as raw 5-byte strings throughout so embedded
leaves move with their slot during restructures.
"""

from __future__ import annotations

from typing import Union

from repro.compress import varint
from repro.compress.masks import (
    LEFT_PRESENT_BIT,
    PCOUNT_MASK_FIELD,
    PCOUNT_MASK_SHIFT,
    RIGHT_PRESENT_BIT,
    SUFFIX_PRESENT_BIT,
    pack_node_mask,
    unpack_node_mask,
)
from repro.compress.zero_suppression import (
    decode_2bit,
    decode_3bit,
    encode_2bit,
    encode_3bit,
)
from repro.errors import ChainOverflowError, CorruptBufferError
from repro.memman.pointers import MARKER_BYTE, POINTER_SIZE

#: pcount-mask value that tags a chain node (a real pcount mask is 0-4).
CHAIN_TAG = 7

#: Escape byte opening an extended chain entry.
CHAIN_ESCAPE = 0x00

#: Maximum elements per chain node (paper §4.1 fixes 15).
DEFAULT_MAX_CHAIN_LENGTH = 15

#: An all-zero slot (the null pointer).
NULL_SLOT = bytes(POINTER_SIZE)

#: pcount bound for embedded leaves (< 2^24 fits the 3 payload bytes).
EMBEDDED_PCOUNT_LIMIT = 1 << 24

#: Anything the decoders accept as a raw byte source.
Buffer = Union[bytes, bytearray, memoryview]


# ----------------------------------------------------------------------
# Embedded leaves (5-byte slot payloads)
# ----------------------------------------------------------------------

def leaf_embeddable(delta_item: int, pcount: int) -> bool:
    """True when a leaf fits the embedded layout (paper §3.3)."""
    return 0 <= delta_item < 256 and 0 <= pcount < EMBEDDED_PCOUNT_LIMIT


def encode_embedded_leaf(delta_item: int, pcount: int) -> bytes:
    """Encode an embedded leaf as 5 slot bytes."""
    if not leaf_embeddable(delta_item, pcount):
        raise CorruptBufferError(
            f"leaf (delta={delta_item}, pcount={pcount}) is not embeddable"
        )
    return bytes([MARKER_BYTE, delta_item]) + pcount.to_bytes(3, "big")


def decode_embedded_leaf(raw: bytes) -> tuple[int, int]:
    """Decode 5 slot bytes into ``(delta_item, pcount)``."""
    if len(raw) != POINTER_SIZE or raw[0] != MARKER_BYTE:
        raise CorruptBufferError(f"not an embedded leaf slot: {raw!r}")
    return raw[1], int.from_bytes(raw[2:5], "big")


def slot_is_embedded(raw: bytes) -> bool:
    """True when slot content is an embedded leaf rather than a pointer."""
    return raw[0] == MARKER_BYTE


def read_slot(buf: Buffer, slot: int) -> bytes:
    """Copy the 5 raw bytes of the slot starting at ``slot``.

    All raw slot reads outside this module go through here, so the slot
    layout stays confined to the codec layer.
    """
    return bytes(buf[slot : slot + POINTER_SIZE])


def slot_address(raw: bytes) -> int:
    """Interpret slot content as a 40-bit pointer."""
    if raw[0] == MARKER_BYTE:
        raise CorruptBufferError("slot holds an embedded leaf, not a pointer")
    return int.from_bytes(raw, "big")


def pointer_slot(address: int) -> bytes:
    """Slot content for a pointer to ``address``."""
    return address.to_bytes(POINTER_SIZE, "big")


# ----------------------------------------------------------------------
# Standard nodes
# ----------------------------------------------------------------------

class StandardNode:
    """Decoded standard node; slots are raw 5-byte strings or ``None``."""

    __slots__ = ("delta_item", "pcount", "left", "right", "suffix")

    def __init__(
        self,
        delta_item: int,
        pcount: int = 0,
        left: bytes | None = None,
        right: bytes | None = None,
        suffix: bytes | None = None,
    ) -> None:
        self.delta_item = delta_item
        self.pcount = pcount
        self.left = left
        self.right = right
        self.suffix = suffix

    def encode(self) -> bytes:
        """Serialize to the Figure-4 layout."""
        item_mask, item_payload = encode_2bit(self.delta_item)
        pcount_mask, pcount_payload = encode_3bit(self.pcount)
        mask = pack_node_mask(
            item_mask,
            pcount_mask,
            self.left is not None,
            self.right is not None,
            self.suffix is not None,
        )
        parts = [bytes([mask]), item_payload, pcount_payload]
        for slot in (self.left, self.right, self.suffix):
            if slot is not None:
                parts.append(slot)
        return b"".join(parts)

    @classmethod
    def decode(cls, buf: Buffer, addr: int) -> tuple["StandardNode", int]:
        """Decode the node at ``addr``; returns ``(node, encoded_size)``."""
        mask = unpack_node_mask(buf[addr])
        offset = addr + 1
        delta_item, offset = decode_2bit(mask.item_mask, buf, offset)
        pcount, offset = decode_3bit(mask.pcount_mask, buf, offset)
        left = right = suffix = None
        if mask.left_present:
            left = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        if mask.right_present:
            right = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        if mask.suffix_present:
            suffix = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        return cls(delta_item, pcount, left, right, suffix), offset - addr

    def encoded_size(self) -> int:
        return len(self.encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StandardNode(delta={self.delta_item}, pcount={self.pcount}, "
            f"L={self.left is not None}, R={self.right is not None}, "
            f"S={self.suffix is not None})"
        )


# ----------------------------------------------------------------------
# Chain nodes
# ----------------------------------------------------------------------

class ChainNode:
    """Decoded chain node: ``entries`` are ``(delta_item, pcount)`` pairs.

    Entries run parent to child. ``left``/``right`` belong to the first
    entry, ``suffix`` to the last.
    """

    __slots__ = ("entries", "left", "right", "suffix")

    def __init__(
        self,
        entries: list[tuple[int, int]],
        left: bytes | None = None,
        right: bytes | None = None,
        suffix: bytes | None = None,
    ) -> None:
        self.entries = entries
        self.left = left
        self.right = right
        self.suffix = suffix

    def encode(self) -> bytes:
        if not 1 <= len(self.entries) <= DEFAULT_MAX_CHAIN_LENGTH:
            raise ChainOverflowError(
                f"chain length {len(self.entries)} outside 1..{DEFAULT_MAX_CHAIN_LENGTH}"
            )
        tag = pack_node_mask(
            0,
            0,
            self.left is not None,
            self.right is not None,
            self.suffix is not None,
        ) | (CHAIN_TAG << 3)
        parts = [bytes([tag, len(self.entries)])]
        for delta_item, pcount in self.entries:
            if pcount == 0 and 1 <= delta_item <= 255:
                parts.append(bytes([delta_item]))
            else:
                parts.append(
                    bytes([CHAIN_ESCAPE])
                    + varint.encode(delta_item)
                    + varint.encode(pcount)
                )
        for slot in (self.left, self.right, self.suffix):
            if slot is not None:
                parts.append(slot)
        return b"".join(parts)

    @classmethod
    def decode(cls, buf: Buffer, addr: int) -> tuple["ChainNode", int]:
        tag = buf[addr]
        if (tag >> PCOUNT_MASK_SHIFT) & PCOUNT_MASK_FIELD != CHAIN_TAG:
            raise CorruptBufferError(f"not a chain node at {addr}: tag {tag:#04x}")
        length = buf[addr + 1]
        if not 1 <= length <= DEFAULT_MAX_CHAIN_LENGTH:
            raise CorruptBufferError(f"corrupt chain length {length} at {addr}")
        offset = addr + 2
        entries: list[tuple[int, int]] = []
        for __ in range(length):
            first = buf[offset]
            if first == CHAIN_ESCAPE:
                delta_item, offset = varint.decode_from(buf, offset + 1)
                pcount, offset = varint.decode_from(buf, offset)
            else:
                delta_item, pcount = first, 0
                offset += 1
            entries.append((delta_item, pcount))
        left = right = suffix = None
        if tag & LEFT_PRESENT_BIT:
            left = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        if tag & RIGHT_PRESENT_BIT:
            right = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        if tag & SUFFIX_PRESENT_BIT:
            suffix = bytes(buf[offset : offset + POINTER_SIZE])
            offset += POINTER_SIZE
        return cls(entries, left, right, suffix), offset - addr

    def encoded_size(self) -> int:
        return len(self.encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChainNode(entries={self.entries})"


def is_chain_tag(first_byte: int) -> bool:
    """Dispatch: does the byte at a node address open a chain node?"""
    return (first_byte >> PCOUNT_MASK_SHIFT) & PCOUNT_MASK_FIELD == CHAIN_TAG


def is_chain_at(buf: Buffer, addr: int) -> bool:
    """Dispatch on the node stored at ``addr`` without decoding it."""
    return is_chain_tag(buf[addr])


def decode_node(buf: Buffer, addr: int) -> tuple[Union[StandardNode, ChainNode], int]:
    """Decode whichever node kind sits at ``addr``; ``(node, size)``."""
    if is_chain_tag(buf[addr]):
        return ChainNode.decode(buf, addr)
    return StandardNode.decode(buf, addr)
