"""The paper's contribution: CFP-tree, CFP-array, and CFP-growth (§3).

* :class:`repro.core.CfpTree` — the *logical* CFP-tree: structurally an
  FP-tree, but storing ``delta_item`` (item-rank delta to the parent) and
  ``pcount`` (partial count incremented only at the end of each inserted
  prefix). Used as the readable reference and in tests.
* :class:`repro.core.TernaryCfpTree` — the compressed *physical* CFP-tree
  (§3.3): standard nodes with a compression-mask byte, embedded leaf nodes
  inside parent pointer slots, and chain nodes, all served by the
  Appendix-A memory manager. This is the build-phase structure.
* :class:`repro.core.CfpArray` — the mine-phase structure (§3.4): per-item
  subarrays of varint-encoded ``(delta_item, dpos, count)`` triples plus an
  item index replacing the nodelinks.
* :func:`repro.core.convert` — the two-pass CFP-tree -> CFP-array
  conversion (§3.5).
* :class:`repro.core.CfpGrowth` — the full miner: build a ternary CFP-tree,
  convert, then recursively mine with conditional CFP-trees/arrays.
"""

from repro.core.cfp_array import CfpArray
from repro.core.cfp_growth import CfpGrowth, cfp_growth
from repro.core.cfp_tree import CfpNode, CfpTree
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree

__all__ = [
    "CfpNode",
    "CfpTree",
    "TernaryCfpTree",
    "CfpArray",
    "convert",
    "CfpGrowth",
    "cfp_growth",
]
