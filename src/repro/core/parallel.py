"""Parallel mine phase over a shared-memory CFP-array.

The CFP-array is an immutable byte buffer plus a small item index — a
textbook candidate for zero-copy fan-out (the partitioned conditional
mining of PFP-style systems, see PAPERS.md). This module publishes the
buffer once through :mod:`multiprocessing.shared_memory` and runs the
top-level mine loop's per-rank bodies (:func:`repro.core.cfp_growth.mine_rank`)
as tasks on a persistent worker pool:

* **One segment, no copies.** The parent packs ``[header | item index |
  buffer]`` into one POSIX shared-memory segment; workers attach and wrap
  the payload in a :class:`memoryview`-backed :class:`CfpArray`. Nothing
  is pickled per task beyond ``(segment name, rank, min_support)``.
* **Size-aware scheduling.** Tasks are *submitted* largest-subarray-first
  so the biggest conditional trees start earliest (classic LPT
  scheduling), but results are *merged* in the serial loop's order
  (descending rank), making output byte-identical to the serial miner for
  any worker count and any scheduling order.
* **Replayed events, not expanded itemsets.** Workers record the exact
  collector calls (``emit`` / ``emit_path_subsets``) and the parent
  replays them into the caller's collector — so a ``CountCollector``
  keeps counting single-path subsets combinatorially instead of having
  them materialized in the workers.
* **Instrumentation survives the fan-out.** When the caller passes a
  :class:`repro.machine.Meter` or has a tracer installed
  (:func:`repro.obs.set_tracer`), each worker runs its own meter and
  tracer; the worker's span records — the meter state rides inside the
  ``mine_rank`` span — come back through the same result channel as the
  events and are folded in deterministically (descending rank), so a
  ``--jobs N`` trace merges identically run to run.

Lifecycle: the parent creates the segment, workers attach per task (and
de-register it from their resource tracker — the parent owns unlinking),
and the parent closes **and unlinks** in a ``finally`` so the segment is
reclaimed even when a worker dies mid-mine. Worker-side attachments are
cached per segment name and dropped as soon as a task for a different
segment arrives. See docs/performance.md for the full walk-through.
"""

from __future__ import annotations

import atexit
import os
import struct
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_all_start_methods, get_context, resource_tracker
from multiprocessing import shared_memory
from multiprocessing.context import BaseContext
from typing import Any, Sequence

from repro import faultinject, obs
from repro.core import kernels
from repro.core.cfp_array import CfpArray
from repro.core.cfp_growth import (
    SupportCollector,
    _attach_meter_delta,
    _meter_counts,
    mine_array,
    mine_rank,
)
from repro.errors import ParallelMineError, SupervisionError
from repro.machine import Meter
from repro.obs.tracer import Tracer
from repro.runtime import RetryPolicy, Supervisor, default_policy

#: Segment layout: magic, format version, n_ranks, buffer length — followed
#: by ``n_ranks + 2`` little-endian u64 item-index entries, then the buffer.
_HEADER = struct.Struct("<8sHxxxxxxQQ")

_MAGIC = b"CFPSHM\x00\x00"

_FORMAT_VERSION = 1

#: One recorded collector call: ``("i", itemset, support)`` or
#: ``("p", path, suffix)``.
_Event = tuple[str, Any, Any]

#: One worker task's result: replayable events, exported span records
#: (None when uninstrumented), and the worker's metric-registry movement.
_TaskResult = tuple[list[_Event], list[dict[str, Any]] | None, dict[str, int] | None]

#: Worker pools keyed by worker count, reused across mine calls so repeated
#: parallel mining (benchmarks, experiments, tests) pays pool start-up once.
_POOLS: dict[int, ProcessPoolExecutor] = {}

#: Below this CFP-array size the fan-out overhead (segment copy, task
#: submission, event replay) reliably exceeds the mining work itself, so
#: :func:`mine_array_parallel` falls back to the serial miner. Override with
#: the ``REPRO_PARALLEL_MIN_BYTES`` environment variable (0 disables the
#: fallback); ``force=True`` bypasses it per call.
DEFAULT_PARALLEL_MIN_BYTES = 256 * 1024


def _parallel_min_bytes() -> int:
    """The serial-fallback threshold, read from the environment at call time."""
    raw = os.environ.get("REPRO_PARALLEL_MIN_BYTES")
    if raw is None:
        return DEFAULT_PARALLEL_MIN_BYTES
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_PARALLEL_MIN_BYTES

#: Worker-side cache: segment name -> (segment, payload view, array).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, memoryview, CfpArray]] = {}


class _EventCollector:
    """Records collector calls verbatim for replay in the parent."""

    def __init__(self) -> None:
        self.events: list[_Event] = []

    def emit(self, itemset: tuple[int, ...], support: int) -> None:
        self.events.append(("i", itemset, support))

    def emit_path_subsets(
        self, path: list[tuple[int, int]], suffix: tuple[int, ...]
    ) -> None:
        self.events.append(("p", path, suffix))


# ----------------------------------------------------------------------
# Shared-memory publication (parent side)
# ----------------------------------------------------------------------


def publish_array(array: CfpArray) -> shared_memory.SharedMemory:
    """Copy ``array`` into a fresh shared-memory segment (create side).

    The caller owns the segment and must ``close()`` and ``unlink()`` it —
    :func:`mine_array_parallel` does both in a ``finally``.
    """
    starts_blob = struct.pack(f"<{len(array.starts)}Q", *array.starts)
    buffer_len = len(array.buffer)
    total = _HEADER.size + len(starts_blob) + buffer_len
    segment = shared_memory.SharedMemory(create=True, size=total)
    view = memoryview(segment.buf)
    try:
        _HEADER.pack_into(view, 0, _MAGIC, _FORMAT_VERSION, array.n_ranks, buffer_len)
        offset = _HEADER.size
        view[offset:offset + len(starts_blob)] = starts_blob
        offset += len(starts_blob)
        view[offset:offset + buffer_len] = bytes(array.buffer)
    finally:
        view.release()
    return segment


def attach_array(name: str, cache_budget: int = 0) -> CfpArray:
    """Attach to a published segment and wrap it as a zero-copy CfpArray.

    The attachment is cached per segment name; attaching to a new name
    drops every previously cached attachment (the parent never interleaves
    segments, so an old name can no longer receive tasks).
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[2]
    faultinject.fire("parallel.attach", segment=name)
    _detach_all()
    segment = _attach_untracked(name)
    base = memoryview(segment.buf)
    magic, version, n_ranks, buffer_len = _HEADER.unpack_from(base, 0)
    if magic != _MAGIC or version != _FORMAT_VERSION:
        base.release()
        segment.close()
        raise ParallelMineError(
            f"shared segment {name!r} is not a v{_FORMAT_VERSION} CFP-array"
        )
    starts_end = _HEADER.size + (n_ranks + 2) * 8
    starts = list(struct.unpack_from(f"<{n_ranks + 2}Q", base, _HEADER.size))
    payload = base[starts_end:starts_end + buffer_len]
    base.release()
    array = CfpArray(n_ranks, payload, starts, cache_budget=cache_budget)
    _ATTACHED[name] = (segment, payload, array)  # lint: ignore[EFF001] - per-worker attachment cache, keyed by segment name
    return array


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    Until Python 3.13 grew ``track=False``, merely *attaching* also
    registered the segment with the attaching process's resource tracker.
    The parent alone owns the unlink; a worker-side registration would
    either double-book the shared (fork) tracker or — worse, under spawn —
    have a worker's private tracker unlink the segment while the parent
    still serves tasks from it. Suppressing the registration for the
    duration of the attach sidesteps both.
    """
    original_register = resource_tracker.register

    def _skip(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - other resources
            original_register(name, rtype)

    resource_tracker.register = _skip  # type: ignore[assignment]  # lint: ignore[EFF001] - scoped monkeypatch, restored in the finally below
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register  # type: ignore[assignment]  # lint: ignore[EFF001] - restores the original register


def _detach_all() -> None:
    """Release every cached worker-side attachment."""
    while _ATTACHED:
        __, (segment, payload, array) = _ATTACHED.popitem()
        del array
        payload.release()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass


# ----------------------------------------------------------------------
# Worker task
# ----------------------------------------------------------------------


def _mine_rank_task(
    name: str,
    rank: int,
    min_support: int,
    suffix: tuple[int, ...],
    cache_budget: int,
    want_meter: bool,
    want_trace: bool,
    faults: tuple[str, str | None] | None = None,
) -> tuple[list[_Event], list[dict[str, Any]] | None, dict[str, int] | None]:
    """Run one top-level rank through the serial per-rank code path.

    Returns ``(events, span_records, metrics_delta)``. Instrumentation
    travels exclusively as span records: the worker's Meter state rides
    in the ``mine_rank`` span's ``meter`` attribute and the parent folds
    it back with :meth:`Meter.from_record` + :meth:`Meter.merge` — the
    span stream is the one channel, so trace and meter cannot drift.
    ``metrics_delta`` carries this task's movement of the worker-local
    metric registry (conditional-cache publications) plus the shared
    attachment's subarray-cache delta.

    ``faults`` is the parent's exported fault-injection plan (``None``
    outside chaos runs); it is adopted before anything else so count-
    bounded faults share one cross-process budget.
    """
    faultinject.adopt(faults)
    faultinject.fire("mine.worker", rank=rank)
    array = attach_array(name, cache_budget)
    collector = _EventCollector()
    if not (want_meter or want_trace):
        mine_rank(array, rank, min_support, collector, suffix, None)
        return collector.events, None, None
    meter = Meter()
    tracer = Tracer()
    # Install the worker tracer only for traced runs: it gates the
    # conditional-cache metric publications inside mine_rank, which a
    # meter-only run must skip exactly like the serial miner does.
    previous = obs.set_tracer(tracer) if want_trace else None
    registry_before = obs.metrics.counters() if want_trace else {}
    cache_before = array.cache_counts()
    try:
        with tracer.span(
            "mine_rank",
            rank=rank,
            subarray_bytes=array.subarray_bytes(rank),
            kernel_backend=kernels.backend(),
        ) as span:
            before = _meter_counts(meter)
            mine_rank(array, rank, min_support, collector, suffix, meter)
            _attach_meter_delta(span, meter, before)
            span.set("meter", meter.to_record())
    finally:
        if want_trace:
            obs.set_tracer(previous)
    delta: dict[str, int] = {}
    if want_trace:
        for key, value in obs.metrics.counters().items():
            moved = value - registry_before.get(key, 0)
            if moved:
                delta[key] = moved
        for key, value in array.cache_counts().items():
            moved = value - cache_before[key]
            if moved:
                delta[f"subarray_cache.{key}"] = delta.get(
                    f"subarray_cache.{key}", 0
                ) + moved
    return collector.events, tracer.export(), delta or None


# ----------------------------------------------------------------------
# Pool management (parent side)
# ----------------------------------------------------------------------


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        # fork is the cheapest start method and shares the loaded modules;
        # platforms without it (Windows) fall back to their default.
        context: BaseContext
        if "fork" in get_all_start_methods():
            context = get_context("fork")
        else:
            context = get_context()
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every cached worker pool (idempotent; also ran at exit)."""
    while _POOLS:
        __, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


def _noop() -> None:  # pragma: no cover - trivial warm-up task body
    return None


def warm_pool(workers: int) -> None:
    """Start (and fully spawn) the cached pool for ``workers`` workers.

    ``ProcessPoolExecutor`` forks its processes lazily on first submit, so
    the first parallel call after import pays the whole spawn cost.
    Benchmarks call this before their timed legs so pool start-up is not
    attributed to the phase under measurement.
    """
    pool = _get_pool(workers)
    for future in [pool.submit(_noop) for __ in range(workers)]:
        future.result()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# The parallel mine phase
# ----------------------------------------------------------------------


def mine_array_parallel(
    array: CfpArray,
    min_support: int,
    collector: SupportCollector,
    suffix: tuple[int, ...] = (),
    meter: Any = None,
    jobs: int = 1,
    rank_order: Sequence[int] | None = None,
    force: bool = False,
    policy: RetryPolicy | None = None,
) -> None:
    """Mine ``array`` with ``jobs`` workers; output is byte-identical to
    :func:`repro.core.cfp_growth.mine_array` for any worker count.

    ``jobs <= 1`` (or a trivially small array) delegates to the serial
    miner unchanged, preserving its in-process Meter instrumentation.
    Arrays under :data:`DEFAULT_PARALLEL_MIN_BYTES` (override via the
    ``REPRO_PARALLEL_MIN_BYTES`` environment variable) also run serially —
    on small inputs the fan-out overhead dwarfs the mining itself, and a
    ``--jobs N`` run should never be slower than ``--jobs 1``. ``force``
    bypasses the size fallback (tests of the parallel machinery on small
    fixtures, overhead measurements), never the argument validation.

    ``rank_order`` overrides the size-aware submission order — it must be
    a permutation of the active ranks. Scheduling order never affects
    output (the determinism property tests shuffle it to prove that);
    the default orders by subarray byte length, largest first, so the
    most expensive conditional trees start before the long tail.

    Tasks run under a :class:`repro.runtime.Supervisor` with ``policy``
    (default :func:`repro.runtime.default_policy`): a dead worker, hung
    task, or transient attach failure re-executes only the affected
    ranks — completed per-rank results are kept, and the fixed
    descending-rank merge keeps the output byte-identical across any
    retry schedule. When supervision fails outright the call degrades
    to the serial miner (counting ``parallel.degraded_serial``) unless
    ``policy.fallback_serial`` is off, in which case it raises
    :class:`repro.errors.ParallelMineError`.
    """
    ranks = list(array.active_ranks_descending())
    if jobs <= 1 or len(ranks) <= 1 or len(array.buffer) == 0:
        mine_array(array, min_support, collector, suffix, meter)
        return
    if rank_order is None:
        order = sorted(ranks, key=lambda r: (-array.subarray_bytes(r), r))
    else:
        order = list(rank_order)
        if sorted(order) != sorted(ranks):
            raise ParallelMineError(
                "rank_order must be a permutation of the active ranks"
            )
    if not force and array.memory_bytes < _parallel_min_bytes():
        # Small array: the serial miner wins outright. Count the decision
        # so a trace of a --jobs N run explains why no workers appear
        # (gated on a tracer like every other metric publication).
        if obs.get_tracer() is not None:
            obs.metrics.add("parallel.serial_fallback")
        mine_array(array, min_support, collector, suffix, meter)
        return
    if policy is None:
        policy = default_policy()
    workers = min(jobs, len(ranks))
    parent_tracer = obs.get_tracer()
    want_trace = parent_tracer is not None
    segment = publish_array(array)
    results: dict[int, _TaskResult] = {}
    with obs.maybe_span(
        "mine_parallel",
        jobs=workers,
        ranks=len(ranks),
        kernel_backend=kernels.backend(),
    ):
        parent_span_id = (
            parent_tracer.current_span_id if parent_tracer is not None else None
        )
        try:
            faults = faultinject.exported()
            tasks: dict[int, tuple[Any, tuple[Any, ...]]] = {
                rank: (
                    _mine_rank_task,
                    (
                        segment.name,
                        rank,
                        min_support,
                        suffix,
                        array.cache_budget,
                        meter is not None,
                        want_trace,
                        faults,
                    ),
                )
                for rank in order
            }
            supervisor = Supervisor(
                lambda: _get_pool(workers),
                policy,
                phase="mine",
                pool_reset=shutdown_pools,
            )
            try:
                results = supervisor.run(tasks)
            except SupervisionError as exc:
                if not policy.fallback_serial:
                    raise ParallelMineError(
                        f"parallel mine failed ({exc}) and serial fallback "
                        f"is disabled"
                    ) from exc
                # Nothing has been emitted yet (events replay only after
                # every task succeeds), so the serial miner can take over
                # from scratch with byte-identical output.
                obs.metrics.add("parallel.degraded_serial")
                with obs.maybe_span(
                    "parallel.degraded_serial", phase="mine", reason=exc.kind
                ):
                    mine_array(array, min_support, collector, suffix, meter)
                return
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
        # Deterministic merge: replay per-rank events (and fold in per-rank
        # instrumentation) in the serial loop's order (descending rank),
        # regardless of completion order.
        for index, rank in enumerate(ranks):
            events, records, metrics_delta = results[rank]
            for kind, first, second in events:
                if kind == "i":
                    collector.emit(first, second)
                else:
                    collector.emit_path_subsets(first, second)
            if records is not None:
                meter_record = None
                for record in records:
                    popped = (record.get("attrs") or {}).pop("meter", None)
                    if popped is not None:
                        meter_record = popped
                if meter is not None and meter_record is not None:
                    phase_name = meter.phases[-1].name if meter.phases else "mine"
                    meter.merge(Meter.from_record(meter_record), rename_to=phase_name)
                if parent_tracer is not None:
                    parent_tracer.ingest(
                        records, parent_id=parent_span_id, worker=index
                    )
            if metrics_delta:
                for key, value in metrics_delta.items():
                    obs.metrics.add(key, value)
