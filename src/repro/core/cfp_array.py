"""The CFP-array: the mine-phase structure (paper §3.4).

The FP-tree is flattened into one byte buffer of varint-encoded triples
``(delta_item, dpos, count)``, ordered so that all nodes of one item form a
consecutive *subarray*. Because same-item nodes are contiguous, the
``nodelink`` field becomes redundant: sideward traversal is a sequential
scan of the subarray, guided by a small **item index** that maps each rank
to its subarray's starting byte offset.

Per-node fields:

* ``delta_item`` — rank delta to the parent; for children of the root it
  equals the rank itself (``parent_rank = rank - delta_item == 0`` marks
  "no parent", as in the paper's Figure 5).
* ``dpos`` — delta between the node's *local position* (byte offset within
  its subarray, as the paper prescribes for variable-size nodes) and its
  parent's local position within the parent's subarray. Because parent and
  child live in different subarrays that fill at different rates, the delta
  can be negative; it is zigzag-mapped before varint encoding (a detail the
  paper leaves open).
* ``count`` — the full cumulative count (partial counts cannot be
  reconstructed without child access, §3.4). Stored last so that backward
  traversal never decodes it.

Backward traversal from a node ``(rank, local)``: ``parent_rank = rank -
delta_item``; ``parent_local = local - dpos``; the parent's global offset is
``starts[parent_rank] + parent_local``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, Sequence, Union

from repro.compress import varint
from repro.errors import TreeError
from repro.memman.pointers import POINTER_SIZE
from repro.obs.registry import MetricsRegistry

#: One decoded node: ``(local, delta_item, dpos, count)``.
Triple = tuple[int, int, int, int]

#: Buffer types a CFP-array can wrap. ``memoryview`` enables zero-copy
#: attachment to a ``multiprocessing.shared_memory`` segment
#: (:mod:`repro.core.parallel`).
ArrayBuffer = Union[bytearray, bytes, memoryview]

#: Offsets fit in the 40-bit pointers of the item index, so a
#: ``(rank, local)`` pair packs into one int key: ``rank << 40 | local``.
_LOCAL_BITS = POINTER_SIZE * 8


class DecodedSubarray:
    """One subarray bulk-decoded into parallel integer columns.

    The columnar cache entry: ``locals`` / ``delta_items`` / ``dposes`` /
    ``counts`` are ``array('q')`` columns straight from
    :func:`repro.compress.varint.decode_triples_columns`. Row views are
    materialized lazily:

    * :attr:`triples` — the classic ``(local, delta_item, dpos, count)``
      rows, as an **immutable** tuple (callers used to receive the cached
      list itself, so one stray ``.sort()`` poisoned every later hit);
    * :meth:`index_of` — the local-offset -> row index map the backward
      walks resolve parents through.
    """

    __slots__ = ("locals", "delta_items", "dposes", "counts", "_rows", "_by_local")

    def __init__(
        self,
        locals_col: Sequence[int],
        delta_items: Sequence[int],
        dposes: Sequence[int],
        counts: Sequence[int],
    ) -> None:
        self.locals = locals_col
        self.delta_items = delta_items
        self.dposes = dposes
        self.counts = counts
        self._rows: tuple[Triple, ...] | None = None
        self._by_local: dict[int, int] | None = None

    def __len__(self) -> int:
        return len(self.locals)

    @property
    def triples(self) -> tuple[Triple, ...]:
        """Row view, built once per entry and safe to hand out."""
        rows = self._rows
        if rows is None:
            rows = self._rows = tuple(
                zip(self.locals, self.delta_items, self.dposes, self.counts)
            )
        return rows

    def index_of(self, local: int) -> int | None:
        """Row index of the node starting at byte ``local``, or ``None``."""
        by_local = self._by_local
        if by_local is None:
            by_local = self._by_local = {
                value: index for index, value in enumerate(self.locals)
            }
        return by_local.get(local)

    @property
    def decoded_bytes(self) -> int:
        """Resident size of the four decoded columns, for cache accounting.

        ``nbytes`` for numpy-backed columns, ``len * itemsize`` for
        ``array('q')`` columns (both 8 bytes per element) — what the entry
        actually holds in memory, which is a constant factor larger than
        the varint encoding it was decoded from.
        """
        total = 0
        for column in (self.locals, self.delta_items, self.dposes, self.counts):
            nbytes = getattr(column, "nbytes", None)
            if nbytes is None:
                nbytes = len(column) * getattr(column, "itemsize", 8)
            total += int(nbytes)
        return total


class _SubarrayCache:
    """Byte-budgeted LRU cache of bulk-decoded subarrays, keyed by rank.

    The *charge* of an entry is the subarray's **decoded** column size
    (:attr:`DecodedSubarray.decoded_bytes`) — what the entry actually
    keeps resident — so the budget bounds real cache memory. It used to
    be the encoded varint length, which undercounted residency by the
    decode expansion factor (~6-8×) and let the cache blow through its
    budget under columnar reads; budgets were rebased when the accounting
    was fixed (see docs/performance.md).

    Thread-safe: recency, eviction and the byte/stat accounting mutate
    under one lock. Batch mining never shares an array across threads
    (workers are forked processes), but the serving layer runs queries
    against one long-lived array from a thread executor, where unguarded
    ``move_to_end`` during an eviction sweep corrupts the OrderedDict and
    ``used_bytes`` drifts off the sum of resident charges. The lock is
    per-subarray-access, not per-node, so it is off the columnar kernels'
    hot loop.
    """

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[int, tuple[DecodedSubarray, int]] = OrderedDict()

    def get(self, rank: int) -> DecodedSubarray | None:
        with self._lock:
            entry = self._entries.get(rank)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(rank)
            self.hits += 1
            return entry[0]

    def put(self, rank: int, triples: DecodedSubarray, charge: int) -> None:
        with self._lock:
            if rank in self._entries:
                # A re-put is a recency signal: the rank is in active use, so
                # it must move to the MRU end exactly as a `get` hit would —
                # silently dropping it used to leave the entry first in line
                # for eviction despite being hot.
                self._entries.move_to_end(rank)
                return
            if charge > self.budget_bytes:
                # Larger than the whole budget: never cacheable. Count it so
                # a mis-sized budget shows up in the metrics instead of
                # manifesting as a mysterious 0% hit ratio.
                self.rejected += 1
                return
            while self._entries and self.used_bytes + charge > self.budget_bytes:
                __, (__, evicted_charge) = self._entries.popitem(last=False)
                self.used_bytes -= evicted_charge
                self.evictions += 1
            self._entries[rank] = (triples, charge)
            self.used_bytes += charge

    def counts(self) -> dict[str, int]:
        """Current counter values, for delta-based publication."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejected": self.rejected,
            }


class CfpArray:
    """Byte-packed CFP-array with its item index.

    Built by :func:`repro.core.conversion.convert`; the constructor takes
    the finished buffer and index. ``node_count`` is recorded by the
    converter (it knows it from the counts pass); hand-built arrays may
    omit it and fall back to a lazy full-buffer scan.

    ``cache_budget`` > 0 enables a byte-budgeted LRU cache of bulk-decoded
    subarrays (:meth:`set_cache_budget`), which pays off when subarrays are
    rescanned — as the ancestor subarrays are, many times over, during
    conditional-tree construction in the mine phase.
    """

    #: Class-level defaults so hand-assembled instances (``__new__`` in the
    #: corruption-injection tests) behave like cache-off arrays.
    _cache: _SubarrayCache | None = None
    _path_memo: dict[int, tuple[int, ...]] | None = None
    _active_ranks: tuple[int, ...] | None = None

    def __init__(
        self,
        n_ranks: int,
        buffer: ArrayBuffer,
        starts: list[int],
        node_count: int | None = None,
        cache_budget: int = 0,
        active_ranks: Sequence[int] | None = None,
    ) -> None:
        if len(starts) != n_ranks + 2:
            raise TreeError(
                f"item index must have n_ranks+2 entries, got {len(starts)}"
            )
        if starts[1] != 0 or starts[-1] != len(buffer):
            raise TreeError("item index does not span the buffer")
        self.n_ranks = n_ranks
        self.buffer = buffer
        #: ``starts[rank]`` = first byte of the rank's subarray;
        #: ``starts[rank + 1]`` = one past its last byte. Entry 0 is unused.
        self.starts = starts
        self._node_count: int | None = node_count
        self._cache = _SubarrayCache(cache_budget) if cache_budget > 0 else None
        self._path_memo = None
        #: Builder-supplied active ranks (descending), so sparse conditional
        #: arrays skip the dense index scan in active_ranks_descending().
        self._active_ranks = (
            tuple(sorted(active_ranks, reverse=True))
            if active_ranks is not None
            else None
        )

    # ------------------------------------------------------------------
    # Decoded-subarray cache
    # ------------------------------------------------------------------

    @property
    def cache_budget(self) -> int:
        """Current byte budget of the decoded-subarray cache (0 = off)."""
        return self._cache.budget_bytes if self._cache is not None else 0

    def set_cache_budget(self, budget_bytes: int) -> None:
        """Enable (or resize, or with 0 disable) the decoded-subarray cache.

        Resizing drops all cached entries and the resolved-path memo;
        results are unaffected either way — both only trade memory for
        repeated decode/walk work.
        """
        self._cache = _SubarrayCache(budget_bytes) if budget_bytes > 0 else None
        self._path_memo = None

    def cache_counts(self) -> dict[str, int]:
        """Subarray-cache counters (all zero when the cache is off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "rejected": 0}
        return self._cache.counts()

    def publish_cache_metrics(
        self, registry: MetricsRegistry, baseline: dict[str, int] | None = None
    ) -> None:
        """Add this array's cache counters to a metric registry.

        ``baseline`` (an earlier :meth:`cache_counts` snapshot) turns the
        publication into a delta, which is how long-lived arrays — the
        workers' cached shared-memory attachments — publish per-task.

        The no-baseline form reads the cache counters directly with
        static metric names: traced mines publish once per ephemeral
        conditional array, and building the counts dict (plus an
        f-string per key) was a measurable slice of the traced-run
        overhead budget.
        """
        cache = self._cache
        if baseline is None:
            if cache is None:
                return
            add = registry.add
            if cache.hits:
                add("subarray_cache.hits", cache.hits)
            if cache.misses:
                add("subarray_cache.misses", cache.misses)
            if cache.evictions:
                add("subarray_cache.evictions", cache.evictions)
            if cache.rejected:
                add("subarray_cache.rejected", cache.rejected)
            return
        counts = self.cache_counts()
        for name, value in counts.items():
            value -= baseline[name]
            if value:
                registry.add(f"subarray_cache.{name}", value)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Buffer bytes plus the item index (one 40-bit offset per rank)."""
        return len(self.buffer) + (self.n_ranks + 1) * POINTER_SIZE

    @property
    def node_count(self) -> int:
        """Total nodes across all subarrays.

        Recorded at build time by the converter; hand-built arrays that did
        not pass ``node_count`` fall back to a lazy full-buffer scan. The
        scan counts varint terminators without decoding — it used to
        bulk-decode every rank through :meth:`decode_subarray`, evicting
        the hot working set from the LRU cache on cache-enabled arrays.
        """
        if self._node_count is None:
            self._node_count = varint.count_triples(
                self.buffer, 0, len(self.buffer)
            )
        return self._node_count

    def average_node_size(self) -> float:
        """Bytes per node including the index — the Figure 6(b) metric."""
        count = self.node_count
        if count == 0:
            return 0.0
        return self.memory_bytes / count

    def subarray_bytes(self, rank: int) -> int:
        """Byte length of one rank's subarray."""
        self._check_rank(rank)
        return self.starts[rank + 1] - self.starts[rank]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def subarray_columns(self, rank: int) -> DecodedSubarray:
        """Bulk-decode one rank's subarray into its columnar form.

        The mine-phase primitive: four parallel ``array('q')`` columns per
        subarray (see :class:`DecodedSubarray`), decoded by the columnar
        varint kernel — vectorized when numpy is available — and served
        from the LRU cache when a budget is set.
        """
        cache = self._cache
        if cache is not None:
            cached = cache.get(rank)
            if cached is not None:
                return cached
        self._check_rank(rank)
        entry = DecodedSubarray(
            *varint.decode_triples_columns(
                self.buffer, self.starts[rank], self.starts[rank + 1]
            )
        )
        if cache is not None:
            cache.put(rank, entry, entry.decoded_bytes)
        return entry

    def decode_subarray(self, rank: int) -> tuple[Triple, ...]:
        """Decoded ``(local, delta_item, dpos, count)`` rows in storage order.

        The returned tuple is immutable — it used to be the cached list
        object itself, so a caller mutating it corrupted every later
        cache hit.
        """
        return self.subarray_columns(rank).triples

    def iter_subarray(self, rank: int) -> Iterator[Triple]:
        """Sideward traversal: ``(local, delta_item, dpos, count)`` per node."""
        return iter(self.decode_subarray(rank))

    def prefix_paths(self, rank: int) -> list[tuple[tuple[int, ...], int]]:
        """Prefix paths of every node in ``rank``'s subarray, in storage order.

        Returns ``(ancestor_ranks_ascending, count)`` per node — the input
        of conditional-tree construction. Ancestor chains are resolved
        through a per-array memo of finished paths: a node's path is its
        parent's path plus one rank, so every node in the array is walked
        **once** ever, no matter how many subarrays share its ancestors
        (the old per-call walk re-traversed shared chains node by node,
        rank after rank). On cache-enabled arrays the memo persists across
        calls; otherwise it lives for one call. ``count`` is never touched
        on the backward walk (§3.4's field-order rationale).
        """
        entry = self.subarray_columns(rank)
        if self._cache is not None:
            # The memo itself needs no lock: every write is idempotent (a
            # node's path is a pure function of the buffer) and dict
            # get/set are atomic under the GIL. Two threads racing the
            # lazy init at worst memoize into a dict that loses the
            # assignment race — wasted work, never a wrong path.
            memo = self._path_memo
            if memo is None:
                memo = self._path_memo = {}
        else:
            memo = {}
        lookup = memo.get
        key_base = rank << _LOCAL_BITS
        paths: list[tuple[tuple[int, ...], int]] = []
        append = paths.append
        for local, delta_item, dpos, count in zip(
            entry.locals, entry.delta_items, entry.dposes, entry.counts
        ):
            path = lookup(key_base | local)
            if path is None:
                path = self._resolve_path(rank, local, delta_item, dpos, memo)
            append((path, count))
        return paths

    def _resolve_path(
        self,
        rank: int,
        local: int,
        delta_item: int,
        dpos: int,
        memo: dict[int, tuple[int, ...]],
    ) -> tuple[int, ...]:
        """Resolve one node's ancestor ranks, memoizing the whole chain.

        Walks parent links until a memoized node (or the root) is reached,
        then unwinds, extending the parent's finished path by one rank per
        step — shared ancestor suffixes are computed once and reused by
        every descendant.
        """
        origin = rank
        chain: list[tuple[int, int]] = []
        lookup = memo.get
        columns = self.subarray_columns
        while True:
            key = (rank << _LOCAL_BITS) | local
            parent_rank = rank - delta_item
            if parent_rank == 0:
                base: tuple[int, ...] = ()
                memo[key] = base
                break
            parent_local = local - dpos
            cached = lookup((parent_rank << _LOCAL_BITS) | parent_local)
            if cached is not None:
                base = cached + (parent_rank,)
                memo[key] = base
                break
            chain.append((key, parent_rank))
            parent = columns(parent_rank)
            index = parent.index_of(parent_local)
            if index is None:
                raise TreeError(
                    f"dpos chain from rank {origin} lands at rank "
                    f"{parent_rank} local {parent_local}, not a node start"
                )
            rank, local = parent_rank, parent_local
            delta_item = parent.delta_items[index]
            dpos = parent.dposes[index]
        for key, parent_rank in reversed(chain):
            base = base + (parent_rank,)
            memo[key] = base
        return base

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        """Decode the triple at a (rank, local-offset) position."""
        self._check_rank(rank)
        offset = self.starts[rank] + local
        if not self.starts[rank] <= offset < self.starts[rank + 1]:
            raise TreeError(f"local offset {local} outside subarray of rank {rank}")
        buf = self.buffer
        delta_item, offset = varint.decode_from(buf, offset)
        dpos_raw, offset = varint.decode_from(buf, offset)
        count, __ = varint.decode_from(buf, offset)
        return delta_item, varint.unzigzag(dpos_raw), count

    def path_ranks(self, rank: int, local: int) -> list[int]:
        """Backward traversal: ancestor ranks of the node, ascending.

        The ``count`` field is never decoded on this walk (§3.4's field-order
        rationale).
        """
        buf = self.buffer
        starts = self.starts
        path = []
        while True:
            offset = starts[rank] + local
            delta_item, offset = varint.decode_from(buf, offset)
            dpos_raw, __ = varint.decode_from(buf, offset)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def rank_support(self, rank: int) -> int:
        """Support of an item: one C-speed sum over the counts column."""
        return sum(self.subarray_columns(rank).counts)

    def active_ranks_descending(self) -> Iterator[int]:
        """Ranks with a non-empty subarray, least frequent first.

        A builder that already knows the active set (the conditional-array
        kernel) supplies it up front; a mined conditional touches a
        handful of ranks, and scanning the full dense index per
        conditional cost more than its whole mine step.
        """
        if self._active_ranks is not None:
            return iter(self._active_ranks)
        return (
            rank
            for rank in range(self.n_ranks, 0, -1)
            if self.starts[rank + 1] > self.starts[rank]
        )

    def single_path(self) -> list[tuple[int, int]] | None:
        """The array's single path as ``(rank, count)`` pairs, or None.

        Array counterpart of :meth:`TernaryCfpTree.single_path`, for the
        single-path mining shortcut when the array was produced by the
        parallel build and no whole tree ever existed. A single path means
        every active rank holds exactly one node and each node's parent is
        the previous active rank. Counts are stored cumulatively, so they
        already equal the tree method's suffix-summed counts.
        """
        path: list[tuple[int, int]] = []
        prev_rank = 0
        for rank in range(1, self.n_ranks + 1):
            if self.starts[rank + 1] == self.starts[rank]:
                continue
            columns = self.subarray_columns(rank)
            if len(columns) != 1:
                return None
            if rank - columns.delta_items[0] != prev_rank or columns.dposes[0]:
                return None
            path.append((rank, columns.counts[0]))
            prev_rank = rank
        return path

    def item_of_position(self, offset: int) -> int:
        """Rank owning the byte at ``offset`` — largest start <= offset.

        The paper notes the item field *could* be dropped because the index
        answers this; provided for completeness and used in tests.
        """
        if not 0 <= offset < len(self.buffer):
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        # Skip over empty subarrays that share the same start.
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    def _check_rank(self, rank: int) -> None:
        if not 1 <= rank <= self.n_ranks:
            raise TreeError(f"rank {rank} outside 1..{self.n_ranks}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CfpArray(n_ranks={self.n_ranks}, bytes={len(self.buffer)})"
        )
