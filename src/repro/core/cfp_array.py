"""The CFP-array: the mine-phase structure (paper §3.4).

The FP-tree is flattened into one byte buffer of varint-encoded triples
``(delta_item, dpos, count)``, ordered so that all nodes of one item form a
consecutive *subarray*. Because same-item nodes are contiguous, the
``nodelink`` field becomes redundant: sideward traversal is a sequential
scan of the subarray, guided by a small **item index** that maps each rank
to its subarray's starting byte offset.

Per-node fields:

* ``delta_item`` — rank delta to the parent; for children of the root it
  equals the rank itself (``parent_rank = rank - delta_item == 0`` marks
  "no parent", as in the paper's Figure 5).
* ``dpos`` — delta between the node's *local position* (byte offset within
  its subarray, as the paper prescribes for variable-size nodes) and its
  parent's local position within the parent's subarray. Because parent and
  child live in different subarrays that fill at different rates, the delta
  can be negative; it is zigzag-mapped before varint encoding (a detail the
  paper leaves open).
* ``count`` — the full cumulative count (partial counts cannot be
  reconstructed without child access, §3.4). Stored last so that backward
  traversal never decodes it.

Backward traversal from a node ``(rank, local)``: ``parent_rank = rank -
delta_item``; ``parent_local = local - dpos``; the parent's global offset is
``starts[parent_rank] + parent_local``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Union

from repro.compress import varint
from repro.errors import TreeError
from repro.memman.pointers import POINTER_SIZE
from repro.obs.registry import MetricsRegistry

#: One decoded node: ``(local, delta_item, dpos, count)``.
Triple = tuple[int, int, int, int]

#: Buffer types a CFP-array can wrap. ``memoryview`` enables zero-copy
#: attachment to a ``multiprocessing.shared_memory`` segment
#: (:mod:`repro.core.parallel`).
ArrayBuffer = Union[bytearray, bytes, memoryview]


class _SubarrayCache:
    """Byte-budgeted LRU cache of bulk-decoded subarrays, keyed by rank.

    The *charge* of an entry is the subarray's **encoded** byte length — the
    quantity the item index already knows — so the budget reads as "cache at
    most N bytes worth of CFP-array". The decoded triples occupy a constant
    factor more Python memory than their encoding; the budget is a knob, not
    an exact accounting (see docs/performance.md).
    """

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self._entries: OrderedDict[int, tuple[list[Triple], int]] = OrderedDict()

    def get(self, rank: int) -> list[Triple] | None:
        entry = self._entries.get(rank)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(rank)
        self.hits += 1
        return entry[0]

    def put(self, rank: int, triples: list[Triple], charge: int) -> None:
        if rank in self._entries:
            # A re-put is a recency signal: the rank is in active use, so
            # it must move to the MRU end exactly as a `get` hit would —
            # silently dropping it used to leave the entry first in line
            # for eviction despite being hot.
            self._entries.move_to_end(rank)
            return
        if charge > self.budget_bytes:
            # Larger than the whole budget: never cacheable. Count it so
            # a mis-sized budget shows up in the metrics instead of
            # manifesting as a mysterious 0% hit ratio.
            self.rejected += 1
            return
        while self._entries and self.used_bytes + charge > self.budget_bytes:
            __, (__, evicted_charge) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_charge
            self.evictions += 1
        self._entries[rank] = (triples, charge)
        self.used_bytes += charge

    def counts(self) -> dict[str, int]:
        """Current counter values, for delta-based publication."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
        }


class CfpArray:
    """Byte-packed CFP-array with its item index.

    Built by :func:`repro.core.conversion.convert`; the constructor takes
    the finished buffer and index. ``node_count`` is recorded by the
    converter (it knows it from the counts pass); hand-built arrays may
    omit it and fall back to a lazy full-buffer scan.

    ``cache_budget`` > 0 enables a byte-budgeted LRU cache of bulk-decoded
    subarrays (:meth:`set_cache_budget`), which pays off when subarrays are
    rescanned — as the ancestor subarrays are, many times over, during
    conditional-tree construction in the mine phase.
    """

    #: Class-level default so hand-assembled instances (``__new__`` in the
    #: corruption-injection tests) behave like cache-off arrays.
    _cache: _SubarrayCache | None = None

    def __init__(
        self,
        n_ranks: int,
        buffer: ArrayBuffer,
        starts: list[int],
        node_count: int | None = None,
        cache_budget: int = 0,
    ) -> None:
        if len(starts) != n_ranks + 2:
            raise TreeError(
                f"item index must have n_ranks+2 entries, got {len(starts)}"
            )
        if starts[1] != 0 or starts[-1] != len(buffer):
            raise TreeError("item index does not span the buffer")
        self.n_ranks = n_ranks
        self.buffer = buffer
        #: ``starts[rank]`` = first byte of the rank's subarray;
        #: ``starts[rank + 1]`` = one past its last byte. Entry 0 is unused.
        self.starts = starts
        self._node_count: int | None = node_count
        self._cache = _SubarrayCache(cache_budget) if cache_budget > 0 else None

    # ------------------------------------------------------------------
    # Decoded-subarray cache
    # ------------------------------------------------------------------

    @property
    def cache_budget(self) -> int:
        """Current byte budget of the decoded-subarray cache (0 = off)."""
        return self._cache.budget_bytes if self._cache is not None else 0

    def set_cache_budget(self, budget_bytes: int) -> None:
        """Enable (or resize, or with 0 disable) the decoded-subarray cache.

        Resizing drops all cached entries; results are unaffected either
        way — the cache only trades memory for repeated decode work.
        """
        self._cache = _SubarrayCache(budget_bytes) if budget_bytes > 0 else None

    def cache_counts(self) -> dict[str, int]:
        """Subarray-cache counters (all zero when the cache is off)."""
        if self._cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "rejected": 0}
        return self._cache.counts()

    def publish_cache_metrics(
        self, registry: MetricsRegistry, baseline: dict[str, int] | None = None
    ) -> None:
        """Add this array's cache counters to a metric registry.

        ``baseline`` (an earlier :meth:`cache_counts` snapshot) turns the
        publication into a delta, which is how long-lived arrays — the
        workers' cached shared-memory attachments — publish per-task.
        """
        counts = self.cache_counts()
        for name, value in counts.items():
            if baseline is not None:
                value -= baseline[name]
            if value:
                registry.add(f"subarray_cache.{name}", value)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Buffer bytes plus the item index (one 40-bit offset per rank)."""
        return len(self.buffer) + (self.n_ranks + 1) * POINTER_SIZE

    @property
    def node_count(self) -> int:
        """Total nodes across all subarrays.

        Recorded at build time by the converter; hand-built arrays that did
        not pass ``node_count`` fall back to a lazy full-buffer scan.
        """
        if self._node_count is None:
            self._node_count = sum(
                len(self.decode_subarray(rank))
                for rank in range(1, self.n_ranks + 1)
            )
        return self._node_count

    def average_node_size(self) -> float:
        """Bytes per node including the index — the Figure 6(b) metric."""
        count = self.node_count
        if count == 0:
            return 0.0
        return self.memory_bytes / count

    def subarray_bytes(self, rank: int) -> int:
        """Byte length of one rank's subarray."""
        self._check_rank(rank)
        return self.starts[rank + 1] - self.starts[rank]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def decode_subarray(self, rank: int) -> list[Triple]:
        """Bulk-decode one rank's subarray via the tight varint kernel.

        Returns ``(local, delta_item, dpos, count)`` tuples in storage
        order; served from the LRU cache when a budget is set.
        """
        self._check_rank(rank)
        cache = self._cache
        if cache is not None:
            cached = cache.get(rank)
            if cached is not None:
                return cached
        triples = varint.decode_triples(
            self.buffer, self.starts[rank], self.starts[rank + 1]
        )
        if cache is not None:
            cache.put(rank, triples, self.starts[rank + 1] - self.starts[rank])
        return triples

    def iter_subarray(self, rank: int) -> Iterator[Triple]:
        """Sideward traversal: ``(local, delta_item, dpos, count)`` per node."""
        return iter(self.decode_subarray(rank))

    def prefix_paths(self, rank: int) -> list[tuple[list[int], int]]:
        """Prefix paths of every node in ``rank``'s subarray, in storage order.

        Returns ``(ancestor_ranks_ascending, count)`` per node — the input
        of conditional-tree construction. The sideward scan is one bulk
        decode; the backward walks resolve ancestors through per-rank
        decoded maps that are built at most once per call (and reused
        across calls via the subarray cache), replacing the per-varint
        random-access decodes of the former per-node walk. ``count`` is
        never touched on the backward walk (§3.4's field-order rationale).
        """
        maps: dict[int, dict[int, tuple[int, int]]] = {}
        paths: list[tuple[list[int], int]] = []
        for local, delta_item, dpos, count in self.decode_subarray(rank):
            path: list[int] = []
            walk_rank, walk_local = rank, local
            walk_delta, walk_dpos = delta_item, dpos
            while True:
                parent_rank = walk_rank - walk_delta
                if parent_rank == 0:
                    break
                walk_local -= walk_dpos
                walk_rank = parent_rank
                path.append(walk_rank)
                parent_map = maps.get(walk_rank)
                if parent_map is None:
                    parent_map = {
                        node_local: (node_delta, node_dpos)
                        for node_local, node_delta, node_dpos, __ in
                        self.decode_subarray(walk_rank)
                    }
                    maps[walk_rank] = parent_map
                try:
                    walk_delta, walk_dpos = parent_map[walk_local]
                except KeyError:
                    raise TreeError(
                        f"dpos chain from rank {rank} lands at rank "
                        f"{walk_rank} local {walk_local}, not a node start"
                    ) from None
            path.reverse()
            paths.append((path, count))
        return paths

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        """Decode the triple at a (rank, local-offset) position."""
        self._check_rank(rank)
        offset = self.starts[rank] + local
        if not self.starts[rank] <= offset < self.starts[rank + 1]:
            raise TreeError(f"local offset {local} outside subarray of rank {rank}")
        buf = self.buffer
        delta_item, offset = varint.decode_from(buf, offset)
        dpos_raw, offset = varint.decode_from(buf, offset)
        count, __ = varint.decode_from(buf, offset)
        return delta_item, varint.unzigzag(dpos_raw), count

    def path_ranks(self, rank: int, local: int) -> list[int]:
        """Backward traversal: ancestor ranks of the node, ascending.

        The ``count`` field is never decoded on this walk (§3.4's field-order
        rationale).
        """
        buf = self.buffer
        starts = self.starts
        path = []
        while True:
            offset = starts[rank] + local
            delta_item, offset = varint.decode_from(buf, offset)
            dpos_raw, __ = varint.decode_from(buf, offset)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def rank_support(self, rank: int) -> int:
        """Support of an item: the sum of its subarray's counts."""
        return sum(count for __, __, __, count in self.decode_subarray(rank))

    def active_ranks_descending(self) -> Iterator[int]:
        """Ranks with a non-empty subarray, least frequent first."""
        for rank in range(self.n_ranks, 0, -1):
            if self.starts[rank + 1] > self.starts[rank]:
                yield rank

    def single_path(self) -> list[tuple[int, int]] | None:
        """The array's single path as ``(rank, count)`` pairs, or None.

        Array counterpart of :meth:`TernaryCfpTree.single_path`, for the
        single-path mining shortcut when the array was produced by the
        parallel build and no whole tree ever existed. A single path means
        every active rank holds exactly one node and each node's parent is
        the previous active rank. Counts are stored cumulatively, so they
        already equal the tree method's suffix-summed counts.
        """
        path: list[tuple[int, int]] = []
        prev_rank = 0
        for rank in range(1, self.n_ranks + 1):
            if self.starts[rank + 1] == self.starts[rank]:
                continue
            triples = self.decode_subarray(rank)
            if len(triples) != 1:
                return None
            __, delta_item, dpos, count = triples[0]
            if rank - delta_item != prev_rank or dpos != 0:
                return None
            path.append((rank, count))
            prev_rank = rank
        return path

    def item_of_position(self, offset: int) -> int:
        """Rank owning the byte at ``offset`` — largest start <= offset.

        The paper notes the item field *could* be dropped because the index
        answers this; provided for completeness and used in tests.
        """
        if not 0 <= offset < len(self.buffer):
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        # Skip over empty subarrays that share the same start.
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    def _check_rank(self, rank: int) -> None:
        if not 1 <= rank <= self.n_ranks:
            raise TreeError(f"rank {rank} outside 1..{self.n_ranks}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CfpArray(n_ranks={self.n_ranks}, bytes={len(self.buffer)})"
        )
