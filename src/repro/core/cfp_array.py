"""The CFP-array: the mine-phase structure (paper §3.4).

The FP-tree is flattened into one byte buffer of varint-encoded triples
``(delta_item, dpos, count)``, ordered so that all nodes of one item form a
consecutive *subarray*. Because same-item nodes are contiguous, the
``nodelink`` field becomes redundant: sideward traversal is a sequential
scan of the subarray, guided by a small **item index** that maps each rank
to its subarray's starting byte offset.

Per-node fields:

* ``delta_item`` — rank delta to the parent; for children of the root it
  equals the rank itself (``parent_rank = rank - delta_item == 0`` marks
  "no parent", as in the paper's Figure 5).
* ``dpos`` — delta between the node's *local position* (byte offset within
  its subarray, as the paper prescribes for variable-size nodes) and its
  parent's local position within the parent's subarray. Because parent and
  child live in different subarrays that fill at different rates, the delta
  can be negative; it is zigzag-mapped before varint encoding (a detail the
  paper leaves open).
* ``count`` — the full cumulative count (partial counts cannot be
  reconstructed without child access, §3.4). Stored last so that backward
  traversal never decodes it.

Backward traversal from a node ``(rank, local)``: ``parent_rank = rank -
delta_item``; ``parent_local = local - dpos``; the parent's global offset is
``starts[parent_rank] + parent_local``.
"""

from __future__ import annotations

from typing import Iterator

from repro.compress import varint
from repro.errors import TreeError
from repro.memman.pointers import POINTER_SIZE


class CfpArray:
    """Byte-packed CFP-array with its item index.

    Built by :func:`repro.core.conversion.convert`; the constructor takes
    the finished buffer and index.
    """

    def __init__(
        self, n_ranks: int, buffer: bytearray, starts: list[int]
    ) -> None:
        if len(starts) != n_ranks + 2:
            raise TreeError(
                f"item index must have n_ranks+2 entries, got {len(starts)}"
            )
        if starts[1] != 0 or starts[-1] != len(buffer):
            raise TreeError("item index does not span the buffer")
        self.n_ranks = n_ranks
        self.buffer = buffer
        #: ``starts[rank]`` = first byte of the rank's subarray;
        #: ``starts[rank + 1]`` = one past its last byte. Entry 0 is unused.
        self.starts = starts
        self._node_count: int | None = None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        """Buffer bytes plus the item index (one 40-bit offset per rank)."""
        return len(self.buffer) + (self.n_ranks + 1) * POINTER_SIZE

    @property
    def node_count(self) -> int:
        """Total nodes across all subarrays (computed lazily)."""
        if self._node_count is None:
            self._node_count = sum(
                1 for rank in range(1, self.n_ranks + 1) for __ in self.iter_subarray(rank)
            )
        return self._node_count

    def average_node_size(self) -> float:
        """Bytes per node including the index — the Figure 6(b) metric."""
        count = self.node_count
        if count == 0:
            return 0.0
        return self.memory_bytes / count

    def subarray_bytes(self, rank: int) -> int:
        """Byte length of one rank's subarray."""
        self._check_rank(rank)
        return self.starts[rank + 1] - self.starts[rank]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_subarray(self, rank: int) -> Iterator[tuple[int, int, int, int]]:
        """Sideward traversal: ``(local, delta_item, dpos, count)`` per node."""
        self._check_rank(rank)
        buf = self.buffer
        start = self.starts[rank]
        end = self.starts[rank + 1]
        offset = start
        while offset < end:
            local = offset - start
            delta_item, offset = varint.decode_from(buf, offset)
            dpos_raw, offset = varint.decode_from(buf, offset)
            count, offset = varint.decode_from(buf, offset)
            yield local, delta_item, varint.unzigzag(dpos_raw), count

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        """Decode the triple at a (rank, local-offset) position."""
        self._check_rank(rank)
        offset = self.starts[rank] + local
        if not self.starts[rank] <= offset < self.starts[rank + 1]:
            raise TreeError(f"local offset {local} outside subarray of rank {rank}")
        buf = self.buffer
        delta_item, offset = varint.decode_from(buf, offset)
        dpos_raw, offset = varint.decode_from(buf, offset)
        count, __ = varint.decode_from(buf, offset)
        return delta_item, varint.unzigzag(dpos_raw), count

    def path_ranks(self, rank: int, local: int) -> list[int]:
        """Backward traversal: ancestor ranks of the node, ascending.

        The ``count`` field is never decoded on this walk (§3.4's field-order
        rationale).
        """
        buf = self.buffer
        starts = self.starts
        path = []
        while True:
            offset = starts[rank] + local
            delta_item, offset = varint.decode_from(buf, offset)
            dpos_raw, __ = varint.decode_from(buf, offset)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def rank_support(self, rank: int) -> int:
        """Support of an item: the sum of its subarray's counts."""
        return sum(count for __, __, __, count in self.iter_subarray(rank))

    def active_ranks_descending(self) -> Iterator[int]:
        """Ranks with a non-empty subarray, least frequent first."""
        for rank in range(self.n_ranks, 0, -1):
            if self.starts[rank + 1] > self.starts[rank]:
                yield rank

    def item_of_position(self, offset: int) -> int:
        """Rank owning the byte at ``offset`` — largest start <= offset.

        The paper notes the item field *could* be dropped because the index
        answers this; provided for completeness and used in tests.
        """
        if not 0 <= offset < len(self.buffer):
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        # Skip over empty subarrays that share the same start.
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    def _check_rank(self, rank: int) -> None:
        if not 1 <= rank <= self.n_ranks:
            raise TreeError(f"rank {rank} outside 1..{self.n_ranks}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CfpArray(n_ranks={self.n_ranks}, bytes={len(self.buffer)})"
        )
