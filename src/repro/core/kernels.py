"""Columnar conditional-mining kernels: array-at-once mine phase.

The mine loop used to run pure-Python per-node work three times over for
every conditional tree: a dict increment per path element to find the
frequent ranks, a root-to-leaf :meth:`TernaryCfpTree.insert` per prefix
path, and a full tree build even when the conditional degenerates to a
single path. These kernels restructure that into whole-batch operations
over the path columns (DiffNodesets and Grahne & Zhu's array-based
FP-mining make the same move — contiguous array set-operations instead
of pointer chasing):

* :func:`conditional_counts` — one flat accumulation pass over every
  path element into a dense per-rank counts column;
* :func:`filter_aggregate` — frequent-rank filtering fused with path
  deduplication, so the tree build sees each distinct filtered path
  once, with its multiplicity, instead of once per source node;
* :func:`single_path_merge` — detects the degenerate single-path
  conditional straight from the aggregated paths (every path a prefix
  of the longest) and suffix-sums the counts exactly as
  :meth:`TernaryCfpTree.single_path` would — the tree is never built;
* :func:`build_conditional_array` — encodes the branching conditionals
  straight from the sorted aggregated paths into a CFP-array, byte for
  byte what ``convert(tree)`` would produce, without ever materializing
  the intermediate ternary tree. The trie the tree would hold is implied
  by the longest-common-prefix structure of the sorted paths, so one
  LCP walk emits the exact DFS preorder ``convert`` traverses.

The kernels are backend-neutral: they consume the plain-int path tuples
the memoized :meth:`CfpArray.prefix_paths` hands out, whether the
subarrays underneath were decoded by the stdlib ``array('q')`` kernel or
the optional vectorized numpy one (:mod:`repro.compress.varint`). They
change how fast the answer is computed, never the answer — the identity
suites in ``tests/core/test_kernels_identity.py`` hold them to the
retained reference implementation bit for bit.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Sequence

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.errors import ConversionError

#: Prefix paths as handed out by ``CfpArray.prefix_paths``: ancestor
#: ranks ascending, with the node's cumulative count.
PathCounts = Sequence[tuple[Sequence[int], int]]


def backend() -> str:
    """Active decode backend: ``"numpy"`` (vectorized) or ``"python"``.

    Reported in bench machine info and worker spans so a perf report
    records which kernel produced it; numpy is auto-detected and can be
    disabled with ``REPRO_NO_NUMPY`` (see docs/performance.md).
    """
    return "python" if varint._np is None else "numpy"


def conditional_counts(paths: PathCounts, n_ranks: int) -> list[int]:
    """Accumulate per-rank conditional counts over all path elements.

    Returns a dense column of length ``n_ranks + 1`` (index 0 unused)
    where entry ``r`` is the summed count of every path containing rank
    ``r`` — the support each rank would have in the conditional tree.
    """
    counts = [0] * (n_ranks + 1)
    for ranks, count in paths:
        for rank in ranks:
            counts[rank] += count
    return counts


def conditional_counts_metered(
    paths: PathCounts, n_ranks: int
) -> tuple[list[int], int]:
    """:func:`conditional_counts` plus the total path-item count, fused.

    Metered (traced) runs need ``sum(len(p) for p, _ in paths)`` for the
    per-scan operation accounting; computing it as a separate pass cost
    as much as the counting itself. This variant folds the tally into
    the accumulation loop — and exists separately so the plain mine path
    never pays for metering it does not use.
    """
    counts = [0] * (n_ranks + 1)
    items = 0
    for ranks, count in paths:
        items += len(ranks)
        for rank in ranks:
            counts[rank] += count
    return counts, items


def filter_aggregate(
    paths: PathCounts, counts: Sequence[int], min_support: int
) -> dict[tuple[int, ...], int]:
    """Filter paths to their frequent ranks and merge duplicates.

    ``counts`` is the dense per-rank column from
    :func:`conditional_counts`; the threshold test is fused into the
    filtering loop, so only ranks that actually appear on a path are ever
    tested (a conditional touches a handful of the array's ranks —
    materializing a dense frequent-flag column first cost more than the
    filtering itself). Distinct source paths frequently collapse onto the
    same filtered path; the returned mapping carries each distinct
    filtered path once with its total count, which is what makes the
    batch conditional build cheap.
    """
    aggregated: dict[tuple[int, ...], int] = {}
    get = aggregated.get
    for ranks, count in paths:
        filtered = tuple([rank for rank in ranks if counts[rank] >= min_support])
        if filtered:
            aggregated[filtered] = get(filtered, 0) + count
    return aggregated


def single_path_merge(
    aggregated: dict[tuple[int, ...], int],
) -> list[tuple[int, int]] | None:
    """Single-path check straight from the aggregated filtered paths.

    The conditional tree would be a single path exactly when every
    aggregated path is a prefix of the longest one. In that case the
    tree's ``single_path()`` result is reconstructed columnar-ly: the
    node at depth ``d`` accumulates the counts of every path at least
    ``d`` long (the suffix-sum the tree computes from pcounts), and no
    per-node structure is ever materialized. Returns ``None`` when the
    paths branch.
    """
    longest = max(aggregated, key=len)
    depth = len(longest)
    if len(aggregated) > depth:
        return None  # more distinct paths than prefixes of the longest
    count_by_length = [0] * (depth + 1)
    for ranks, count in aggregated.items():
        if ranks != longest[: len(ranks)]:
            return None
        count_by_length[len(ranks)] += count
    running = 0
    cumulative = [0] * (depth + 1)
    for length in range(depth, 0, -1):
        running += count_by_length[length]
        cumulative[length] = running
    return [(rank, cumulative[d + 1]) for d, rank in enumerate(longest)]


def build_conditional_array(
    ordered: Sequence[tuple[tuple[int, ...], int]], n_ranks: int
) -> CfpArray:
    """Encode sorted aggregated paths directly into a conditional CFP-array.

    ``ordered`` must be the distinct filtered paths in ascending
    lexicographic order (``sorted(filter_aggregate(...).items())``), each
    with its total count. Lexicographic order *is* the DFS preorder of
    the conditional trie with ascending-rank siblings — the exact order
    :func:`repro.core.conversion.flatten_subtrees` walks the ternary tree
    — so a longest-common-prefix walk over the sorted paths reproduces
    the flattened ``(ranks, parents, counts)`` arrays node for node, and
    the same sizing/placement cursor walk as
    :func:`~repro.core.conversion.splice_subtree` /
    :func:`~repro.core.conversion.assemble` then yields a byte stream
    identical to ``convert(tree)``. A path's count accrues to the
    cumulative count of every node it passes through, which is the
    postorder accumulation the tree walk performs (§3.5).

    Subtrees break exactly where the leading rank changes (LCP of zero),
    matching the level-1 partition ``flatten_subtrees`` yields — and the
    ascending-leading-rank splice order its byte-identity contract needs.

    The cursor walk here is :func:`~repro.core.conversion.splice_subtree`'s
    math on sparse per-rank state (dicts instead of dense ``n_ranks``-sized
    lists): a conditional's paths touch a handful of ranks, and the dense
    :class:`~repro.core.conversion.Layout` would spend more time allocating
    and scanning empty ranks than encoding — only the ``starts`` table,
    which the CFP-array format requires dense, is built full-width (via a
    C-speed ``accumulate``).
    """
    cursors: dict[int, int] = {}
    sizes_gaps: list[int] = [0] * (n_ranks + 2)  # per-rank sizes, shifted +1
    triples: dict[int, list[tuple[int, int, int]]] = {}
    tsize = varint.triple_size

    def _splice(ranks: list[int], parents: list[int], counts: list[int]) -> None:
        locals_ = [0] * len(ranks)
        for index in range(len(ranks)):
            rank = ranks[index]
            parent = parents[index]
            local = cursors.get(rank, 0)
            locals_[index] = local
            if parent < 0:
                delta_item = rank
                dpos = 0
            else:
                delta_item = rank - ranks[parent]
                dpos = local - locals_[parent]
            size = tsize(delta_item, dpos, counts[index])
            cursors[rank] = local + size
            sizes_gaps[rank + 1] += size
            bucket = triples.get(rank)
            if bucket is None:
                bucket = triples[rank] = []
            bucket.append((delta_item, dpos, counts[index]))

    ranks: list[int] = []
    parents: list[int] = []
    counts: list[int] = []
    stack: list[int] = []  # indices into ``ranks`` along the current path
    previous: tuple[int, ...] = ()
    for path, count in ordered:
        shared = 0
        limit = min(len(previous), len(path))
        while shared < limit and previous[shared] == path[shared]:
            shared += 1
        if shared == 0 and ranks:
            _splice(ranks, parents, counts)
            ranks, parents, counts = [], [], []
        del stack[shared:]
        for depth in range(shared, len(path)):
            parents.append(stack[-1] if stack else -1)
            stack.append(len(ranks))
            ranks.append(path[depth])
            counts.append(0)
        for index in stack:
            counts[index] += count
        previous = path
    if ranks:
        _splice(ranks, parents, counts)
    starts = list(accumulate(sizes_gaps))
    buffer = bytearray(starts[-1])
    nodes = 0
    for rank, bucket in triples.items():
        nodes += len(bucket)
        end = varint.encode_triples(buffer, starts[rank], bucket)
        if end != starts[rank + 1]:
            raise ConversionError(
                f"conditional subarray of rank {rank} filled "
                f"{end - starts[rank]} of {starts[rank + 1] - starts[rank]} bytes"
            )
    return CfpArray(
        n_ranks, buffer, starts, node_count=nodes, active_ranks=list(triples)
    )
