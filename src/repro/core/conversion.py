"""Conversion of a ternary CFP-tree into a CFP-array (paper §3.5).

The paper performs two passes over the CFP-tree: a sizing pass and a
placement pass, both depth-first in the same order, with ``dpos`` values
obtained from a stack holding the path from the root to the current node.

This implementation adds one preliminary traversal: the CFP-array stores
*cumulative* counts, which are only known once a node's whole subtree has
been visited, while a node's encoded size (needed by the sizing cursor) must
be known at preorder time. The counts pass reconstructs cumulative counts
from partial counts by postorder accumulation; the paper's C++ code can
fold this into its sizing pass because it tracks per-node state in the tree
itself, which the compressed byte format deliberately has no room for.

Per-subarray writes in the placement pass are strictly sequential — the
property that makes conversion behave well under memory pressure (§3.5).
"""

from __future__ import annotations

from typing import Callable

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.ternary import TernaryCfpTree
from repro.errors import ConversionError


def cumulative_counts(tree: TernaryCfpTree) -> list[int]:
    """Cumulative count per node in DFS preorder.

    ``count(v) = pcount(v) + sum of counts of v's children`` (§3.2),
    computed by accumulating child totals into parents at leave events.
    """
    counts: list[int] = []
    index_stack = [-1]
    for kind, __, pcount in tree.iter_events():
        if kind == "enter":
            index_stack.append(len(counts))
            counts.append(pcount)
        else:
            index = index_stack.pop()
            parent = index_stack[-1]
            if parent >= 0:
                counts[parent] += counts[index]
    return counts


def _traverse(
    tree: TernaryCfpTree,
    counts: list[int],
    visit: Callable[[int, int, int, int], int],
) -> None:
    """Shared DFS skeleton of the sizing and placement passes.

    Calls ``visit(rank, delta_item, dpos, count) -> local_cursor_advance``
    for every node in preorder; maintains the per-rank local cursors and the
    root-path stack of ``(rank, local_position)`` pairs.
    """
    cursors = [0] * (tree.n_ranks + 1)
    path: list[tuple[int, int]] = [(0, 0)]
    index = 0
    for kind, rank, __ in tree.iter_events():
        if kind == "enter":
            parent_rank, parent_local = path[-1]
            local = cursors[rank]
            if parent_rank == 0:
                delta_item, dpos = rank, 0
            else:
                delta_item = rank - parent_rank
                dpos = local - parent_local
            size = visit(rank, delta_item, dpos, counts[index])
            cursors[rank] = local + size
            path.append((rank, local))
            index += 1
        else:
            path.pop()


def convert(tree: TernaryCfpTree) -> CfpArray:
    """Transform a built CFP-tree into the mine-phase CFP-array."""
    counts = cumulative_counts(tree)
    n_ranks = tree.n_ranks

    # Sizing pass: per-rank subarray byte sizes.
    sizes = [0] * (n_ranks + 1)

    def measure(rank: int, delta_item: int, dpos: int, count: int) -> int:
        size = (
            varint.encoded_size(delta_item)
            + varint.encoded_size(varint.zigzag(dpos))
            + varint.encoded_size(count)
        )
        sizes[rank] += size
        return size

    _traverse(tree, counts, measure)

    starts = [0] * (n_ranks + 2)
    total = 0
    for rank in range(1, n_ranks + 1):
        total += sizes[rank]
        starts[rank + 1] = total
    buffer = bytearray(total)

    # Placement pass: write each triple at its final position.
    written = [0] * (n_ranks + 1)

    def place(rank: int, delta_item: int, dpos: int, count: int) -> int:
        offset = starts[rank] + written[rank]
        end = varint.encode_into(buffer, offset, delta_item)
        end = varint.encode_into(buffer, end, varint.zigzag(dpos))
        end = varint.encode_into(buffer, end, count)
        written[rank] = end - starts[rank]
        return end - offset

    _traverse(tree, counts, place)

    for rank in range(1, n_ranks + 1):
        if written[rank] != sizes[rank]:
            raise ConversionError(
                f"subarray of rank {rank} filled {written[rank]} of "
                f"{sizes[rank]} bytes"
            )
    # The counts pass already visited every node, so the converter knows the
    # node count exactly — no lazy re-decode of the whole buffer later.
    return CfpArray(n_ranks, buffer, starts, node_count=len(counts))
