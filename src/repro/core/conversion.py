"""Conversion of a ternary CFP-tree into a CFP-array (paper §3.5).

The paper performs two passes over the CFP-tree: a sizing pass and a
placement pass, both depth-first in the same order, with ``dpos`` values
obtained from a stack holding the path from the root to the current node.

This implementation restructures those passes around three primitives that
the parallel build phase (:mod:`repro.core.build_parallel`) reuses:

* :func:`flatten_subtrees` — one DFS over the tree yielding each level-1
  subtree as flat preorder arrays ``(ranks, parents, counts)``, with
  *cumulative* counts folded in by postorder accumulation. The CFP-array
  stores cumulative counts, which are only known once a node's whole
  subtree has been visited, while a node's encoded size (needed by the
  sizing cursor) must be known at preorder time; the paper's C++ code can
  fold this into its sizing pass because it tracks per-node state in the
  tree itself, which the compressed byte format deliberately has no room
  for.
* :func:`splice_subtree` — sizes one subtree's triples against a
  :class:`Layout` holding the global per-rank cursors. Because the serial
  DFS visits level-1 subtrees in ascending leading-rank order, splicing
  independently-built subtrees in that same order reproduces the serial
  cursor walk exactly — the property the parallel build's merge step
  relies on for byte identity.
* :func:`assemble` — allocates the final buffer and bulk-encodes each
  per-rank subarray through :func:`repro.compress.varint.encode_triples`
  instead of three per-field ``encode_into`` calls per node (lint rule
  INV007 pins this down).

Per-subarray writes in the placement pass are strictly sequential — the
property that makes conversion behave well under memory pressure (§3.5).
"""

from __future__ import annotations

from typing import Iterator

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.ternary import TernaryCfpTree
from repro.errors import ConversionError

#: One flattened level-1 subtree: ``(leading_rank, ranks, parents, counts)``
#: where ``parents[i]`` indexes the preorder arrays (-1 for the subtree root)
#: and ``counts`` are already cumulative.
FlatSubtree = tuple[int, list[int], list[int], list[int]]


def cumulative_counts(tree: TernaryCfpTree) -> list[int]:
    """Cumulative count per node in DFS preorder.

    ``count(v) = pcount(v) + sum of counts of v's children`` (§3.2),
    computed by accumulating child totals into parents at leave events.
    """
    counts: list[int] = []
    index_stack = [-1]
    for kind, __, pcount in tree.iter_events():
        if kind == "enter":
            index_stack.append(len(counts))
            counts.append(pcount)
        else:
            index = index_stack.pop()
            parent = index_stack[-1]
            if parent >= 0:
                counts[parent] += counts[index]
    return counts


def flatten_subtrees(tree: TernaryCfpTree) -> Iterator[FlatSubtree]:
    """Flatten each level-1 subtree of ``tree`` into preorder flat arrays.

    Yields ``(leading_rank, ranks, parents, counts)`` per root child, in
    ascending leading-rank order (the order :meth:`~TernaryCfpTree.iter_events`
    visits siblings). ``counts`` are cumulative. Concatenating the yielded
    subtrees reproduces the full serial DFS, because level-1 subtrees
    partition the tree and DFS never interleaves them.
    """
    ranks: list[int] = []
    parents: list[int] = []
    counts: list[int] = []
    stack: list[int] = []
    for kind, rank, pcount in tree.iter_events():
        if kind == "enter":
            if not stack and ranks:
                yield ranks[0], ranks, parents, counts
                ranks, parents, counts = [], [], []
            parents.append(stack[-1] if stack else -1)
            stack.append(len(ranks))
            ranks.append(rank)
            counts.append(pcount)
        else:
            index = stack.pop()
            if stack:
                counts[stack[-1]] += counts[index]
    if ranks:
        yield ranks[0], ranks, parents, counts


class Layout:
    """Mutable state of the sizing/placement cursor walk.

    Tracks, per rank: the local byte cursor (a node's ``dpos`` is relative
    to its parent's local position), the accumulated subarray size, and the
    ``(delta_item, dpos, count)`` triples awaiting bulk encoding.
    """

    __slots__ = ("n_ranks", "cursors", "sizes", "triples", "nodes")

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self.cursors: list[int] = [0] * (n_ranks + 1)
        self.sizes: list[int] = [0] * (n_ranks + 1)
        self.triples: list[list[tuple[int, int, int]]] = [
            [] for __ in range(n_ranks + 1)
        ]
        self.nodes = 0


def splice_subtree(
    layout: Layout,
    ranks: list[int],
    parents: list[int],
    counts: list[int],
) -> None:
    """Size one flattened subtree's triples against the global cursors.

    Must be called in ascending leading-rank order across subtrees to match
    the serial DFS: ``dpos`` (and therefore each varint's width, and
    therefore every later local position in the same subarray) depends on
    the cursor state left behind by all earlier subtrees. This is the
    "rebase" step of the parallel build merge — the per-node deltas come
    from the worker's shard, the positions from the global walk.
    """
    cursors = layout.cursors
    sizes = layout.sizes
    triples = layout.triples
    tsize = varint.triple_size
    locals_ = [0] * len(ranks)
    for index in range(len(ranks)):
        rank = ranks[index]
        parent = parents[index]
        local = cursors[rank]
        locals_[index] = local
        if parent < 0:
            delta_item = rank
            dpos = 0
        else:
            delta_item = rank - ranks[parent]
            dpos = local - locals_[parent]
        count = counts[index]
        size = tsize(delta_item, dpos, count)
        cursors[rank] = local + size
        sizes[rank] += size
        triples[rank].append((delta_item, dpos, count))
    layout.nodes += len(ranks)


def assemble(layout: Layout) -> CfpArray:
    """Allocate the final buffer and bulk-encode every per-rank subarray."""
    n_ranks = layout.n_ranks
    starts = [0] * (n_ranks + 2)
    total = 0
    for rank in range(1, n_ranks + 1):
        total += layout.sizes[rank]
        starts[rank + 1] = total
    buffer = bytearray(total)
    for rank in range(1, n_ranks + 1):
        end = varint.encode_triples(buffer, starts[rank], layout.triples[rank])
        if end != starts[rank + 1]:
            raise ConversionError(
                f"subarray of rank {rank} filled {end - starts[rank]} of "
                f"{layout.sizes[rank]} bytes"
            )
    # The flatten pass already visited every node, so the converter knows the
    # node count exactly — no lazy re-decode of the whole buffer later.
    return CfpArray(n_ranks, buffer, starts, node_count=layout.nodes)


def convert(tree: TernaryCfpTree) -> CfpArray:
    """Transform a built CFP-tree into the mine-phase CFP-array."""
    layout = Layout(tree.n_ranks)
    for __, ranks, parents, counts in flatten_subtrees(tree):
        splice_subtree(layout, ranks, parents, counts)
    return assemble(layout)
