"""The logical CFP-tree (paper §3.2).

Structurally identical to the FP-tree; the information per node differs:

* ``delta_item`` — the difference between the node's item rank and its
  parent's. Along any root-to-leaf path ranks strictly increase, so
  ``delta_item >= 1``; the absolute rank is the running sum of deltas.
* ``pcount`` — the *partial count*. Inserting a prefix increments only the
  final node's pcount (an FP-tree increments every node on the path), so

      count(v) = pcount(v) + sum of pcount over all descendants of v,

  and the sum of all pcounts equals the number of inserted transactions.
  Most nodes end no transaction, so most pcounts are zero — which is what
  makes the 3-bit zero-suppression mask so effective (Table 2).

This object-based implementation is the readable reference; the compressed
physical representation lives in :mod:`repro.core.ternary`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TreeError
from repro.fptree.tree import FPTree


class CfpNode:
    """One logical CFP-tree node."""

    __slots__ = ("delta_item", "pcount", "children")

    def __init__(self, delta_item: int, pcount: int = 0) -> None:
        self.delta_item = delta_item
        self.pcount = pcount
        #: Children keyed by absolute rank (kept absolute for navigation;
        #: each child's ``delta_item`` is relative to this node).
        self.children: dict[int, CfpNode] = {}

    def count(self) -> int:
        """Reconstruct the FP-tree count: pcount summed over the subtree."""
        total = self.pcount
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            total += node.pcount
            stack.extend(node.children.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CfpNode(delta={self.delta_item}, pcount={self.pcount})"


class CfpTree:
    """A logical CFP-tree built from rank-sorted transactions."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 0:
            raise TreeError(f"n_ranks must be non-negative, got {n_ranks}")
        self.n_ranks = n_ranks
        self.root = CfpNode(0)
        self._node_count = 0
        self._transaction_count = 0

    @classmethod
    def from_rank_transactions(
        cls, transactions: Iterable[list[int]], n_ranks: int
    ) -> "CfpTree":
        tree = cls(n_ranks)
        for ranks in transactions:
            tree.insert(ranks)
        return tree

    def insert(self, ranks: list[int], count: int = 1) -> None:
        """Insert a rank-sorted transaction, bumping only the final pcount."""
        if not ranks:
            return
        node = self.root
        parent_rank = 0
        for rank in ranks:
            child = node.children.get(rank)
            if child is None:
                child = CfpNode(rank - parent_rank)
                node.children[rank] = child
                self._node_count += 1
            node = child
            parent_rank = rank
        node.pcount += count
        self._transaction_count += count

    @property
    def node_count(self) -> int:
        """Number of nodes, excluding the virtual root."""
        return self._node_count

    @property
    def transaction_count(self) -> int:
        """Transactions inserted — equals the sum of all pcounts (§3.2)."""
        return self._transaction_count

    def iter_nodes(self) -> Iterator[tuple[int, CfpNode]]:
        """Depth-first ``(absolute_rank, node)`` pairs, excluding the root."""
        stack = [(rank, node) for rank, node in self.root.children.items()]
        while stack:
            rank, node = stack.pop()
            yield rank, node
            stack.extend(node.children.items())

    def total_pcount(self) -> int:
        """Sum of every node's pcount (must equal ``transaction_count``)."""
        return sum(node.pcount for __, node in self.iter_nodes())

    @classmethod
    def from_fp_tree(cls, fp_tree: FPTree) -> "CfpTree":
        """Derive the CFP-tree corresponding to an FP-tree.

        ``pcount(v) = count(v) - sum of children's counts`` — the number of
        transactions that end exactly at ``v``.
        """
        tree = cls(fp_tree.n_ranks)
        stack = [(fp_tree.root, tree.root, 0)]
        while stack:
            fp_node, cfp_node, parent_rank = stack.pop()
            for rank, fp_child in fp_node.children.items():
                child_sum = sum(c.count for c in fp_child.children.values())
                cfp_child = CfpNode(rank - parent_rank, fp_child.count - child_sum)
                cfp_node.children[rank] = cfp_child
                tree._node_count += 1
                tree._transaction_count += cfp_child.pcount
                stack.append((fp_child, cfp_child, rank))
        return tree

    def to_fp_tree(self) -> FPTree:
        """Reconstruct the equivalent FP-tree (cumulative counts, nodelinks)."""
        fp_tree = FPTree(self.n_ranks)
        self._rebuild(self.root, [], fp_tree)
        return fp_tree

    def _rebuild(self, node: CfpNode, path: list[int], fp_tree: FPTree) -> None:
        if node.pcount:
            fp_tree.insert(path, node.pcount)
        for rank in sorted(node.children):
            path.append(rank)
            self._rebuild(node.children[rank], path, fp_tree)
            path.pop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CfpTree(n_ranks={self.n_ranks}, nodes={self._node_count})"
