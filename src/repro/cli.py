"""Command-line interface.

Usage (after installation)::

    python -m repro mine data.fimi --min-support 100
    python -m repro mine data.fimi --min-support 100 --algorithm lcm --closed
    python -m repro mine data.fimi --min-support 100 --jobs 4
    python -m repro mine data.fimi --min-support 100 --trace out.jsonl
    python -m repro stats data.fimi
    python -m repro stats out.jsonl          # per-phase trace summary
    python -m repro convert data.fimi data.bin
    python -m repro check tree.cfpt array.cfpa
    python -m repro compact array.cfpa --threshold 0.25
    python -m repro experiment table1
    python -m repro bench --quick
    python -m repro serve data.fimi --min-support 100 --port 7171
    python -m repro stream data.fimi --window 8 --snapshot-dir snaps/
    python -m repro serve snaps/ --follow --port 7171

``mine`` accepts FIMI text (default) or the binary format (``.bin``).
``--jobs N`` parallelizes the mine phase for miners that support it
(currently cfp-growth); ``--build-jobs N`` does the same for the build
phase; other miners ignore both with a warning. Parallel phases run
supervised (docs/robustness.md): ``--task-timeout`` sets the per-task
deadline in seconds (0 = none), ``--max-retries`` bounds per-task
re-execution after worker crashes/timeouts, and ``--no-fallback``
disables the degraded-serial path so supervision failures raise.
``--trace FILE`` records a span trace plus metric counters
(docs/observability.md); ``stats`` renders trace files as a per-phase
summary table.

``check`` exit codes: 0 every file intact, 1 corruption diagnostics,
2 usage error, 3 a path could not be read at all.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.algorithms import get_miner, iter_miners
from repro.datasets.binary import read_binary, write_binary
from repro.datasets.fimi import read_fimi, write_fimi
from repro.datasets.stats import dataset_stats
from repro.errors import ReproError
from repro.mining import closed_itemsets, maximal_itemsets, top_k_itemsets

#: Experiment modules runnable via `repro experiment <name>`.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig6",
    "fig7",
    "fig8",
    "ablations",
    "outofcore",
    "distributed",
    "compression_curve",
)


def _load(path: str) -> list[list[int]]:
    if path.endswith(".bin"):
        return read_binary(path)
    return read_fimi(path)


@contextmanager
def _tracing(trace_path):
    """Install a process-wide tracer for the wrapped command.

    On exit the previous tracer is restored and the trace file (spans plus
    the metric-registry snapshot) is written, even when the command raised.
    No-op when ``trace_path`` is falsy.
    """
    if not trace_path:
        yield
        return
    from repro import obs
    from repro.obs.tracer import Tracer

    obs.metrics.reset()  # the file must reflect this run only
    tracer = Tracer()
    previous = obs.set_tracer(tracer)
    try:
        yield
    finally:
        obs.set_tracer(previous)
        lines = tracer.write_jsonl(trace_path, registry=obs.metrics)
        print(
            f"# trace: {lines} lines -> {trace_path} "
            f"(render with `repro stats {trace_path}`)",
            file=sys.stderr,
        )


def _cmd_mine(args) -> int:
    from repro import runtime

    runtime.configure(
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        # Only an explicit --no-fallback overrides REPRO_NO_FALLBACK.
        fallback=False if args.no_fallback else None,
    )
    database = _load(args.file)
    started = time.perf_counter()
    with _tracing(args.trace):
        if args.top_k:
            results = top_k_itemsets(database, args.top_k)
            kind = f"top-{args.top_k}"
        elif args.closed:
            results = closed_itemsets(database, args.min_support)
            kind = "closed"
        elif args.maximal:
            results = maximal_itemsets(database, args.min_support)
            kind = "maximal"
        else:
            miner = get_miner(args.algorithm)
            if args.jobs > 1:
                if hasattr(miner, "jobs"):
                    miner.jobs = args.jobs
                else:
                    print(
                        f"warning: --jobs ignored "
                        f"({args.algorithm} mines serially)",
                        file=sys.stderr,
                    )
            if args.build_jobs > 1:
                if hasattr(miner, "build_jobs"):
                    miner.build_jobs = args.build_jobs
                else:
                    print(
                        f"warning: --build-jobs ignored "
                        f"({args.algorithm} builds serially)",
                        file=sys.stderr,
                    )
            results = miner.mine(database, args.min_support)
            kind = "frequent"
    elapsed = time.perf_counter() - started
    results = sorted(results, key=lambda r: (-r[1], len(r[0])))
    limit = args.limit if args.limit else len(results)
    for itemset, support in results[:limit]:
        items = " ".join(str(i) for i in sorted(itemset, key=repr))
        print(f"{support}\t{items}")
    print(
        f"# {len(results)} {kind} itemsets in {elapsed:.2f}s "
        f"({args.algorithm})",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import report as obs_report

    if obs_report.is_trace_file(args.file):
        print(obs_report.format_trace_summary(obs_report.read_trace(args.file)))
        return 0
    database = _load(args.file)
    stats = dataset_stats(args.file, database)
    print(f"transactions:     {stats.n_transactions:,}")
    print(f"distinct items:   {stats.distinct_items:,}")
    print(f"avg. cardinality: {stats.avg_item_cardinality:.2f}")
    print(f"FIMI text size:   {stats.fimi_bytes:,} bytes")
    return 0


def _cmd_convert(args) -> int:
    database = _load(args.source)
    if args.target.endswith(".bin"):
        size = write_binary(args.target, database)
    else:
        write_fimi(args.target, database)
        import os

        size = os.stat(args.target).st_size
    print(f"wrote {len(database)} transactions, {size:,} bytes")
    return 0


def _cmd_check(args) -> int:
    if args.static:
        return _cmd_check_static(args)
    from repro import analysis

    if not args.paths:
        print("error: check needs CFPA/CFPT paths (or --static)", file=sys.stderr)
        return 2
    exit_code = analysis.EXIT_OK
    results = []
    for path in args.paths:
        try:
            report = analysis.check_file(path, deep=not args.shallow)
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            exit_code = max(exit_code, analysis.EXIT_UNREADABLE)
            continue
        results.append(report)
        if not report.ok:
            exit_code = max(exit_code, analysis.EXIT_CORRUPT)
        if args.as_json:
            continue
        if report.ok:
            print(
                f"{report.path}: ok ({report.kind} v{report.version}, "
                f"{report.page_count} pages)"
            )
        else:
            for diag in report.diagnostics:
                print(f"{report.path}: {diag}")
    if args.as_json:
        import json

        print(
            json.dumps(
                [
                    {
                        "path": r.path,
                        "kind": r.kind,
                        "version": r.version,
                        "pages": r.page_count,
                        "checksummed": r.checksummed,
                        "ok": r.ok,
                        "diagnostics": [d.to_dict() for d in r.diagnostics],
                    }
                    for r in results
                ],
                indent=2,
            )
        )
    return exit_code


def _cmd_check_static(args) -> int:
    """Run the whole-program static analyzer (``repro check --static``)."""
    from repro.analysis import staticcheck

    repo_root = staticcheck.default_repo_root()
    paths = [Path(p) for p in args.paths] or staticcheck.default_paths(repo_root)
    if not paths:
        print(f"error: no analysis roots under {repo_root}", file=sys.stderr)
        return 2
    try:
        findings = staticcheck.run(paths, repo_root)
    except staticcheck.SourceParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return staticcheck.EXIT_ERROR
    if args.as_json:
        print(staticcheck.findings_to_json(findings))
    else:
        for finding in findings:
            print(finding)
    return staticcheck.EXIT_FINDINGS if findings else staticcheck.EXIT_CLEAN


def _cmd_compact(args) -> int:
    """Repack fragmented partitioned stores (``repro compact``)."""
    from repro.storage.cfp_store import DEFAULT_PARTITION_BYTES
    from repro.storage.compaction import compact_store, store_fragmentation
    from repro.storage.placement import get_placement

    placement = get_placement(args.placement, args.generation)
    partition_bytes = args.partition_bytes or DEFAULT_PARTITION_BYTES
    exit_code = 0
    for path in args.paths:
        if args.dry_run:
            fragmentation, n_parts = store_fragmentation(path)
            action = (
                "would compact" if fragmentation > args.threshold else "ok"
            )
            print(
                f"{path}: {fragmentation:.1%} slack, {n_parts} partitions "
                f"({action})"
            )
            continue
        report = compact_store(
            path,
            partition_bytes=partition_bytes,
            placement=placement,
            threshold=args.threshold,
        )
        if report.ran:
            print(
                f"{path}: compacted {report.partitions_before} -> "
                f"{report.partitions_after} partitions "
                f"({report.fragmentation:.1%} slack, "
                f"{report.bytes_written:,} bytes written)"
            )
        else:
            print(
                f"{path}: left alone ({report.fragmentation:.1%} slack, "
                f"{report.partitions_before} partitions)"
            )
    return exit_code


def _cmd_bench(args) -> int:  # pragma: no cover - dispatched early in main()
    from repro import bench

    return bench.main([])


def _cmd_stream(args) -> int:
    """Incrementally mine a batch stream, publishing snapshots
    (docs/streaming.md)."""
    from repro.budget import snapshot_plan
    from repro.streaming import CountingPhase, IncrementalMiner, SnapshotManager

    if args.batch_size < 1:
        print(f"error: --batch-size must be >= 1, got {args.batch_size}",
              file=sys.stderr)
        return 2
    database = _load(args.file)
    batches = [
        database[start : start + args.batch_size]
        for start in range(0, len(database), args.batch_size)
    ]
    # The item table is frozen over the whole stream before any batch is
    # merged — ranks must mean the same item in every delta, and the
    # byte-identity contract is against a same-table rebuild.
    counting = CountingPhase()
    counting.add_batch(database)
    table = counting.finish(args.min_support)
    manager = SnapshotManager(args.snapshot_dir) if args.snapshot_dir else None
    publish_every = max(1, args.publish_every)
    started = time.perf_counter()
    with _tracing(args.trace):
        miner = IncrementalMiner(table, window=args.window or None)
        for index, batch in enumerate(batches):
            inserted = miner.append_batch(batch)
            last = index + 1 == len(batches)
            if manager is None or not (last or (index + 1) % publish_every == 0):
                continue
            array = miner.to_array()
            partition_bytes, __ = snapshot_plan(
                args.memory_budget or None, array.memory_bytes
            )
            if args.partition_bytes:
                partition_bytes = args.partition_bytes
            generation = manager.publish(
                array,
                table,
                miner.window_transactions,
                partition_bytes=partition_bytes,
            )
            print(
                f"# batch {index + 1}/{len(batches)}: +{inserted} "
                f"transactions, window {miner.window_batches} batches "
                f"-> generation {generation}",
                file=sys.stderr,
            )
        if manager is None:
            results = sorted(miner.mine(), key=lambda r: (-r[1], len(r[0])))
            limit = args.limit if args.limit else len(results)
            for itemset, support in results[:limit]:
                items = " ".join(str(i) for i in sorted(itemset, key=repr))
                print(f"{support}\t{items}")
            elapsed = time.perf_counter() - started
            print(
                f"# {len(results)} frequent itemsets over the final "
                f"{miner.window_batches}-batch window in {elapsed:.2f}s",
                file=sys.stderr,
            )
    return 0


def _cmd_serve(args) -> int:
    """Build (if needed) and run the query server (docs/serving.md)."""
    import asyncio

    from repro.serving.store import ServingStore, build_store, sidecar_path

    if args.follow:
        array_path = args.file  # a snapshot directory, not an array
    elif args.file.endswith(".cfpa"):
        array_path = args.file
    else:
        database = _load(args.file)
        array_path = args.store or args.file + ".cfpa"
        size = build_store(
            database,
            args.min_support,
            array_path,
            partition_bytes=args.partition_bytes or None,
        )
        print(
            f"# built store: {size:,} bytes -> {array_path} "
            f"(+ {sidecar_path(array_path)})",
            file=sys.stderr,
        )
        if args.build_only:
            return 0

    async def _run() -> None:
        import signal

        from repro.serving.server import ReproServer

        server = ReproServer(
            store,
            host=args.host,
            port=args.port,
            memory_budget=args.memory_budget or None,
            workers=args.workers,
        )
        await server.start()
        # Signals set an event instead of raising KeyboardInterrupt, so
        # the drain (finish in-flight requests, flush responses, publish
        # pool counters) always runs to completion — a KeyboardInterrupt
        # would cancel the main task and cut the drain short.
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop_requested.set)
        print(
            f"# serving {array_path} on {server.host}:{server.port} "
            f"(max {server.max_inflight} in-flight; ctrl-c to drain)",
            file=sys.stderr,
        )
        await stop_requested.wait()
        print("# draining ...", file=sys.stderr)
        await server.stop()
        print("# drained, bye", file=sys.stderr)

    with _tracing(args.trace):
        if args.follow:
            from repro.serving.follow import FollowingStore

            with FollowingStore(
                array_path,
                pool_pages=args.pool_pages,
                cache_budget=args.cache_budget,
                hot_bytes=args.hot_bytes,
            ) as store:
                store.start_following(args.poll_interval)
                asyncio.run(_run())
        else:
            with ServingStore(
                array_path,
                pool_pages=args.pool_pages,
                cache_budget=args.cache_budget,
                hot_bytes=args.hot_bytes,
            ) as store:
                asyncio.run(_run())
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    with _tracing(args.trace):
        report = module.run()
    print(module.format_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-efficient frequent-itemset mining (CFP-growth)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine frequent itemsets from a dataset")
    mine.add_argument("file", help="FIMI text file (or .bin binary)")
    mine.add_argument("--min-support", type=int, default=2)
    mine.add_argument(
        "--algorithm", choices=iter_miners(), default="cfp-growth"
    )
    mine.add_argument("--closed", action="store_true", help="closed itemsets only")
    mine.add_argument("--maximal", action="store_true", help="maximal itemsets only")
    mine.add_argument("--top-k", type=int, default=0, help="k best itemsets")
    mine.add_argument("--limit", type=int, default=0, help="print at most N rows")
    mine.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="mine-phase worker processes (cfp-growth only; default 1 = serial)",
    )
    mine.add_argument(
        "--build-jobs",
        type=int,
        default=1,
        help="build-phase worker processes (cfp-growth only; default 1 = serial)",
    )
    mine.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a JSONL span trace + metrics to FILE (see docs/observability.md)",
    )
    mine.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline for supervised parallel phases "
        "(0 = no deadline; default from REPRO_TASK_TIMEOUT)",
    )
    mine.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed parallel task before degrading "
        "(default from REPRO_MAX_RETRIES, else 2)",
    )
    mine.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of degrading to the serial path when parallel "
        "supervision is exhausted",
    )
    mine.set_defaults(func=_cmd_mine)

    stats = sub.add_parser(
        "stats", help="dataset summary statistics (or a trace-file summary)"
    )
    stats.add_argument("file", help="dataset, or a --trace output file")
    stats.set_defaults(func=_cmd_stats)

    convert = sub.add_parser("convert", help="convert between text and binary")
    convert.add_argument("source")
    convert.add_argument("target")
    convert.set_defaults(func=_cmd_convert)

    check = sub.add_parser(
        "check", help="verify CFP store files (fsck) or run static analysis"
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="CFPA/CFPT files to verify (with --static: source roots, "
        "default src/repro, tools, benchmarks)",
    )
    check.add_argument(
        "--static",
        action="store_true",
        help="run the whole-program static analyzer "
        "(repro.analysis.staticcheck) instead of the store fsck",
    )
    check.add_argument(
        "--shallow",
        action="store_true",
        help="headers, geometry and checksums only (skip payload decoding)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON report on stdout",
    )
    check.set_defaults(func=_cmd_check)

    compact = sub.add_parser(
        "compact",
        help="repack fragmented partitioned (v3) CFP-array stores",
    )
    compact.add_argument("paths", nargs="+", help="partitioned .cfpa stores")
    compact.add_argument(
        "--partition-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="target partition payload size (default 64 pages)",
    )
    compact.add_argument(
        "--placement",
        choices=("append", "round-robin"),
        default="append",
        help="write-placement policy for the rewritten payloads",
    )
    compact.add_argument(
        "--generation",
        type=int,
        default=0,
        help="placement generation (rotates round-robin start; default 0)",
    )
    compact.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="only rewrite above this slack fraction (default 0 = always)",
    )
    compact.add_argument(
        "--dry-run",
        action="store_true",
        help="report fragmentation without rewriting",
    )
    compact.set_defaults(func=_cmd_compact)

    stream = sub.add_parser(
        "stream",
        help="incrementally mine a dataset as a batch stream "
        "(docs/streaming.md)",
    )
    stream.add_argument("file", help="FIMI text file (or .bin binary)")
    stream.add_argument("--min-support", type=int, default=2)
    stream.add_argument(
        "--batch-size",
        type=int,
        default=1000,
        help="transactions per batch (default 1000)",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help="sliding window in batches; 0 keeps every batch (default)",
    )
    stream.add_argument(
        "--snapshot-dir",
        default="",
        metavar="DIR",
        help="publish serving snapshots to DIR (serve them with "
        "`repro serve DIR --follow`); default: mine the final window "
        "and print itemsets",
    )
    stream.add_argument(
        "--publish-every",
        type=int,
        default=1,
        metavar="K",
        help="publish a snapshot every K batches (default 1; the final "
        "batch always publishes)",
    )
    stream.add_argument(
        "--partition-bytes",
        type=int,
        default=0,
        metavar="BYTES",
        help="force the partitioned (v3) snapshot format with this "
        "partition payload size (default: chosen from --memory-budget)",
    )
    stream.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="serving budget snapshots are partitioned for "
        "(default: monolithic v2 snapshots)",
    )
    stream.add_argument("--limit", type=int, default=0, help="print at most N rows")
    stream.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a JSONL span trace + metrics to FILE",
    )
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="run the itemset query server over a built store (docs/serving.md)",
    )
    serve.add_argument(
        "file",
        help="a built .cfpa store, a FIMI/.bin dataset to build one from, "
        "or (with --follow) a snapshot directory",
    )
    serve.add_argument(
        "--follow",
        action="store_true",
        help="treat FILE as a `repro stream` snapshot directory and "
        "hot-swap to each new generation (docs/streaming.md)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="manifest poll cadence with --follow (default 1.0)",
    )
    serve.add_argument("--min-support", type=int, default=2)
    serve.add_argument(
        "--store",
        default="",
        metavar="PATH",
        help="where to write the built .cfpa (default: <dataset>.cfpa)",
    )
    serve.add_argument(
        "--build-only",
        action="store_true",
        help="build the store and exit without serving",
    )
    serve.add_argument(
        "--partition-bytes",
        type=int,
        default=0,
        metavar="BYTES",
        help="build the store in the partitioned (v3) format with this "
        "target partition payload size (default: monolithic v2)",
    )
    serve.add_argument(
        "--hot-bytes",
        type=int,
        default=0,
        metavar="BYTES",
        help="pin the most frequent ranks' subarrays in memory "
        "(partitioned stores only; default 0)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7171)
    serve.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="serving memory budget; sets the admission limit "
        "(default: resident bytes + 64 request slots)",
    )
    serve.add_argument(
        "--pool-pages",
        type=int,
        default=256,
        help="buffer-pool capacity in pages (default 256)",
    )
    serve.add_argument(
        "--cache-budget",
        type=int,
        default=1 << 20,
        metavar="BYTES",
        help="decoded-subarray cache budget (default 1 MiB)",
    )
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a JSONL span trace + metrics to FILE on shutdown",
    )
    serve.set_defaults(func=_cmd_serve)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="write a JSONL span trace + metrics to FILE",
    )
    experiment.set_defaults(func=_cmd_experiment)

    # `bench` is listed for discoverability but dispatched early in main():
    # repro.bench.main owns its full argparse surface (shared with
    # benchmarks/regression.py), and argparse.REMAINDER cannot forward
    # leading options through a subparser.
    bench = sub.add_parser(
        "bench",
        help="wall-clock perf benchmark with regression gate",
        add_help=False,
    )
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro import bench

        return bench.main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
