"""Variable byte encoding (varint128, paper §2.3).

An unsigned integer is split into 7-bit blocks stored in successive bytes.
The *low* 7 bits of each byte carry the block; the high bit is a continuation
flag (1 = another block follows, 0 = last byte). Blocks are stored least
significant first, matching the classic varint128 layout.

Example from the paper: ``0x00000090`` (144) encodes to two bytes
``10010000 00000001`` — first byte carries the low 7 bits (``0010000``) with
the continuation bit set, second byte carries the remaining bit.

Compared to leading zero-byte suppression this codec needs no separate
compression mask and is one byte for all values below 128, but the encoded
length cannot be looked up without scanning the continuation bits.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Sequence, Union

from repro.errors import CorruptBufferError, ValueOutOfRangeError

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - numpy-less environments
    _numpy = None

#: Optional vectorized backend for the columnar decode kernel. ``None``
#: keeps every kernel on the stdlib ``array('q')`` path — numpy is an
#: auto-detected accelerator, never a dependency. ``REPRO_NO_NUMPY``
#: (any non-empty value) disables the detection for A/B runs and tests.
_np: Any = None if os.environ.get("REPRO_NO_NUMPY") else _numpy

#: Read-only byte sources the decoders accept.
Buffer = Union[bytes, bytearray, memoryview]

#: One decoded subarray as four parallel integer columns
#: ``(locals, delta_items, dposes, counts)``. Normally ``array('q')``;
#: plain lists only when a value overflows the signed-64 storage.
TripleColumns = tuple[
    Sequence[int], Sequence[int], Sequence[int], Sequence[int]
]

#: Largest value the codecs accept. The paper's fields are 32-bit; we allow
#: the full 64-bit range so positions in large CFP-arrays always fit.
MAX_VALUE = (1 << 64) - 1

#: Longest possible encoding we accept when decoding (64 bits / 7 per byte).
MAX_ENCODED_LENGTH = 10


def encoded_size(value: int) -> int:
    """Return the number of bytes ``value`` occupies when varint-encoded.

    >>> encoded_size(0), encoded_size(127), encoded_size(128)
    (1, 1, 2)
    """
    _check_value(value)
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode(value: int) -> bytes:
    """Encode ``value`` and return the bytes.

    >>> encode(0x90).hex()
    '9001'
    """
    _check_value(value)
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def encode_into(buf: bytearray, offset: int, value: int) -> int:
    """Encode ``value`` into ``buf`` starting at ``offset``.

    The buffer must already be large enough. Returns the offset just past the
    encoded value.
    """
    _check_value(value)
    while value >= 0x80:
        buf[offset] = (value & 0x7F) | 0x80
        value >>= 7
        offset += 1
    buf[offset] = value
    return offset + 1


def decode_from(buf: Buffer, offset: int = 0) -> tuple[int, int]:
    """Decode one varint from ``buf`` at ``offset``.

    Returns ``(value, new_offset)`` where ``new_offset`` points just past the
    encoded value. Raises :class:`CorruptBufferError` if the buffer ends
    mid-value or the encoding exceeds :data:`MAX_ENCODED_LENGTH` bytes.
    """
    value = 0
    shift = 0
    end = len(buf)
    start = offset
    while True:
        if offset >= end:
            raise CorruptBufferError(
                f"varint truncated at offset {offset} (started at {start})"
            )
        if offset - start >= MAX_ENCODED_LENGTH:
            raise CorruptBufferError(
                f"varint longer than {MAX_ENCODED_LENGTH} bytes at offset {start}"
            )
        byte = buf[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def skip(buf: Buffer, offset: int = 0) -> int:
    """Return the offset just past the varint starting at ``offset``.

    Equivalent to ``decode_from(buf, offset)[1]`` but does not build the
    value; used on hot traversal paths where a field is not needed.
    """
    end = len(buf)
    start = offset
    while True:
        if offset >= end:
            raise CorruptBufferError(
                f"varint truncated at offset {offset} (started at {start})"
            )
        if offset - start >= MAX_ENCODED_LENGTH:
            raise CorruptBufferError(
                f"varint longer than {MAX_ENCODED_LENGTH} bytes at offset {start}"
            )
        byte = buf[offset]
        offset += 1
        if not byte & 0x80:
            return offset


def decode_triples(
    buf: Buffer, start: int, end: int, *, canonical: bool = False
) -> list[tuple[int, int, int, int]]:
    """Bulk-decode one CFP-array subarray of ``(delta_item, dpos, count)``.

    Decodes every varint triple in ``buf[start:end]`` in one tight loop and
    returns ``(local, delta_item, dpos, count)`` tuples, where ``local`` is
    the triple's byte offset relative to ``start`` and ``dpos`` is already
    zigzag-decoded. This is the mine-phase hot kernel: compared to three
    :func:`decode_from` calls per node it avoids per-field call overhead,
    bound re-checks and tuple churn, using localized lookups over a
    :class:`memoryview`.

    A varint must not run past ``end`` (subarray boundaries are hard, unlike
    :func:`decode_from` which only knows the buffer end). With
    ``canonical=True`` an over-long encoding (wasted continuation bytes)
    also raises, which lets verifiers fall back to a diagnosing slow path.

    Raises :class:`CorruptBufferError` on truncation, over-length, or (in
    canonical mode) non-minimal encodings.
    """
    if not 0 <= start <= end <= len(buf):
        raise CorruptBufferError(
            f"subarray bounds [{start}, {end}) outside buffer of {len(buf)} bytes"
        )
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    triples: list[tuple[int, int, int, int]] = []
    append = triples.append
    pos = start
    fields = [0, 0, 0]
    while pos < end:
        local = pos - start
        for index in range(3):
            field_start = pos
            if pos >= end:
                raise CorruptBufferError(
                    f"varint truncated at offset {pos} (triple at {start + local})"
                )
            byte = view[pos]
            pos += 1
            if byte < 0x80:
                fields[index] = byte
                continue
            value = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise CorruptBufferError(
                        f"varint truncated at offset {pos} (started at {field_start})"
                    )
                if pos - field_start >= MAX_ENCODED_LENGTH:
                    raise CorruptBufferError(
                        f"varint longer than {MAX_ENCODED_LENGTH} bytes "
                        f"at offset {field_start}"
                    )
                byte = view[pos]
                pos += 1
                value |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
            if canonical and byte == 0:
                raise CorruptBufferError(
                    f"non-canonical varint at offset {field_start}: "
                    f"{pos - field_start} bytes encode {value}"
                )
            fields[index] = value
        dpos_raw = fields[1]
        if dpos_raw & 1:
            dpos = -((dpos_raw + 1) >> 1)
        else:
            dpos = dpos_raw >> 1
        append((local, fields[0], dpos, fields[2]))
    return triples


#: Maps a byte to 1 when it terminates a varint (continuation bit clear).
_TERMINATOR_TABLE = bytes(1 if byte < 0x80 else 0 for byte in range(256))

#: Below this many subarray bytes the vectorized decode loses to the scalar
#: loop — numpy's fixed per-call overhead (buffer wrap, mask, reduceat
#: set-up) dwarfs the work on the tiny subarrays conditional CFP-arrays are
#: made of. Both backends return identical columns, so the cutover is a
#: pure latency knob, invisible to callers.
_NP_MIN_BYTES = 256


def count_triples(buf: Buffer, start: int, end: int) -> int:
    """Count the triples in ``buf[start:end]`` without materializing them.

    Every varint has exactly one terminator byte (continuation bit clear),
    so the triple count is the terminator count divided by three — one
    C-speed table scan instead of a full decode. Used by
    :attr:`repro.core.CfpArray.node_count`'s lazy fallback, which must not
    charge the decoded-subarray cache.

    Raises :class:`CorruptBufferError` when the range ends mid-varint or
    the terminator count is not a multiple of three.
    """
    if not 0 <= start <= end <= len(buf):
        raise CorruptBufferError(
            f"subarray bounds [{start}, {end}) outside buffer of {len(buf)} bytes"
        )
    view = memoryview(buf)[start:end]
    data = view.tobytes()
    if not data:
        return 0
    if data[-1] >= 0x80:
        raise CorruptBufferError(
            f"varint truncated at offset {end} (started inside [{start}, {end}))"
        )
    terminators = data.translate(_TERMINATOR_TABLE).count(1)
    if terminators % 3:
        raise CorruptBufferError(
            f"subarray [{start}, {end}) holds {terminators} varints, "
            "not a whole number of triples"
        )
    return terminators // 3


def decode_triples_columns(buf: Buffer, start: int, end: int) -> TripleColumns:
    """Bulk-decode one subarray into four parallel integer columns.

    The columnar twin of :func:`decode_triples`: instead of one Python
    tuple per node it returns ``(locals, delta_items, dposes, counts)``
    columns (``array('q')``), which downstream kernels index, sum and
    slice at C speed. ``dposes`` is already zigzag-decoded.

    When numpy is importable (and ``REPRO_NO_NUMPY`` is unset) the whole
    subarray is decoded vectorized — terminator mask, segment ids,
    shift-and-reduce — and falls back to the scalar loop on any anomaly
    (truncation, non-triple counts, varints past 8 bytes) so corrupt
    buffers always raise the scalar path's exact
    :class:`CorruptBufferError`. Both backends produce identical columns.
    """
    if not 0 <= start <= end <= len(buf):
        raise CorruptBufferError(
            f"subarray bounds [{start}, {end}) outside buffer of {len(buf)} bytes"
        )
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    if start == end:
        return array("q"), array("q"), array("q"), array("q")
    if _np is not None and end - start >= _NP_MIN_BYTES:
        columns = _decode_triples_columns_np(view, start, end)
        if columns is not None:
            return columns
    return _decode_triples_columns_scalar(view, start, end)


def _decode_triples_columns_scalar(
    view: memoryview, start: int, end: int
) -> TripleColumns:
    """Stdlib columnar decode: the :func:`decode_triples` loop, by column."""
    locals_col: list[int] = []
    delta_col: list[int] = []
    dpos_col: list[int] = []
    count_col: list[int] = []
    columns = (locals_col, delta_col, dpos_col, count_col)
    fields = [0, 0, 0]
    pos = start
    while pos < end:
        local = pos - start
        for index in range(3):
            field_start = pos
            if pos >= end:
                raise CorruptBufferError(
                    f"varint truncated at offset {pos} (triple at {start + local})"
                )
            byte = view[pos]
            pos += 1
            if byte < 0x80:
                fields[index] = byte
                continue
            value = byte & 0x7F
            shift = 7
            while True:
                if pos >= end:
                    raise CorruptBufferError(
                        f"varint truncated at offset {pos} (started at {field_start})"
                    )
                if pos - field_start >= MAX_ENCODED_LENGTH:
                    raise CorruptBufferError(
                        f"varint longer than {MAX_ENCODED_LENGTH} bytes "
                        f"at offset {field_start}"
                    )
                byte = view[pos]
                pos += 1
                value |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
            fields[index] = value
        dpos_raw = fields[1]
        if dpos_raw & 1:
            dpos = -((dpos_raw + 1) >> 1)
        else:
            dpos = dpos_raw >> 1
        locals_col.append(local)
        delta_col.append(fields[0])
        dpos_col.append(dpos)
        count_col.append(fields[2])
    try:
        return tuple(array("q", column) for column in columns)  # type: ignore[return-value]
    except OverflowError:
        # A value >= 2**63 cannot live in a signed-64 column; plain lists
        # satisfy the same Sequence contract (rare: hand-built buffers).
        return columns


def _decode_triples_columns_np(
    view: memoryview, start: int, end: int
) -> TripleColumns | None:
    """Vectorized columnar decode; ``None`` defers to the scalar loop.

    Layout: a terminator mask segments the byte range into varints; each
    byte contributes its low 7 bits shifted by ``7 * position-in-segment``
    and ``np.add.reduceat`` sums the segments. Any anomaly — truncated
    tail, varint count not a multiple of three, encodings past 8 bytes
    (whose shifts could leave int64) — returns ``None`` so the scalar
    path reports it with its precise error (or decodes the legal
    wide values the int64 columns cannot hold).
    """
    raw = _np.frombuffer(view[start:end], dtype=_np.uint8)
    term = raw < 0x80
    ends = _np.flatnonzero(term)
    n_values = int(ends.size)
    if n_values == 0 or n_values % 3 or int(ends[-1]) != raw.size - 1:
        return None
    value_starts = _np.empty(n_values, dtype=_np.int64)
    value_starts[0] = 0
    value_starts[1:] = ends[:-1] + 1
    lengths = ends - value_starts + 1
    if int(lengths.max()) > 8:
        return None
    offsets = _np.arange(raw.size, dtype=_np.int64)
    shifts = 7 * (offsets - _np.repeat(value_starts, lengths))
    payload = (raw & 0x7F).astype(_np.int64) << shifts
    values = _np.add.reduceat(payload, value_starts)
    dpos_raw = values[1::3]
    dposes = _np.where(dpos_raw & 1, -((dpos_raw + 1) >> 1), dpos_raw >> 1)
    locals_np = value_starts[0::3]
    out: list[Sequence[int]] = []
    for column in (locals_np, values[0::3], dposes, values[2::3]):
        typed = array("q")
        typed.frombytes(_np.ascontiguousarray(column, dtype=_np.int64).tobytes())
        out.append(typed)
    return out[0], out[1], out[2], out[3]


def triple_size(delta_item: int, dpos: int, count: int) -> int:
    """Return the encoded byte size of one ``(delta_item, dpos, count)`` triple.

    ``dpos`` is signed; zigzag mapping is applied inline. One call replaces
    three :func:`encoded_size` calls on the conversion sizing path.

    >>> triple_size(1, 0, 1), triple_size(200, -100, 1)
    (3, 5)
    """
    if delta_item < 0 or delta_item > MAX_VALUE:
        raise ValueOutOfRangeError(f"varint value out of range: {delta_item}")
    if count < 0 or count > MAX_VALUE:
        raise ValueOutOfRangeError(f"varint value out of range: {count}")
    if dpos >= 0:
        zz = dpos << 1
    else:
        zz = ((-dpos) << 1) - 1
    if zz > MAX_VALUE:
        raise ValueOutOfRangeError(f"varint value out of range: {dpos}")
    size = 3
    while delta_item >= 0x80:
        delta_item >>= 7
        size += 1
    while zz >= 0x80:
        zz >>= 7
        size += 1
    while count >= 0x80:
        count >>= 7
        size += 1
    return size


def encode_triples(
    buf: bytearray, offset: int, triples: Sequence[tuple[int, int, int]]
) -> int:
    """Bulk-encode CFP-array ``(delta_item, dpos, count)`` triples into ``buf``.

    The encode-side mirror of :func:`decode_triples`: writes every triple
    back-to-back starting at ``offset`` in one tight loop — no per-field
    function calls — with the signed ``dpos`` zigzag-mapped inline. ``buf``
    must already be large enough (conversion presizes each subarray from the
    sizing pass). Returns the offset just past the last byte written.

    The produced bytes are identical to three sequential :func:`encode_into`
    calls per triple (with :func:`zigzag` applied to ``dpos``), so existing
    buffers and checksums are unaffected.

    Raises :class:`ValueOutOfRangeError` when a field falls outside the
    codec's 64-bit range (``delta_item``/``count`` must be non-negative).
    """
    for delta_item, dpos, count in triples:
        if dpos >= 0:
            zz = dpos << 1
        else:
            zz = ((-dpos) << 1) - 1
        if (
            delta_item < 0
            or delta_item > MAX_VALUE
            or zz > MAX_VALUE
            or count < 0
            or count > MAX_VALUE
        ):
            raise ValueOutOfRangeError(
                f"varint triple out of range: ({delta_item}, {dpos}, {count})"
            )
        while delta_item >= 0x80:
            buf[offset] = (delta_item & 0x7F) | 0x80
            delta_item >>= 7
            offset += 1
        buf[offset] = delta_item
        offset += 1
        while zz >= 0x80:
            buf[offset] = (zz & 0x7F) | 0x80
            zz >>= 7
            offset += 1
        buf[offset] = zz
        offset += 1
        while count >= 0x80:
            buf[offset] = (count & 0x7F) | 0x80
            count >>= 7
            offset += 1
        buf[offset] = count
        offset += 1
    return offset


def zigzag(value: int) -> int:
    """Map a signed integer to unsigned for varint encoding.

    0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... Used for the CFP-array's ``dpos``
    field, which can be negative (a child's local position may precede its
    parent's when their subarrays fill at different rates).
    """
    if value >= 0:
        return value << 1
    return ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    if value & 1:
        return -((value + 1) >> 1)
    return value >> 1


def _check_value(value: int) -> None:
    if not isinstance(value, int):
        raise ValueOutOfRangeError(f"varint requires an int, got {type(value).__name__}")
    if value < 0 or value > MAX_VALUE:
        raise ValueOutOfRangeError(f"varint value out of range: {value}")
