"""Per-node compression-mask byte of the ternary CFP-tree (paper §3.3).

Every standard node starts with one mask byte that describes how the rest of
the node is laid out:

* bits 7-6 — 2-bit zero-suppression mask for ``delta_item`` (0-3 suppressed
  leading zero bytes; the least significant byte is always stored),
* bits 5-3 — 3-bit zero-suppression mask for ``pcount`` (0-4 suppressed
  bytes; the value 0 stores no payload),
* bits 2-0 — presence bits for the ``left``, ``right`` and ``suffix``
  pointers (1 = a 40-bit pointer follows, 0 = null pointer, nothing stored).

This is the paper's Figure 4 layout: e.g. ``delta_item = 3`` (mask ``11``),
``pcount = 0`` (mask ``100``), only the suffix pointer present (``001``)
packs to ``0b11100001``.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import CodecError

#: Bit position of the 2-bit ``delta_item`` zero-suppression mask.
ITEM_MASK_SHIFT = 6

#: Field mask selecting the 2-bit ``delta_item`` mask after shifting.
ITEM_MASK_FIELD = 0x3

#: Bit position of the 3-bit ``pcount`` zero-suppression mask.
PCOUNT_MASK_SHIFT = 3

#: Field mask selecting the 3-bit ``pcount`` mask after shifting.
PCOUNT_MASK_FIELD = 0x7

#: Largest legal ``pcount`` mask value (0-4 suppressed bytes).
PCOUNT_MASK_MAX = 4

#: Presence bit for the ``left`` sibling pointer.
LEFT_PRESENT_BIT = 0x4

#: Presence bit for the ``right`` sibling pointer.
RIGHT_PRESENT_BIT = 0x2

#: Presence bit for the ``suffix`` (first-child) pointer.
SUFFIX_PRESENT_BIT = 0x1


class NodeMask(NamedTuple):
    """Decoded contents of a compression-mask byte."""

    item_mask: int
    """2-bit zero-suppression mask for ``delta_item`` (0-3)."""

    pcount_mask: int
    """3-bit zero-suppression mask for ``pcount`` (0-4)."""

    left_present: bool
    """Whether a left-sibling pointer is stored."""

    right_present: bool
    """Whether a right-sibling pointer is stored."""

    suffix_present: bool
    """Whether a suffix (first-child) pointer is stored."""


def pack_node_mask(
    item_mask: int,
    pcount_mask: int,
    left_present: bool,
    right_present: bool,
    suffix_present: bool,
) -> int:
    """Pack the five mask components into one byte."""
    if not 0 <= item_mask <= ITEM_MASK_FIELD:
        raise CodecError(f"item mask out of range: {item_mask}")
    if not 0 <= pcount_mask <= PCOUNT_MASK_MAX:
        raise CodecError(f"pcount mask out of range: {pcount_mask}")
    mask = (item_mask << ITEM_MASK_SHIFT) | (pcount_mask << PCOUNT_MASK_SHIFT)
    if left_present:
        mask |= LEFT_PRESENT_BIT
    if right_present:
        mask |= RIGHT_PRESENT_BIT
    if suffix_present:
        mask |= SUFFIX_PRESENT_BIT
    return mask


def unpack_node_mask(byte: int) -> NodeMask:
    """Unpack a compression-mask byte into its components."""
    if not 0 <= byte <= 0xFF:
        raise CodecError(f"mask byte out of range: {byte}")
    pcount_mask = (byte >> PCOUNT_MASK_SHIFT) & PCOUNT_MASK_FIELD
    if pcount_mask > PCOUNT_MASK_MAX:
        raise CodecError(f"corrupt mask byte {byte:#04x}: pcount mask {pcount_mask} > 4")
    return NodeMask(
        item_mask=(byte >> ITEM_MASK_SHIFT) & ITEM_MASK_FIELD,
        pcount_mask=pcount_mask,
        left_present=bool(byte & LEFT_PRESENT_BIT),
        right_present=bool(byte & RIGHT_PRESENT_BIT),
        suffix_present=bool(byte & SUFFIX_PRESENT_BIT),
    )
