"""Per-node compression-mask byte of the ternary CFP-tree (paper §3.3).

Every standard node starts with one mask byte that describes how the rest of
the node is laid out:

* bits 7-6 — 2-bit zero-suppression mask for ``delta_item`` (0-3 suppressed
  leading zero bytes; the least significant byte is always stored),
* bits 5-3 — 3-bit zero-suppression mask for ``pcount`` (0-4 suppressed
  bytes; the value 0 stores no payload),
* bits 2-0 — presence bits for the ``left``, ``right`` and ``suffix``
  pointers (1 = a 40-bit pointer follows, 0 = null pointer, nothing stored).

This is the paper's Figure 4 layout: e.g. ``delta_item = 3`` (mask ``11``),
``pcount = 0`` (mask ``100``), only the suffix pointer present (``001``)
packs to ``0b11100001``.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import CodecError


class NodeMask(NamedTuple):
    """Decoded contents of a compression-mask byte."""

    item_mask: int
    """2-bit zero-suppression mask for ``delta_item`` (0-3)."""

    pcount_mask: int
    """3-bit zero-suppression mask for ``pcount`` (0-4)."""

    left_present: bool
    """Whether a left-sibling pointer is stored."""

    right_present: bool
    """Whether a right-sibling pointer is stored."""

    suffix_present: bool
    """Whether a suffix (first-child) pointer is stored."""


def pack_node_mask(
    item_mask: int,
    pcount_mask: int,
    left_present: bool,
    right_present: bool,
    suffix_present: bool,
) -> int:
    """Pack the five mask components into one byte."""
    if not 0 <= item_mask <= 3:
        raise CodecError(f"item mask out of range: {item_mask}")
    if not 0 <= pcount_mask <= 4:
        raise CodecError(f"pcount mask out of range: {pcount_mask}")
    return (
        (item_mask << 6)
        | (pcount_mask << 3)
        | (bool(left_present) << 2)
        | (bool(right_present) << 1)
        | bool(suffix_present)
    )


def unpack_node_mask(byte: int) -> NodeMask:
    """Unpack a compression-mask byte into its components."""
    if not 0 <= byte <= 0xFF:
        raise CodecError(f"mask byte out of range: {byte}")
    pcount_mask = (byte >> 3) & 0x7
    if pcount_mask > 4:
        raise CodecError(f"corrupt mask byte {byte:#04x}: pcount mask {pcount_mask} > 4")
    return NodeMask(
        item_mask=(byte >> 6) & 0x3,
        pcount_mask=pcount_mask,
        left_present=bool(byte & 0x4),
        right_present=bool(byte & 0x2),
        suffix_present=bool(byte & 0x1),
    )
