"""Lightweight byte-level compression codecs (paper §2.3).

The CFP structures rely on three static, byte-aligned encodings chosen for
their very low (de)compression cost:

* :mod:`repro.compress.varint` — variable byte encoding (varint128): an
  integer is split into 7-bit blocks, each stored in one byte whose high bit
  signals continuation. Used for every field of the CFP-array.
* :mod:`repro.compress.zero_suppression` — leading zero-byte suppression for
  32-bit integers, with a 3-bit mask variant (0-4 bytes suppressed) and a
  2-bit mask variant (0-3 bytes suppressed, least significant byte always
  stored). Used for the ``pcount`` and ``delta_item`` fields of the ternary
  CFP-tree, respectively.
* :mod:`repro.compress.masks` — packing of the per-node compression mask
  byte (2 bits for ``delta_item``, 3 bits for ``pcount``, 3 presence bits for
  the ``left``/``right``/``suffix`` pointers).

All codecs operate on plain ``bytearray``/``bytes`` buffers so that encoded
sizes are exact physical byte counts.
"""

from repro.compress.masks import (
    ITEM_MASK_FIELD,
    ITEM_MASK_SHIFT,
    LEFT_PRESENT_BIT,
    PCOUNT_MASK_FIELD,
    PCOUNT_MASK_MAX,
    PCOUNT_MASK_SHIFT,
    RIGHT_PRESENT_BIT,
    SUFFIX_PRESENT_BIT,
    NodeMask,
    pack_node_mask,
    unpack_node_mask,
)
from repro.compress.varint import (
    decode_from,
    decode_triples,
    encode,
    encode_into,
    encoded_size,
    skip,
)
from repro.compress.zero_suppression import (
    decode_2bit,
    decode_3bit,
    encode_2bit,
    encode_3bit,
    leading_zero_bytes,
    payload_size_2bit,
    payload_size_3bit,
)

__all__ = [
    "NodeMask",
    "pack_node_mask",
    "unpack_node_mask",
    "ITEM_MASK_SHIFT",
    "ITEM_MASK_FIELD",
    "PCOUNT_MASK_SHIFT",
    "PCOUNT_MASK_FIELD",
    "PCOUNT_MASK_MAX",
    "LEFT_PRESENT_BIT",
    "RIGHT_PRESENT_BIT",
    "SUFFIX_PRESENT_BIT",
    "encode",
    "encode_into",
    "encoded_size",
    "decode_from",
    "decode_triples",
    "skip",
    "leading_zero_bytes",
    "encode_3bit",
    "decode_3bit",
    "encode_2bit",
    "decode_2bit",
    "payload_size_3bit",
    "payload_size_2bit",
]
