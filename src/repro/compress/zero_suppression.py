"""Leading zero-byte suppression for 32-bit integers (paper §2.3).

Westmann-style "small integer" compression: the leading zero bytes of a
32-bit value are dropped and their number is recorded in a small mask stored
elsewhere (in the CFP-tree, inside the per-node compression-mask byte).

Two variants are implemented, matching the paper:

* **3-bit mask** — the mask encodes 0-4 suppressed bytes, so the value 0
  stores *no* payload bytes at all. Used for ``pcount``, which is zero for
  the vast majority of CFP-tree nodes (Table 2).
* **2-bit mask** — the mask encodes 0-3 suppressed bytes and the least
  significant byte is always stored, even when zero. Preferable when zero
  values are rare; used for ``delta_item``, which is arguably never 0.

Payloads are stored most-significant byte first (big-endian), i.e. exactly
the non-zero tail of the 4-byte big-endian representation.
"""

from __future__ import annotations

from repro.compress.varint import Buffer
from repro.errors import CorruptBufferError, ValueOutOfRangeError

#: Largest encodable value (32-bit unsigned).
MAX_VALUE = 0xFFFFFFFF

#: Width in bytes of the uncompressed integers.
WIDTH = 4


def leading_zero_bytes(value: int) -> int:
    """Number of leading zero bytes in the 4-byte representation of ``value``.

    >>> leading_zero_bytes(0), leading_zero_bytes(0x90), leading_zero_bytes(0x123456)
    (4, 3, 1)
    """
    _check_value(value)
    if value == 0:
        return WIDTH
    zeros = 0
    probe = 0xFF000000
    while not value & probe:
        zeros += 1
        probe >>= 8
    return zeros


def payload_size_3bit(value: int) -> int:
    """Stored payload bytes for the 3-bit variant: 0 for value 0, else 1-4."""
    return WIDTH - leading_zero_bytes(value)


def payload_size_2bit(value: int) -> int:
    """Stored payload bytes for the 2-bit variant: always at least 1."""
    return max(1, WIDTH - leading_zero_bytes(value))


def encode_3bit(value: int) -> tuple[int, bytes]:
    """Encode with the 3-bit mask variant.

    Returns ``(mask, payload)`` where ``mask`` (0-4) is the number of
    suppressed leading zero bytes and ``payload`` holds the remaining bytes.

    >>> encode_3bit(0x90)
    (3, b'\\x90')
    >>> encode_3bit(0)
    (4, b'')
    """
    zeros = leading_zero_bytes(value)
    return zeros, value.to_bytes(WIDTH, "big")[zeros:]


def decode_3bit(mask: int, buf: Buffer, offset: int = 0) -> tuple[int, int]:
    """Decode a 3-bit-mask value whose mask is ``mask``.

    Returns ``(value, new_offset)``.
    """
    if not 0 <= mask <= WIDTH:
        raise CorruptBufferError(f"3-bit zero-suppression mask out of range: {mask}")
    size = WIDTH - mask
    return _read_payload(buf, offset, size)


def encode_2bit(value: int) -> tuple[int, bytes]:
    """Encode with the 2-bit mask variant (LSB always stored).

    Returns ``(mask, payload)`` with ``mask`` in 0-3.

    >>> encode_2bit(0)
    (3, b'\\x00')
    >>> encode_2bit(0x90)
    (3, b'\\x90')
    """
    zeros = min(leading_zero_bytes(value), WIDTH - 1)
    return zeros, value.to_bytes(WIDTH, "big")[zeros:]


def decode_2bit(mask: int, buf: Buffer, offset: int = 0) -> tuple[int, int]:
    """Decode a 2-bit-mask value whose mask is ``mask``.

    Returns ``(value, new_offset)``.
    """
    if not 0 <= mask <= WIDTH - 1:
        raise CorruptBufferError(f"2-bit zero-suppression mask out of range: {mask}")
    size = WIDTH - mask
    return _read_payload(buf, offset, size)


def _read_payload(buf: Buffer, offset: int, size: int) -> tuple[int, int]:
    end = offset + size
    if end > len(buf):
        raise CorruptBufferError(
            f"zero-suppressed payload truncated: need {size} bytes at offset {offset}"
        )
    value = 0
    for i in range(offset, end):
        value = (value << 8) | buf[i]
    return value, end


def _check_value(value: int) -> None:
    if not isinstance(value, int):
        raise ValueOutOfRangeError(
            f"zero suppression requires an int, got {type(value).__name__}"
        )
    if value < 0 or value > MAX_VALUE:
        raise ValueOutOfRangeError(f"zero-suppression value out of range: {value}")
