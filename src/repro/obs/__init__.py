"""Unified observability: span tracing plus a process-wide metric registry.

The paper's argument (§4, Figs. 6-8) rests on *measured* memory and time
behaviour; this package is the one place every layer reports into:

* :class:`Tracer` / :func:`maybe_span` — nested, timed spans with
  structured attributes, installed process-wide via :func:`set_tracer`.
  Disabled (the default), every instrumented site costs one ``is None``
  check. Worker processes export their spans through the parallel
  miner's event-replay channel and the parent ingests them
  deterministically.
* :data:`metrics` — a :class:`MetricsRegistry` of counters and gauges
  that components publish their private counters into at phase
  boundaries (buffer-pool hits/faults/evictions, subarray-cache
  hits/misses/evictions/rejections, page I/O).
* :mod:`repro.obs.report` (imported on demand; it pulls in
  :mod:`repro.machine`) — trace parsing, the ``repro stats`` summary
  table, and :func:`repro.obs.report.meter_from_trace`, which rebuilds a
  :class:`repro.machine.Meter` from the span stream.

See docs/observability.md for the span model and the trace file format.
"""

from repro.obs.registry import Histogram, MetricsRegistry, metrics
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanRecord,
    TRACE_VERSION,
    Tracer,
    get_tracer,
    maybe_span,
    set_tracer,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "Tracer",
    "Span",
    "SpanRecord",
    "TRACE_VERSION",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "maybe_span",
]
