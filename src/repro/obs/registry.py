"""Process-wide counter/gauge registry — the numeric half of ``repro.obs``.

Components keep their hot-path counters as plain attributes (``hits += 1``
on a cache object costs nothing extra) and *publish* them here in bulk at
phase boundaries: end of a mine, close of a disk array, merge of a worker.
The registry is therefore an aggregation point, not a hot path — reading
it mid-run gives whatever has been published so far.

One module-level instance, :data:`metrics`, is the process-wide registry
the instrumented call sites use; tests may construct private registries.
"""

from __future__ import annotations


class MetricsRegistry:
    """Named monotonic counters plus last-write-wins gauges."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # -- counters -------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never written)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """All counters (a copy)."""
        return dict(self._counters)

    # -- gauges ---------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest observation of gauge ``name``."""
        self._gauges[name] = value

    def get_gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        """All gauges (a copy)."""
        return dict(self._gauges)

    # -- lifecycle ------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Counters and gauges as one JSON-able mapping."""
        return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    def reset(self) -> None:
        """Drop every counter and gauge (tests and fresh CLI runs)."""
        self._counters.clear()
        self._gauges.clear()

    def ratio(self, numerator: str, *parts: str) -> float:
        """``numerator / sum(parts)`` over counters; 0.0 on an empty sum."""
        total = sum(self._counters.get(p, 0) for p in parts)
        if total == 0:
            return 0.0
        return self._counters.get(numerator, 0) / total


#: The process-wide registry instrumented components publish into.
metrics = MetricsRegistry()
