"""Process-wide counter/gauge/histogram registry — the numeric half of
``repro.obs``.

Components keep their hot-path counters as plain attributes (``hits += 1``
on a cache object costs nothing extra) and *publish* them here in bulk at
phase boundaries: end of a mine, close of a disk array, merge of a worker.
The registry is therefore an aggregation point, not a hot path — reading
it mid-run gives whatever has been published so far.

Histograms are the exception to the phase-boundary rule: the query server
observes one latency sample per finished request (:meth:`observe`), which
is orders of magnitude rarer than the mine loop's per-node work — and a
latency distribution cannot be reconstructed from a phase-boundary sum.
Buckets are powers of two, so a histogram is a few dozen ints regardless
of traffic; percentiles interpolate within the winning bucket.

One module-level instance, :data:`metrics`, is the process-wide registry
the instrumented call sites use; tests may construct private registries.
"""

from __future__ import annotations

import threading


class Histogram:
    """Log2-bucketed distribution of non-negative samples.

    Bucket ``i`` holds samples in ``[2**(i-1), 2**i)`` (bucket 0 holds
    ``[0, 1)``), which bounds any percentile's relative error by the
    bucket width; :meth:`percentile` interpolates linearly inside the
    winning bucket. Observation is thread-safe — the server's executor
    completions funnel through one event loop today, but a histogram that
    silently lost samples under a second loop would be the same bug class
    the buffer pool just fixed.
    """

    _MAX_BUCKET = 64

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._buckets = [0] * (self._MAX_BUCKET + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (negatives clamp to 0)."""
        value = max(0.0, float(value))
        bucket = 0
        edge = 1.0
        while value >= edge and bucket < self._MAX_BUCKET:
            bucket += 1
            edge *= 2.0
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._buckets[bucket] += 1

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        with self._lock:
            if not self.count:
                return 0.0
            target = q * self.count
            seen = 0.0
            for bucket, weight in enumerate(self._buckets):
                if not weight:
                    continue
                if seen + weight >= target:
                    low = 0.0 if bucket == 0 else float(2 ** (bucket - 1))
                    high = float(2**bucket)
                    fraction = (target - seen) / weight
                    value = low + (high - low) * fraction
                    # The true extremes are tracked exactly; never report
                    # an interpolated value outside the observed range.
                    return min(max(value, self.min), self.max)
                seen += weight
            return self.max

    def snapshot(self) -> dict[str, float]:
        """Summary statistics as one JSON-able mapping."""
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0}
            summary = {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
            }
        for name, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            summary[name] = self.percentile(q)
        return summary


class MetricsRegistry:
    """Named monotonic counters, last-write-wins gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters -------------------------------------------------------

    def add(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never written)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        """All counters (a copy)."""
        return dict(self._counters)

    # -- gauges ---------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest observation of gauge ``name``."""
        self._gauges[name] = value

    def get_gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        """All gauges (a copy)."""
        return dict(self._gauges)

    # -- histograms -----------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name`` (creating it empty)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms.setdefault(name, Histogram())
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        """The named histogram, or ``None`` if nothing was observed."""
        return self._histograms.get(name)

    def percentile(self, name: str, q: float) -> float:
        """``q``-quantile of histogram ``name`` (0.0 if never observed)."""
        histogram = self._histograms.get(name)
        return histogram.percentile(q) if histogram is not None else 0.0

    def histograms(self) -> dict[str, dict[str, float]]:
        """Summary snapshot of every histogram."""
        return {
            name: histogram.snapshot()
            for name, histogram in self._histograms.items()
        }

    # -- lifecycle ------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float] | dict[str, dict[str, float]]]:
        """Counters, gauges and histograms as one JSON-able mapping."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": self.histograms(),
        }

    def reset(self) -> None:
        """Drop every counter, gauge and histogram (tests, fresh CLI runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def ratio(self, numerator: str, *parts: str) -> float:
        """``numerator / sum(parts)`` over counters; 0.0 on an empty sum."""
        total = sum(self._counters.get(p, 0) for p in parts)
        if total == 0:
            return 0.0
        return self._counters.get(numerator, 0) / total


#: The process-wide registry instrumented components publish into.
metrics = MetricsRegistry()
