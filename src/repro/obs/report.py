"""Trace-file consumers: parsing, per-phase summaries, Meter rebuilding.

``repro stats <trace.jsonl>`` renders :func:`format_trace_summary`;
:func:`meter_from_trace` folds the span stream back into a
:class:`repro.machine.Meter`, which is what makes the Meter a *consumer*
of the trace rather than a parallel bookkeeping system — the simulated
machine can price a run straight from its trace file, and the two views
cannot drift apart because they share one source of numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.machine.meter import Meter


class TraceError(ReproError):
    """A trace file is missing, malformed, or schema-incompatible."""


@dataclass
class Trace:
    """Parsed trace file: meta line, span dicts, metric name -> value."""

    meta: dict[str, Any]
    spans: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)


def is_trace_file(path: str | os.PathLike[str]) -> bool:
    """Cheap sniff: does the file start with a JSONL trace meta line?"""
    try:
        with open(path, "r", encoding="ascii", errors="replace") as handle:
            first = handle.readline().strip()
    except OSError:
        return False
    if not first.startswith("{"):
        return False
    try:
        record = json.loads(first)
    except json.JSONDecodeError:
        return False
    return isinstance(record, dict) and record.get("type") == "meta"


def read_trace(path: str | os.PathLike[str]) -> Trace:
    """Parse a trace file, validating the line-level schema as it goes."""
    meta: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = []
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    with open(path, "r", encoding="ascii", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_no}: not JSON: {exc}") from None
            kind = record.get("type")
            if kind == "meta":
                if meta is not None:
                    raise TraceError(f"{path}:{line_no}: duplicate meta line")
                meta = record
            elif kind == "span":
                spans.append(record)
            elif kind == "metric":
                if record.get("kind") == "gauge":
                    gauges[record["name"]] = float(record["value"])
                elif record.get("kind") == "histogram":
                    histograms[record["name"]] = dict(record["value"])
                else:
                    counters[record["name"]] = int(record["value"])
            else:
                raise TraceError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    if meta is None:
        raise TraceError(f"{path}: no meta line; not a trace file")
    return Trace(
        meta=meta,
        spans=spans,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


def meter_from_trace(spans: list[dict[str, Any]]) -> Meter:
    """Rebuild a Meter from the span stream.

    Every span that carries instrumentation deltas (``ops``,
    ``bytes_touched``, ``io_bytes`` attributes — written exclusively by
    the meter-bridge at the instrumented call sites) contributes them to
    a phase named after the span. The rebuilt meter's per-phase and total
    counters equal the live meter's by construction.
    """
    meter = Meter()
    for span in spans:
        attrs = span.get("attrs") or {}
        if not any(k in attrs for k in ("ops", "bytes_touched", "io_bytes")):
            continue
        name = _phase_of(span)
        target = next((p for p in meter.phases if p.name == name), None)
        if target is None:
            target = meter.begin_phase(name)
        ops = int(attrs.get("ops", 0))
        target.ops += ops
        target.bytes_touched += int(attrs.get("bytes_touched", 0))
        target.io_bytes += int(attrs.get("io_bytes", 0))
        meter._total_ops += ops
        meter._integral += float(attrs.get("integral", 0.0))
        peak = int(attrs.get("peak_bytes", 0))
        if peak > meter.peak_bytes:
            meter.peak_bytes = peak
        if peak > target.footprint_bytes:
            target.footprint_bytes = peak
    return meter


#: Span-name prefixes mapped onto canonical phase names for summaries.
_PHASE_OF_SPAN = {
    "mine_rank": "mine",
    "mine_parallel": "mine",
    "mine": "mine",
    "build": "build",
    "stream_batch": "build",
    "convert": "convert",
}


def _phase_of(span: dict[str, Any]) -> str:
    return _PHASE_OF_SPAN.get(span["name"], span["name"])


def summarize_spans(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Group spans by name: count, wall, ops, bytes touched.

    Parent spans that merely wrap children (``mine_parallel``) carry no
    delta attributes, so summing a group never double-counts work.
    """
    groups: dict[str, dict[str, Any]] = {}
    for span in spans:
        attrs = span.get("attrs") or {}
        group = groups.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "wall_s": 0.0, "ops": 0,
             "bytes_touched": 0, "workers": set()},
        )
        group["count"] += 1
        group["wall_s"] += float(span.get("dur", 0.0))
        group["ops"] += int(attrs.get("ops", 0))
        group["bytes_touched"] += int(attrs.get("bytes_touched", 0))
        if span.get("worker") is not None:
            group["workers"].add(span["worker"])
    ordered = sorted(groups.values(), key=lambda g: -g["wall_s"])
    for group in ordered:
        group["workers"] = len(group["workers"])
    return ordered


#: Cache-like counter families rendered as hit ratios: family ->
#: (hit counter, miss/fault counter).
_RATIO_FAMILIES = {
    "subarray_cache": ("subarray_cache.hits", "subarray_cache.misses"),
    "bufferpool": ("bufferpool.hits", "bufferpool.faults"),
}


def format_trace_summary(trace: Trace) -> str:
    """Fixed-width per-phase table plus the metric roll-up."""
    lines = [
        f"trace v{trace.meta.get('version')} — {len(trace.spans)} spans, "
        f"pid {trace.meta.get('pid')}",
        f"{'span':<16} {'count':>6} {'workers':>7} {'wall_s':>9} "
        f"{'ops':>12} {'MB_touched':>11}",
    ]
    for group in summarize_spans(trace.spans):
        lines.append(
            f"{group['name']:<16} {group['count']:>6} {group['workers']:>7} "
            f"{group['wall_s']:>9.4f} {group['ops']:>12} "
            f"{group['bytes_touched'] / 1e6:>11.3f}"
        )
    rebuilt = meter_from_trace(trace.spans)
    lines.append(
        f"meter totals: {rebuilt.total_ops} ops, "
        f"{sum(p.bytes_touched for p in rebuilt.phases)} bytes touched, "
        f"peak {rebuilt.peak_bytes} bytes"
    )
    for family, (hit_name, miss_name) in sorted(_RATIO_FAMILIES.items()):
        hits = trace.counters.get(hit_name, 0)
        misses = trace.counters.get(miss_name, 0)
        if hits or misses:
            ratio = hits / (hits + misses)
            extras = " ".join(
                f"{name.split('.', 1)[1]}={value}"
                for name, value in sorted(trace.counters.items())
                if name.startswith(family + ".")
                and name not in (hit_name, miss_name)
            )
            lines.append(
                f"{family}: {hits} hits / {misses} misses "
                f"({ratio:.1%} hit ratio){' ' + extras if extras else ''}"
            )
    remaining = sorted(
        name
        for name in trace.counters
        if not any(name.startswith(f + ".") for f in _RATIO_FAMILIES)
    )
    for name in remaining:
        lines.append(f"{name}: {trace.counters[name]}")
    for name, value in sorted(trace.gauges.items()):
        lines.append(f"{name}: {value:g}")
    for name, summary in sorted(trace.histograms.items()):
        lines.append(
            f"{name}: n={summary.get('count', 0):g} "
            f"p50={summary.get('p50', 0.0):.3g} "
            f"p99={summary.get('p99', 0.0):.3g} "
            f"max={summary.get('max', 0.0):.3g}"
        )
    return "\n".join(lines)
