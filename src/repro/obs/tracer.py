"""Span-based tracing: nested, timed spans with structured attributes.

A :class:`Tracer` collects :class:`SpanRecord` entries; one is installed
process-wide with :func:`set_tracer` and instrumented call sites fetch it
with :func:`get_tracer`. When no tracer is installed (the default) every
instrumented site reduces to one ``is None`` check, so the disabled-path
overhead is a pointer comparison.

Worker processes build their own tracers and ship ``export()``-ed records
back through the parallel miner's event-replay channel; the parent folds
them in with :meth:`Tracer.ingest`, re-parenting the foreign roots under
its current span in deterministic (rank) order.

Trace files are JSON Lines (see docs/observability.md): one ``meta``
line, one line per span, then one line per metric from the registry.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import MetricsRegistry

#: Trace file schema version, bumped on incompatible layout changes.
TRACE_VERSION = 1


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    """Start time, seconds since the owning tracer's origin."""
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    worker: int | None = None
    """Worker ordinal for ingested foreign spans; None for local spans."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": round(self.start_s, 6),
            "dur": round(self.duration_s, 6),
            "attrs": self.attrs,
            "worker": self.worker,
        }


class Span:
    """Handle for an open span: mutate ``attrs`` while the span runs."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start_s")

    def __init__(
        self, span_id: int, parent_id: int | None, name: str, attrs: dict[str, Any]
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def add(self, key: str, value: int = 1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + value


class _NullSpan:
    """No-op stand-in yielded by :func:`maybe_span` when tracing is off."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        return None

    def add(self, key: str, value: int = 1) -> None:
        return None


#: Shared no-op span (stateless, safe to reuse).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects closed spans; at most one is installed process-wide."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self.origin_unix = time.time()
        self._origin_perf = time.perf_counter()
        self._next_id = 1
        self._stack: list[Span] = []

    def _now(self) -> float:
        return time.perf_counter() - self._origin_perf

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; records on exit (exceptions included)."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        handle = Span(span_id, parent_id, name, dict(attrs))
        self._stack.append(handle)
        start = self._now()
        try:
            yield handle
        finally:
            duration = self._now() - start
            self._stack.pop()
            self.records.append(
                SpanRecord(span_id, parent_id, name, start, duration, handle.attrs)
            )

    def begin_span(self, name: str, attrs: dict[str, Any]) -> Span:
        """Open a span without the contextmanager wrapper (hot loops).

        :meth:`span`'s generator suspend/resume and ``**kwargs`` repack
        cost a few microseconds per use — noise for phase-level spans,
        but the dominant tracing cost in a loop that opens hundreds of
        spans around sub-millisecond work (the per-rank mine loop).
        ``attrs`` is taken by reference, not copied. The caller must
        close the span with :meth:`end_span`, in a ``finally`` block if
        the spanned work can raise.
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        handle = Span(span_id, parent_id, name, attrs)
        self._stack.append(handle)
        handle.start_s = time.perf_counter() - self._origin_perf
        return handle

    def end_span(self, handle: Span) -> None:
        """Close a span opened with :meth:`begin_span` and record it.

        Must be called exactly once per handle, in LIFO order — the same
        discipline the contextmanager version enforces structurally.
        """
        duration = time.perf_counter() - self._origin_perf - handle.start_s
        self._stack.pop()
        self.records.append(
            SpanRecord(
                handle.span_id,
                handle.parent_id,
                handle.name,
                handle.start_s,
                duration,
                handle.attrs,
            )
        )

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span (None outside any span)."""
        return self._stack[-1].span_id if self._stack else None

    def complete_span(
        self, name: str, started_perf: float, attrs: dict[str, Any] | None = None
    ) -> SpanRecord:
        """Record an already-finished span from its raw start time.

        ``started_perf`` is a ``time.perf_counter()`` reading taken when
        the work began. The span is recorded as a *root* (no parent) and
        never touches the LIFO stack, so overlapping callers — the query
        server's interleaved request handlers — cannot misnest the spans
        of whatever phase-level work is running around them. Must be
        called from the thread that owns the tracer (the server calls it
        from its event loop, never from executor threads).
        """
        span_id = self._next_id
        self._next_id += 1
        start_s = started_perf - self._origin_perf
        duration = time.perf_counter() - started_perf
        record = SpanRecord(
            span_id, None, name, start_s, duration, dict(attrs or {})
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------

    def export(self) -> list[dict[str, Any]]:
        """Closed spans as JSON-able dicts (the worker->parent wire form)."""
        return [record.to_dict() for record in self.records]

    def ingest(
        self,
        records: list[dict[str, Any]],
        parent_id: int | None = None,
        worker: int | None = None,
    ) -> None:
        """Fold exported foreign records into this tracer.

        Span ids are re-assigned from this tracer's sequence and foreign
        *root* spans are re-parented under ``parent_id``, so calling this
        in a fixed order (the parallel miner uses descending rank) yields
        a deterministic merged structure regardless of worker scheduling.
        Foreign ``t0`` values stay on the worker's clock; ``worker`` tags
        every ingested span so consumers can tell the clocks apart.
        """
        id_map: dict[int, int] = {}
        for record in records:
            id_map[record["id"]] = self._next_id
            self._next_id += 1
        for record in records:
            foreign_parent = record.get("parent")
            new_parent = (
                id_map[foreign_parent] if foreign_parent in id_map else parent_id
            )
            self.records.append(
                SpanRecord(
                    span_id=id_map[record["id"]],
                    parent_id=new_parent,
                    name=record["name"],
                    start_s=record["t0"],
                    duration_s=record["dur"],
                    attrs=dict(record.get("attrs") or {}),
                    worker=worker,
                )
            )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def write_jsonl(
        self, path: str | os.PathLike[str], registry: MetricsRegistry | None = None
    ) -> int:
        """Write the trace file; returns the number of lines written."""
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "version": TRACE_VERSION,
                    "created_unix": round(self.origin_unix, 3),
                    "pid": os.getpid(),
                    "spans": len(self.records),
                }
            )
        ]
        for record in self.records:
            lines.append(json.dumps(record.to_dict()))
        if registry is not None:
            snapshot = registry.snapshot()
            for name, value in sorted(snapshot["counters"].items()):
                lines.append(
                    json.dumps(
                        {"type": "metric", "kind": "counter", "name": name, "value": value}
                    )
                )
            for name, gauge in sorted(snapshot["gauges"].items()):
                lines.append(
                    json.dumps(
                        {"type": "metric", "kind": "gauge", "name": name, "value": gauge}
                    )
                )
            for name, summary in sorted(snapshot.get("histograms", {}).items()):
                lines.append(
                    json.dumps(
                        {
                            "type": "metric",
                            "kind": "histogram",
                            "name": name,
                            "value": summary,
                        }
                    )
                )
        with open(path, "w", encoding="ascii") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)


# ----------------------------------------------------------------------
# Process-wide installation
# ----------------------------------------------------------------------

_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off (the fast path)."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or with None remove) the process-wide tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer  # lint: ignore[EFF001] - installation point; workers install their own tracer and restore it per task
    return previous


@contextmanager
def maybe_span(name: str, **attrs: Any) -> Iterator[Span | _NullSpan]:
    """A span on the installed tracer, or :data:`NULL_SPAN` when off.

    Convenience for call sites that run rarely (saves, checkpoints).
    Hot loops should fetch :func:`get_tracer` once and branch on None
    instead, which keeps the disabled path allocation-free.
    """
    tracer = _TRACER
    if tracer is None:
        yield NULL_SPAN
    else:
        with tracer.span(name, **attrs) as handle:
            yield handle
