"""Static invariant analysis: byte-format verifiers and an offline fsck.

Three checkers, one diagnostics vocabulary:

* :mod:`repro.analysis.arraycheck` — walks a CFP-array buffer and verifies
  the §3.4 format (canonical varints, parent linkage, count conservation).
* :mod:`repro.analysis.storecheck` — fsck for ``CFPA``/``CFPT`` files
  (geometry, headers, CRC32 page checksums, deep structural checks) and a
  buffer-pool auditor.
* :mod:`repro.core.validate` — the CFP-tree arena walker these build on.

All checkers return reports of typed :class:`Diagnostic` records instead
of raising; the ``repro check`` CLI renders them.
"""

from repro.analysis.arraycheck import (
    ArrayCheckReport,
    ArrayValidationError,
    check_array_parts,
    validate_array,
)
from repro.analysis.diagnostics import (
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_UNREADABLE,
    EXIT_USAGE,
    Diagnostic,
    DiagnosticSink,
    Severity,
)
from repro.analysis.storecheck import (
    StoreCheckReport,
    check_bufferpool,
    check_file,
)

__all__ = [
    "ArrayCheckReport",
    "ArrayValidationError",
    "Diagnostic",
    "DiagnosticSink",
    "Severity",
    "StoreCheckReport",
    "EXIT_OK",
    "EXIT_CORRUPT",
    "EXIT_USAGE",
    "EXIT_UNREADABLE",
    "check_array_parts",
    "check_bufferpool",
    "check_file",
    "validate_array",
]
