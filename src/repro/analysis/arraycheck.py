"""Static verifier for the CFP-array byte format (paper §3.4/§4).

The CFP-array has no decoder redundancy: a flipped continuation bit or a
wrong zigzag value silently rewires parent links and corrupts supports
rather than crashing. This module walks the raw buffer independently of
the traversal code paths (mirroring what :mod:`repro.core.validate` does
for the tree arena) and checks every invariant of the format:

* the item index is well-formed: ``n_ranks + 2`` entries, monotonically
  non-decreasing, spanning exactly the buffer (``ARR001``/``ARR002``),
* every triple decodes as three *canonical* varints — no over-long
  encodings with wasted continuation bytes (``ARR010``),
* triples tile each subarray exactly; none is truncated or crosses a
  subarray boundary (``ARR011``),
* ``delta_item`` stays in range: ``1 <= delta_item <= rank`` so the
  parent rank lands in ``0..rank-1`` (``ARR012``),
* every ``dpos`` points at the *start* of a node in the parent's
  subarray — and is 0 for parentless nodes (``ARR013``),
* counts are conserved: each node's count is positive (``ARR015``) and
  at least the sum of its children's counts (``ARR014``),
* against the source tree (optional): per-rank node censuses and
  supports match (``ARR020``/``ARR021``).

All checks run in one pass over the buffer plus one pass over the decoded
nodes; nothing raises for a finding — corruption is reported through the
returned :class:`ArrayCheckReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import DiagnosticSink
from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.conversion import cumulative_counts
from repro.core.node_codec import Buffer
from repro.core.ternary import TernaryCfpTree
from repro.errors import CorruptBufferError, ReproError


class ArrayValidationError(ReproError):
    """Raised by :func:`validate_array` in strict mode on the first finding."""


@dataclass
class ArrayCheckReport(DiagnosticSink):
    """Census and findings of one CFP-array verification."""

    n_ranks: int = 0
    nodes: int = 0
    buffer_bytes: int = 0


def validate_array(
    array: CfpArray,
    tree: TernaryCfpTree | None = None,
    *,
    strict: bool = False,
) -> ArrayCheckReport:
    """Verify an in-memory CFP-array; optionally raise on the first finding."""
    report = check_array_parts(array.n_ranks, array.buffer, array.starts, tree)
    if strict and not report.ok:
        raise ArrayValidationError(str(report.diagnostics[0]))
    return report


def check_array_parts(
    n_ranks: int,
    buffer: Buffer,
    starts: list[int],
    tree: TernaryCfpTree | None = None,
) -> ArrayCheckReport:
    """Verify raw CFP-array parts (tolerates indexes the constructor rejects)."""
    report = ArrayCheckReport(n_ranks=n_ranks, buffer_bytes=len(buffer))
    if not _check_index(report, n_ranks, buffer, starts):
        return report
    nodes = _decode_subarrays(report, n_ranks, buffer, starts)
    _check_links_and_counts(report, nodes)
    if tree is not None:
        _check_against_tree(report, nodes, tree)
    return report


# ----------------------------------------------------------------------
# Pass 1: item index
# ----------------------------------------------------------------------

def _check_index(
    report: ArrayCheckReport, n_ranks: int, buffer: Buffer, starts: list[int]
) -> bool:
    """Validate the item index; False when the walk cannot proceed."""
    if len(starts) != n_ranks + 2:
        report.add(
            "ARR001",
            f"item index has {len(starts)} entries, expected {n_ranks + 2}",
        )
        return False
    usable = True
    if starts[1] != 0:
        report.add("ARR002", f"first subarray starts at {starts[1]}, expected 0")
        usable = False
    if starts[-1] != len(buffer):
        report.add(
            "ARR002",
            f"item index spans {starts[-1]} bytes, buffer has {len(buffer)}",
        )
        usable = False
    for rank in range(1, n_ranks + 1):
        if starts[rank + 1] < starts[rank]:
            report.add(
                "ARR001",
                f"item index not monotonic: starts[{rank + 1}] = "
                f"{starts[rank + 1]} < starts[{rank}] = {starts[rank]}",
            )
            usable = False
    return usable


# ----------------------------------------------------------------------
# Pass 2: per-subarray decode
# ----------------------------------------------------------------------

#: Decoded node: ``(delta_item, dpos, count)`` keyed by local offset.
_RankNodes = dict[int, tuple[int, int, int]]


def _decode_field(
    report: ArrayCheckReport, buffer: Buffer, offset: int, end: int, where: str
) -> tuple[int, int] | None:
    """Decode one canonical varint bounded by the subarray end."""
    try:
        value, after = varint.decode_from(buffer, offset)
    except CorruptBufferError as exc:
        report.add("ARR011", f"undecodable varint: {exc}", where)
        return None
    if after > end:
        report.add(
            "ARR011",
            f"varint runs {after - end} bytes past the subarray end",
            where,
        )
        return None
    if after - offset != varint.encoded_size(value):
        report.add(
            "ARR010",
            f"non-canonical varint: {after - offset} bytes encode {value} "
            f"({varint.encoded_size(value)} canonical)",
            where,
        )
    return value, after


def _decode_subarrays(
    report: ArrayCheckReport, n_ranks: int, buffer: Buffer, starts: list[int]
) -> dict[int, _RankNodes]:
    """Decode every subarray — bulk kernel first, diagnosing walk on failure.

    The clean case (the overwhelmingly common one) runs through
    :func:`repro.compress.varint.decode_triples` in canonical mode — the
    same tight kernel the miner uses. Only a subarray the kernel rejects
    (truncated, over-long, or non-canonical varints) is re-walked field by
    field to produce precise ``ARR010``/``ARR011`` diagnostics.
    """
    nodes: dict[int, _RankNodes] = {}
    for rank in range(1, n_ranks + 1):
        start, end = starts[rank], starts[rank + 1]
        try:
            triples = varint.decode_triples(buffer, start, end, canonical=True)
        except CorruptBufferError:
            rank_nodes = _decode_subarray_slow(report, buffer, rank, start, end)
        else:
            rank_nodes = {
                local: (delta_item, dpos, count)
                for local, delta_item, dpos, count in triples
            }
            report.nodes += len(rank_nodes)
        nodes[rank] = rank_nodes
    return nodes


def _decode_subarray_slow(
    report: ArrayCheckReport, buffer: Buffer, rank: int, start: int, end: int
) -> _RankNodes:
    """Field-by-field decode of one subarray, emitting diagnostics."""
    rank_nodes: _RankNodes = {}
    offset = start
    while offset < end:
        local = offset - start
        where = f"rank {rank} local {local}"
        fields = []
        for __ in range(3):
            decoded = _decode_field(report, buffer, offset, end, where)
            if decoded is None:
                break
            value, offset = decoded
            fields.append(value)
        if len(fields) != 3:
            break  # subarray unwalkable past a truncated triple
        delta_item, dpos_raw, count = fields
        rank_nodes[local] = (delta_item, varint.unzigzag(dpos_raw), count)
        report.nodes += 1
    return rank_nodes


# ----------------------------------------------------------------------
# Pass 3: parent links and count conservation
# ----------------------------------------------------------------------

def _check_links_and_counts(
    report: ArrayCheckReport, nodes: dict[int, _RankNodes]
) -> None:
    child_sums: dict[tuple[int, int], int] = {}
    for rank, rank_nodes in nodes.items():
        for local, (delta_item, dpos, count) in rank_nodes.items():
            where = f"rank {rank} local {local}"
            if count < 1:
                report.add("ARR015", f"node count {count} < 1", where)
            parent_rank = rank - delta_item
            if delta_item < 1 or parent_rank < 0:
                report.add(
                    "ARR012",
                    f"delta_item {delta_item} outside 1..{rank}",
                    where,
                )
                continue
            if parent_rank == 0:
                if dpos != 0:
                    report.add(
                        "ARR013",
                        f"parentless node has dpos {dpos}, expected 0",
                        where,
                    )
                continue
            parent_local = local - dpos
            if parent_local not in nodes.get(parent_rank, {}):
                report.add(
                    "ARR013",
                    f"dpos {dpos} points at rank {parent_rank} local "
                    f"{parent_local}, which is not a node start",
                    where,
                )
                continue
            key = (parent_rank, parent_local)
            child_sums[key] = child_sums.get(key, 0) + count
    for (rank, local), child_sum in child_sums.items():
        count = nodes[rank][local][2]
        if child_sum > count:
            report.add(
                "ARR014",
                f"children carry count {child_sum} > node count {count}",
                f"rank {rank} local {local}",
            )


# ----------------------------------------------------------------------
# Pass 4 (optional): conservation against the source tree
# ----------------------------------------------------------------------

def _check_against_tree(
    report: ArrayCheckReport,
    nodes: dict[int, _RankNodes],
    tree: TernaryCfpTree,
) -> None:
    counts = cumulative_counts(tree)
    tree_nodes: dict[int, int] = {}
    tree_support: dict[int, int] = {}
    index = 0
    for kind, rank, __ in tree.iter_events():
        if kind != "enter":
            continue
        tree_nodes[rank] = tree_nodes.get(rank, 0) + 1
        tree_support[rank] = tree_support.get(rank, 0) + counts[index]
        index += 1
    for rank in range(1, tree.n_ranks + 1):
        rank_nodes = nodes.get(rank, {})
        expected_nodes = tree_nodes.get(rank, 0)
        if len(rank_nodes) != expected_nodes:
            report.add(
                "ARR020",
                f"subarray holds {len(rank_nodes)} nodes, tree has "
                f"{expected_nodes}",
                f"rank {rank}",
            )
            continue
        support = sum(count for __, __, count in rank_nodes.values())
        expected_support = tree_support.get(rank, 0)
        if support != expected_support:
            report.add(
                "ARR021",
                f"subarray support {support} != tree support "
                f"{expected_support}",
                f"rank {rank}",
            )
    root_total = sum(
        count
        for rank, rank_nodes in nodes.items()
        for local, (delta_item, __, count) in rank_nodes.items()
        if rank - delta_item == 0
    )
    if root_total != tree.transaction_count:
        report.add(
            "ARR021",
            f"root-level counts sum to {root_total}, tree recorded "
            f"{tree.transaction_count} transactions",
        )
