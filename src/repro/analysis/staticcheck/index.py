"""Whole-program AST index shared by every static-analysis pass.

The old invariant linter re-parsed each file inside a single monolithic
checker; the passes that motivated this subsystem (worker-effect
reachability, registry drift) need *cross-file* knowledge — which module
defines which function, what an imported name resolves to, which string
literals feed which registries. This module parses the analysis roots
**once** into a :class:`ProgramIndex` every pass shares:

* :class:`ModuleInfo` — one parsed file: its AST, source lines, the
  repo-relative posix path (the matching key the invariant rules use)
  and, for ``src/repro`` files, the dotted module name.
* :class:`FunctionInfo` — every function and method definition, keyed by
  a dotted qualname (``repro.core.parallel._mine_rank_task``,
  ``repro.obs.registry.MetricsRegistry.add``).
* Import maps — per module, what each local name binds to (a module or
  a ``module:attr`` pair), with one level of re-export following so
  ``from repro import obs; obs.set_tracer(...)`` resolves to the
  function in ``repro.obs.tracer``.

The index is deliberately *syntactic*: no imports are executed, so the
analyzer can inspect a tree that would not even import (and the corpus
of seeded violations stays inert test data).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path  #: absolute filesystem path
    module: str  #: repo-relative posix path, e.g. ``repro/core/parallel.py``
    dotted: str  #: dotted module name (``repro.core.parallel``; "" if not a package module)
    tree: ast.Module
    source_lines: list[str]
    #: local name -> "pkg.mod" (module import) or "pkg.mod:attr" (from-import)
    imports: dict[str, str] = field(default_factory=dict)
    #: names assigned at module top level (globals of this module)
    module_globals: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: dotted, e.g. ``repro.obs.registry.MetricsRegistry.add``
    module: str  #: owning module's repo-relative posix path
    dotted_module: str  #: owning module's dotted name
    name: str  #: bare function name
    class_name: str | None  #: enclosing class, if a method
    node: ast.FunctionDef | ast.AsyncFunctionDef


class SourceParseError(Exception):
    """A source file under an analysis root could not be parsed."""


def _module_identity(path: Path, src_root: Path, repo_root: Path) -> tuple[str, str]:
    """``(relative posix path, dotted name)`` for one file.

    The relative path matches against ``src/`` first, then the repo root
    — exactly the old linter's scheme, so path-pattern rules (INV001's
    allowlist etc.) keep their meaning. The dotted name is only set for
    files importable from ``src/`` (``repro.*``).
    """
    resolved = path.resolve()
    for root in (src_root, repo_root):
        try:
            relative = resolved.relative_to(root)
        except ValueError:
            continue
        posix = relative.as_posix()
        if root == src_root:
            parts = list(relative.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][: -len(".py")]
            return posix, ".".join(parts)
        return posix, ""
    return resolved.as_posix(), ""


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Top-level (and function-level) import bindings of one module.

    Returns ``local name -> "pkg.mod"`` for ``import pkg.mod [as name]``
    and ``local name -> "pkg.mod:attr"`` for ``from pkg.mod import attr``.
    Function-local imports are folded into the same namespace: for effect
    analysis a lazily imported module mutated inside a worker is exactly
    as interesting as a top-level one.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports don't occur in this tree
                continue
            module = node.module or ""
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{module}:{alias.name}"
    return imports


def _collect_module_globals(tree: ast.Module) -> set[str]:
    """Names bound by assignment at module top level."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    element.id
                    for element in target.elts
                    if isinstance(element, ast.Name)
                )
    return names


class ProgramIndex:
    """Parsed view of every Python file under the analysis roots."""

    def __init__(self, repo_root: Path) -> None:
        self.repo_root = repo_root
        self.src_root = repo_root / "src"
        self.modules: dict[str, ModuleInfo] = {}  #: rel posix path -> info
        self.by_dotted: dict[str, ModuleInfo] = {}  #: dotted name -> info
        self.functions: dict[str, FunctionInfo] = {}  #: qualname -> info
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, repo_root: Path, roots: list[Path]) -> "ProgramIndex":
        """Parse every ``*.py`` under ``roots`` (files or directories)."""
        index = cls(repo_root)
        for root in roots:
            files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            for file in files:
                index.add_file(file)
        return index

    def add_file(self, path: Path) -> ModuleInfo:
        """Parse and register one file; raises :class:`SourceParseError`."""
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise SourceParseError(
                f"cannot parse {exc.filename}:{exc.lineno}"
            ) from exc
        module, dotted = _module_identity(path, self.src_root, self.repo_root)
        info = ModuleInfo(
            path=path,
            module=module,
            dotted=dotted,
            tree=tree,
            source_lines=source.splitlines(),
            imports=_collect_imports(tree),
            module_globals=_collect_module_globals(tree),
        )
        self.modules[module] = info
        if dotted:
            self.by_dotted[dotted] = info
        self._register_functions(info)
        return info

    def _register_functions(self, info: ModuleInfo) -> None:
        prefix = info.dotted or info.module
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, prefix, None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(
                            info, item, f"{prefix}.{node.name}", node.name
                        )

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_name: str | None,
    ) -> None:
        function = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=info.module,
            dotted_module=info.dotted,
            name=node.name,
            class_name=class_name,
            node=node,
        )
        self.functions[function.qualname] = function
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(function)

    # -- resolution -----------------------------------------------------

    def repro_modules(self) -> list[ModuleInfo]:
        """Every indexed module importable as ``repro.*`` (sorted)."""
        return [
            self.by_dotted[name]
            for name in sorted(self.by_dotted)
            if name == "repro" or name.startswith("repro.")
        ]

    def resolve_export(self, dotted_module: str, attr: str) -> str | None:
        """Resolve ``dotted_module.attr`` to a defining qualname.

        Follows from-import re-exports (``repro.obs.set_tracer`` defined
        in ``repro.obs.tracer``) up to a small fixed depth so package
        ``__init__`` façades stay transparent without risking cycles.
        """
        seen: set[tuple[str, str]] = set()
        module, name = dotted_module, attr
        for __ in range(4):
            if (module, name) in seen:
                return None
            seen.add((module, name))
            info = self.by_dotted.get(module)
            if info is None:
                return None
            qualname = f"{module}.{name}"
            if qualname in self.functions:
                return qualname
            binding = info.imports.get(name)
            if binding is None:
                return None
            if ":" in binding:
                module, name = binding.split(":", 1)
            else:
                # `import x.y as name`: attr lookup would need another hop
                # the callers never take; treat the module itself as the
                # resolution target (not a function).
                return None
        return None

    def resolve_call(
        self, info: ModuleInfo, call: ast.Call
    ) -> FunctionInfo | None:
        """Best-effort static resolution of a call to an indexed function.

        Handles ``f(...)`` via the module's own defs and from-imports, and
        ``mod.f(...)`` via imported-module bindings (with re-export
        following). Method calls through objects are left to the caller's
        fallback (:attr:`methods_by_name`) — resolving receiver types is
        out of scope for a syntactic index.
        """
        func = call.func
        if isinstance(func, ast.Name):
            prefix = info.dotted or info.module
            local = self.functions.get(f"{prefix}.{func.id}")
            if local is not None:
                return local
            binding = info.imports.get(func.id)
            if binding is not None and ":" in binding:
                module, name = binding.split(":", 1)
                qualname = self.resolve_export(module, name)
                if qualname is not None:
                    return self.functions.get(qualname)
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            binding = info.imports.get(func.value.id)
            if binding is None:
                return None
            if ":" in binding:
                module, name = binding.split(":", 1)
                # `from repro import obs` binds a *module*; the call is
                # then an attribute of that module.
                target = f"{module}.{name}"
                if target in self.by_dotted:
                    qualname = self.resolve_export(target, func.attr)
                    return self.functions.get(qualname) if qualname else None
                return None
            if binding in self.by_dotted:
                qualname = self.resolve_export(binding, func.attr)
                return self.functions.get(qualname) if qualname else None
        return None


__all__ = [
    "FunctionInfo",
    "SourceParseError",
    "ModuleInfo",
    "ProgramIndex",
]
