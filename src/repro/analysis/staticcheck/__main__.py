"""``python -m repro.analysis.staticcheck`` entry point."""

from __future__ import annotations

import sys

from repro.analysis.staticcheck.runner import main

if __name__ == "__main__":
    sys.exit(main())
