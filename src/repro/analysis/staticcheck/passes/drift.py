"""DRIFT001–DRIFT003: registry-drift passes.

Three of the repo's subsystems are keyed by *string registries* that no
type checker sees: fault-injection site names, metric counter names, and
``REPRO_*`` environment variables. Each lives in three places at once —
the code that fires/publishes/reads it, the docs that promise it, and
the tests that exercise it — and a typo in any one of them fails
silently (a fault spec that never fires, a documented counter that no
run ever emits, a dead env var that readers keep setting).

These passes extract every registry from the AST index and cross-check
code against docs and tests, flagging drift in **both** directions:

``DRIFT001`` — fault sites
    Every ``faultinject.fire("site")`` literal must be a member of the
    canonical ``SITES`` registry (parsed from the indexed
    ``repro/faultinject`` source, so the corpus fixtures stay inert),
    documented in ``docs/``, and exercised by at least one test under
    ``tests/``; every ``SITES`` member must be fired somewhere; every
    ``site:action`` spec example in the docs must name a real site.
``DRIFT002`` — metric counters
    Every literal ``metrics.add("name")`` / ``registry.add("name")``
    counter and ``metrics.observe("name", v)`` histogram (f-strings
    contribute their static prefix) must appear in the docs; every doc
    token that *looks like* a counter (dotted, in a namespace the code
    publishes) must match a code counter — fault sites and span names
    are excluded from the dead-doc direction, and
    ``tools/check_trace.py`` counts as documentation per the trace
    schema contract.
``DRIFT003`` — environment variables
    Every ``REPRO_*`` string literal in the package must be documented,
    and every ``REPRO_*`` token in the docs must still exist in code.

All three passes are purely syntactic over the index plus a line-based
scan of ``docs/*.md`` and ``tests/``, so they work unchanged on the
seeded-violation corpus (whose mini-repo carries its own docs).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.staticcheck.findings import Finding, filter_suppressed
from repro.analysis.staticcheck.index import ModuleInfo, ProgramIndex

#: Dotted lowercase token, the registry-name shape (``parallel.retries``).
_DOTTED_RE = re.compile(r"\b[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+\b")

#: A slash family: ``bufferpool.hits / faults / evictions`` documents
#: three counters in one span.
_SLASH_FAMILY_RE = re.compile(
    r"\b([a-z][a-z0-9_]*)\.([a-z][a-z0-9_]*)((?:\s*/\s*[a-z][a-z0-9_]*)+)"
)

#: A fault-spec example in the docs: ``site.name:action``.
_SPEC_SITE_RE = re.compile(
    r"\b([a-z][a-z0-9_]*\.[a-z][a-z0-9_]*):(?:kill|raise|flake|delay|truncate)\b"
)

#: ``REPRO_*`` environment-variable token.
_ENV_RE = re.compile(r"\bREPRO_[A-Z0-9_]+\b")

#: File extensions that end a *filename*, not a registry name: a doc
#: writing ``serving.md`` or ``store.cfpa`` names a file, and must not
#: register a dotted token in an otherwise-published metric namespace.
_FILENAME_EXTENSIONS = frozenset(
    {"md", "py", "json", "jsonl", "cfpa", "fimi", "bin", "txt", "yml", "yaml"}
)

#: Receivers whose ``.add("name", ...)`` call publishes a metric counter.
_METRIC_RECEIVERS = frozenset({"metrics", "registry"})

#: Registry methods that publish a named metric (first argument is the
#: name). ``Histogram.observe(value)`` is not caught here because its
#: receiver is never named ``metrics``/``registry``.
_METRIC_METHODS = frozenset({"add", "observe"})


@dataclass(frozen=True)
class _Site:
    """One ``fire("site")`` occurrence."""

    name: str
    module: str
    line: int


@dataclass(frozen=True)
class _MetricName:
    """One literal (or f-string-prefix) metric counter publication."""

    name: str
    is_prefix: bool  #: True when from an f-string's static prefix
    module: str
    line: int


@dataclass
class DocCorpus:
    """Line-indexed registry tokens extracted from ``docs/*.md``.

    ``tools/check_trace.py`` is folded in as documentation: the trace
    schema validator is the machine-readable contract for counter names.
    """

    dotted: dict[str, tuple[str, int]] = field(default_factory=dict)
    spec_sites: dict[str, tuple[str, int]] = field(default_factory=dict)
    env_vars: dict[str, tuple[str, int]] = field(default_factory=dict)
    text: str = ""
    doc_lines: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, repo_root: Path) -> "DocCorpus":
        corpus = cls()
        sources = sorted((repo_root / "docs").glob("*.md"))
        check_trace = repo_root / "tools" / "check_trace.py"
        if check_trace.is_file():
            sources.append(check_trace)
        chunks: list[str] = []
        for source in sources:
            rel = source.relative_to(repo_root).as_posix()
            text = source.read_text(encoding="utf-8")
            chunks.append(text)
            lines = text.splitlines()
            corpus.doc_lines[rel] = lines
            for lineno, line in enumerate(lines, start=1):
                for match in _DOTTED_RE.finditer(line):
                    token = match.group(0)
                    if token.rsplit(".", 1)[-1] in _FILENAME_EXTENSIONS:
                        continue
                    corpus.dotted.setdefault(token, (rel, lineno))
                for family in _SLASH_FAMILY_RE.finditer(line):
                    namespace = family.group(1)
                    for member in re.split(r"\s*/\s*", family.group(3).strip("/ ")):
                        if member:
                            corpus.dotted.setdefault(
                                f"{namespace}.{member}", (rel, lineno)
                            )
                for spec in _SPEC_SITE_RE.finditer(line):
                    corpus.spec_sites.setdefault(spec.group(1), (rel, lineno))
                for env in _ENV_RE.finditer(line):
                    corpus.env_vars.setdefault(env.group(0), (rel, lineno))
        corpus.text = "\n".join(chunks)
        return corpus

    def mentions(self, token: str) -> bool:
        """Loose containment check: the token appears anywhere in docs."""
        return token in self.text


# ----------------------------------------------------------------------
# Code-side registry extraction
# ----------------------------------------------------------------------


def _literal_or_prefix(node: ast.expr) -> tuple[str, bool] | None:
    """``("name", False)`` for a string literal, ``("pre.", True)`` for
    an f-string's leading static text, ``None`` otherwise."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, True
    return None


def collect_fault_sites(index: ProgramIndex) -> list[_Site]:
    """Every literal site name passed to a ``fire(...)`` call."""
    sites: list[_Site] = []
    for info in index.repro_modules():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            called = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if called != "fire":
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                sites.append(_Site(first.value, info.module, node.lineno))
    return sites


def declared_sites(index: ProgramIndex) -> dict[str, tuple[str, int]] | None:
    """The canonical ``SITES`` registry parsed from the indexed source.

    Returns ``None`` when the analyzed tree declares no ``SITES`` (the
    corpus fixtures may not), in which case the canonical cross-check is
    skipped.
    """
    for info in index.repro_modules():
        if not info.dotted.endswith("faultinject"):
            continue
        for node in info.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if not any(
                isinstance(t, ast.Name) and t.id == "SITES" for t in targets
            ):
                continue
            names: dict[str, tuple[str, int]] = {}
            assert value is not None
            for constant in ast.walk(value):
                if isinstance(constant, ast.Constant) and isinstance(
                    constant.value, str
                ):
                    names[constant.value] = (info.module, constant.lineno)
            return names
    return None


def collect_metric_names(index: ProgramIndex) -> list[_MetricName]:
    """Every literal metric published through ``metrics``/``registry``,
    counters (``.add``) and histograms (``.observe``) alike."""
    names: list[_MetricName] = []
    for info in index.repro_modules():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS
            ):
                continue
            receiver = func.value
            terminal = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr
                if isinstance(receiver, ast.Attribute)
                else None
            )
            if terminal not in _METRIC_RECEIVERS:
                continue
            parsed = _literal_or_prefix(node.args[0])
            if parsed is None:
                continue
            name, is_prefix = parsed
            if name:
                names.append(_MetricName(name, is_prefix, info.module, node.lineno))
    return names


def collect_span_names(index: ProgramIndex) -> set[str]:
    """Literal first arguments of ``span(...)`` / ``maybe_span(...)``."""
    spans: set[str] = set()
    for info in index.repro_modules():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            called = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if called not in ("span", "maybe_span"):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                spans.add(first.value)
    return spans


def collect_env_vars(index: ProgramIndex) -> dict[str, tuple[str, int]]:
    """Every exact ``REPRO_*`` string literal in the package."""
    env: dict[str, tuple[str, int]] = {}
    for info in index.repro_modules():
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _ENV_RE.fullmatch(node.value)
            ):
                env.setdefault(node.value, (info.module, node.lineno))
    return env


def _tests_text(repo_root: Path) -> str:
    tests_dir = repo_root / "tests"
    if not tests_dir.is_dir():
        return ""
    return "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(tests_dir.rglob("*.py"))
    )


def _doc_finding(
    corpus: DocCorpus, location: tuple[str, int], code: str, message: str
) -> list[Finding]:
    """A doc-anchored finding, run through the shared suppression filter."""
    path, line = location
    finding = Finding(path, line, code, message)
    return filter_suppressed([finding], corpus.doc_lines.get(path, []))


# ----------------------------------------------------------------------
# The passes
# ----------------------------------------------------------------------


def _filter_code_findings(
    index: ProgramIndex, findings: list[Finding]
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        info: ModuleInfo | None = index.modules.get(finding.path)
        lines = info.source_lines if info is not None else []
        kept.extend(filter_suppressed([finding], lines))
    return kept


class FaultSiteDriftPass:
    """DRIFT001: fire() sites vs SITES vs docs vs chaos tests."""

    name = "fault-site-drift"
    codes = ("DRIFT001",)

    def run(self, index: ProgramIndex) -> list[Finding]:
        corpus = DocCorpus.scan(index.repo_root)
        tests = _tests_text(index.repo_root)
        fired = collect_fault_sites(index)
        canonical = declared_sites(index)
        findings: list[Finding] = []
        for site in fired:
            if canonical is not None and site.name not in canonical:
                findings.append(
                    Finding(
                        site.module,
                        site.line,
                        "DRIFT001",
                        f"fire() site {site.name!r} is not in the canonical "
                        "faultinject.SITES registry",
                    )
                )
            if not corpus.mentions(site.name):
                findings.append(
                    Finding(
                        site.module,
                        site.line,
                        "DRIFT001",
                        f"fault site {site.name!r} is undocumented "
                        "(expected in docs/robustness.md)",
                    )
                )
            if tests and site.name not in tests:
                findings.append(
                    Finding(
                        site.module,
                        site.line,
                        "DRIFT001",
                        f"fault site {site.name!r} is not exercised by any "
                        "test under tests/",
                    )
                )
        findings = _filter_code_findings(index, findings)
        fired_names = {site.name for site in fired}
        if canonical is not None:
            for name in sorted(set(canonical) - fired_names):
                module, line = canonical[name]
                findings.extend(
                    _filter_code_findings(
                        index,
                        [
                            Finding(
                                module,
                                line,
                                "DRIFT001",
                                f"SITES entry {name!r} is fired nowhere in "
                                "the package (dead registry entry)",
                            )
                        ],
                    )
                )
        for name in sorted(set(corpus.spec_sites) - fired_names):
            findings.extend(
                _doc_finding(
                    corpus,
                    corpus.spec_sites[name],
                    "DRIFT001",
                    f"documented fault-spec example names unknown site "
                    f"{name!r}",
                )
            )
        return findings


class MetricDriftPass:
    """DRIFT002: published counters vs docs (both directions)."""

    name = "metric-drift"
    codes = ("DRIFT002",)

    def run(self, index: ProgramIndex) -> list[Finding]:
        corpus = DocCorpus.scan(index.repo_root)
        published = collect_metric_names(index)
        spans = collect_span_names(index)
        sites = {site.name for site in collect_fault_sites(index)}
        canonical = declared_sites(index)
        if canonical:
            sites.update(canonical)
        exact = {m.name for m in published if not m.is_prefix}
        prefixes = {m.name for m in published if m.is_prefix}
        findings: list[Finding] = []
        for metric in published:
            if metric.is_prefix:
                documented = any(
                    token == metric.name.rstrip(".")
                    or token.startswith(metric.name)
                    for token in corpus.dotted
                )
            else:
                documented = metric.name in corpus.dotted
            if not documented:
                findings.append(
                    Finding(
                        metric.module,
                        metric.line,
                        "DRIFT002",
                        f"metric counter {metric.name!r}"
                        f"{' (f-string prefix)' if metric.is_prefix else ''} "
                        "is undocumented (expected in docs/observability.md)",
                    )
                )
        findings = _filter_code_findings(index, findings)
        namespaces = {name.split(".")[0] for name in exact}
        namespaces.update(prefix.split(".")[0] for prefix in prefixes)
        for token in sorted(corpus.dotted):
            if token.split(".")[0] not in namespaces:
                continue
            if token in sites or token in spans:
                continue
            alive = token in exact or any(
                token.startswith(prefix) or token == prefix.rstrip(".")
                for prefix in prefixes
            )
            if not alive:
                findings.extend(
                    _doc_finding(
                        corpus,
                        corpus.dotted[token],
                        "DRIFT002",
                        f"documented counter {token!r} is published nowhere "
                        "in the package (dead doc entry)",
                    )
                )
        return findings


class EnvVarDriftPass:
    """DRIFT003: REPRO_* env vars vs docs (both directions)."""

    name = "env-var-drift"
    codes = ("DRIFT003",)

    def run(self, index: ProgramIndex) -> list[Finding]:
        corpus = DocCorpus.scan(index.repo_root)
        code_vars = collect_env_vars(index)
        findings: list[Finding] = []
        for name in sorted(set(code_vars) - set(corpus.env_vars)):
            module, line = code_vars[name]
            findings.extend(
                _filter_code_findings(
                    index,
                    [
                        Finding(
                            module,
                            line,
                            "DRIFT003",
                            f"environment variable {name!r} is undocumented",
                        )
                    ],
                )
            )
        for name in sorted(set(corpus.env_vars) - set(code_vars)):
            findings.extend(
                _doc_finding(
                    corpus,
                    corpus.env_vars[name],
                    "DRIFT003",
                    f"documented environment variable {name!r} is read "
                    "nowhere in the package (dead doc entry)",
                )
            )
        return findings


__all__ = [
    "DocCorpus",
    "EnvVarDriftPass",
    "FaultSiteDriftPass",
    "MetricDriftPass",
    "collect_env_vars",
    "collect_fault_sites",
    "collect_metric_names",
    "collect_span_names",
    "declared_sites",
]
