"""The pluggable pass registry.

A pass is any object with a ``name`` (CLI-selectable), a ``codes``
tuple (the rule ids it can emit), and ``run(index) -> list[Finding]``.
``ALL_PASSES`` is the default battery, in deterministic execution
order; the runner's ``--select`` filters it by pass name or rule code.
"""

from __future__ import annotations

from typing import Protocol

from repro.analysis.staticcheck.findings import Finding
from repro.analysis.staticcheck.index import ProgramIndex
from repro.analysis.staticcheck.passes.drift import (
    EnvVarDriftPass,
    FaultSiteDriftPass,
    MetricDriftPass,
)
from repro.analysis.staticcheck.passes.invariants import InvariantsPass
from repro.analysis.staticcheck.passes.workereffect import WorkerEffectPass


class Pass(Protocol):
    """Structural interface every analyzer pass satisfies."""

    name: str
    codes: tuple[str, ...]

    def run(self, index: ProgramIndex) -> list[Finding]:
        """All unsuppressed findings for the indexed program."""
        ...


def all_passes() -> list[Pass]:
    """A fresh instance of every registered pass, in execution order."""
    return [
        InvariantsPass(),
        WorkerEffectPass(),
        FaultSiteDriftPass(),
        MetricDriftPass(),
        EnvVarDriftPass(),
    ]


__all__ = [
    "EnvVarDriftPass",
    "FaultSiteDriftPass",
    "InvariantsPass",
    "MetricDriftPass",
    "Pass",
    "WorkerEffectPass",
    "all_passes",
]
