"""INV001–INV008: the layering invariants, migrated from the old linter.

The byte formats at the heart of this reproduction are fragile by design
— a compressed arena has no slack bytes for runtime checks, so
correctness rests on a few *structural* rules about which code may touch
which bytes. These rules are machine-checked here, with the same rule
ids, messages and file-pattern semantics as the original
``tools/lint_invariants.py`` (which now delegates to this module):

``INV001``
    Arena bytes (``.buf``) may be subscripted only by the arena itself,
    :mod:`repro.core.node_codec`, and :mod:`repro.compress`. Local
    aliases (``buf = x.arena.buf``) are tracked.
``INV002``
    The node-mask bit literals (``0x80 0x7F 0xC0 0x38 0x07``) may appear
    in bitwise expressions only inside :mod:`repro.compress`.
``INV003``
    No mutable default arguments anywhere.
``INV004``
    No bare ``except:``, no overbroad ``except Exception`` /
    ``except BaseException`` — and no ``contextlib.suppress(Exception)``
    / ``suppress(BaseException)``, which swallow exactly as silently.
``INV005``
    Functions in the typed packages carry complete signatures.
``INV006``
    The verification modules must not call observability hooks inside
    loop bodies.
``INV007``
    The conversion hot path must use the bulk triple-encode kernel,
    never per-field ``encode``/``encode_into`` calls.
``INV008``
    The mine hot path must consume subarrays through the columnar
    kernels (``subarray_columns`` / ``decode_triples_columns``), never
    by looping node-by-node over the per-node decode APIs
    (``decode_subarray`` / ``iter_subarray`` / ``decode_triples``).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.staticcheck.findings import Finding, filter_suppressed
from repro.analysis.staticcheck.index import ProgramIndex

#: Module paths (relative, posix) allowed to subscript arena ``.buf`` bytes.
ARENA_BUF_ALLOWED = (
    "repro/memman/arena.py",
    "repro/core/node_codec.py",
    "repro/compress/",
)

#: Module paths allowed to use raw mask-bit literals in bitwise expressions.
MASK_ALLOWED = ("repro/compress/",)

#: The §3.3 mask-byte bit patterns guarded by INV002.
MASK_LITERALS = frozenset({0x80, 0x7F, 0xC0, 0x38, 0x07})

#: Packages whose functions must carry complete annotations (INV005).
TYPED_PACKAGES = (
    "repro/core/",
    "repro/compress/",
    "repro/memman/",
    "repro/analysis/",
    "repro/obs/",
    "repro/storage/",
    "repro/runtime/",
    "repro/faultinject/",
)

#: Verification modules whose loops must stay instrumentation-free (INV006).
OBS_FREE_LOOPS = (
    "repro/core/validate.py",
    "repro/analysis/arraycheck.py",
)

#: Modules that must use the bulk triple encoder, never per-field encodes
#: (INV007).
BULK_ENCODE_ONLY = ("repro/core/conversion.py",)

#: Call names that bypass the bulk encode kernel (INV007).
_PER_FIELD_ENCODES = frozenset({"encode", "encode_into"})

#: Mine hot-path modules that must consume subarrays columnar-ly (INV008).
MINE_HOT_PATH = (
    "repro/core/cfp_array.py",
    "repro/core/cfp_growth.py",
    "repro/core/parallel.py",
    # The serving hot path: support queries answer straight off the array,
    # so the query module is held to the same columnar-consumption rule.
    "repro/util/queries.py",
)

#: Per-node decode calls that must not feed loops in the mine hot path
#: (INV008) — each yields one Python tuple per node, which is exactly the
#: per-node cost the columnar kernels exist to avoid.
_PER_NODE_DECODES = frozenset(
    {"decode_subarray", "iter_subarray", "decode_triples"}
)

#: Constructor names whose call as a default argument is mutable (INV003).
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Exception names too broad to catch (INV004).
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _matches(module: str, patterns: tuple[str, ...]) -> bool:
    return any(
        module == p or (p.endswith("/") and module.startswith(p))
        for p in patterns
    )


def _call_name(func: ast.expr) -> str | None:
    """Terminal name of a call target (``f(...)`` or ``obj.f(...)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class FileChecker(ast.NodeVisitor):
    """Single-file AST walk collecting INV violations.

    ``module`` is the repo-relative posix path (``repro/core/...``) the
    path-pattern rules match against.
    """

    def __init__(self, module: str) -> None:
        self.module = module
        self.violations: list[Finding] = []
        self.arena_allowed = _matches(module, ARENA_BUF_ALLOWED)
        self.masks_allowed = _matches(module, MASK_ALLOWED)
        self.typed = _matches(module, TYPED_PACKAGES)
        self.obs_free_loops = _matches(module, OBS_FREE_LOOPS)
        self.bulk_encode_only = _matches(module, BULK_ENCODE_ONLY)
        self.mine_hot_path = _matches(module, MINE_HOT_PATH)
        self._buf_aliases: set[str] = set()
        self._obs_names: set[str] = set()
        self._obs_module_imported = False
        self._loop_depth = 0

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Finding(self.module, getattr(node, "lineno", 0), code, message)
        )

    # -- INV001: arena byte access ------------------------------------

    @staticmethod
    def _is_buf_attribute(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "buf"

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_buf_attribute(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._buf_aliases.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_buf_attribute(node.value):
            if isinstance(node.target, ast.Name):
                self._buf_aliases.add(node.target.id)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not self.arena_allowed:
            if self._is_buf_attribute(node.value):
                self._add(
                    node,
                    "INV001",
                    "arena bytes subscripted outside the codec layer; "
                    "use node_codec helpers or Arena.read/write",
                )
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id in self._buf_aliases
            ):
                self._add(
                    node,
                    "INV001",
                    f"arena buffer alias {node.value.id!r} subscripted "
                    "outside the codec layer",
                )
        self.generic_visit(node)

    # -- INV002: raw mask literals ------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not self.masks_allowed and isinstance(
            node.op, (ast.BitAnd, ast.BitOr)
        ):
            for side in (node.left, node.right):
                if (
                    isinstance(side, ast.Constant)
                    and type(side.value) is int
                    and side.value in MASK_LITERALS
                ):
                    self._add(
                        node,
                        "INV002",
                        f"raw mask literal {side.value:#04x} in a bitwise "
                        "expression; use the repro.compress.masks constants",
                    )
        self.generic_visit(node)

    # -- INV003/INV005: function signatures ---------------------------

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )

    def _check_def(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        arguments = node.args
        for default in list(arguments.defaults) + [
            d for d in arguments.kw_defaults if d is not None
        ]:
            if self._is_mutable_default(default):
                self._add(
                    node,
                    "INV003",
                    f"mutable default argument in {node.name!r}",
                )
        if self.typed:
            params = arguments.posonlyargs + arguments.args + arguments.kwonlyargs
            missing = [
                p.arg
                for i, p in enumerate(params)
                if p.annotation is None
                and not (i == 0 and p.arg in ("self", "cls"))
            ]
            for extra in (arguments.vararg, arguments.kwarg):
                if extra is not None and extra.annotation is None:
                    missing.append(extra.arg)
            if missing:
                self._add(
                    node,
                    "INV005",
                    f"{node.name!r} has unannotated parameters: "
                    + ", ".join(missing),
                )
            if node.returns is None:
                self._add(
                    node,
                    "INV005",
                    f"{node.name!r} has no return annotation",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_def(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_def(node)
        self.generic_visit(node)

    # -- INV006: no observability hooks in verification loops ----------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro.obs" or alias.name.startswith("repro.obs."):
                # `import repro.obs` binds `repro`; usage is `repro.obs.*`.
                self._obs_module_imported = True
                if alias.asname is not None:
                    self._obs_names.add(alias.asname)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "repro.obs" or module.startswith("repro.obs."):
            for alias in node.names:
                self._obs_names.add(alias.asname or alias.name)
        elif module == "repro":
            for alias in node.names:
                if alias.name == "obs":
                    self._obs_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._check_per_node_iter(node, node.iter)
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_per_node_iter(node, node.iter)
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- INV008: no per-node decode loops in the mine hot path ---------

    def _check_per_node_iter(self, node: ast.AST, iterable: ast.expr) -> None:
        """Flag a loop/comprehension iterating a per-node decode call."""
        if not self.mine_hot_path:
            return
        if not isinstance(iterable, ast.Call):
            return
        called = _call_name(iterable.func)
        if called in _PER_NODE_DECODES:
            self._add(
                node,
                "INV008",
                f"per-node decode loop over {called!r} in the mine hot "
                "path; consume the subarray through the columnar kernels "
                "(subarray_columns / decode_triples_columns)",
            )

    def _visit_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> None:
        for generator in node.generators:
            self._check_per_node_iter(node, generator.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def _flag_obs_use(self, node: ast.AST, what: str) -> None:
        self._add(
            node,
            "INV006",
            f"observability hook {what} used inside a verification loop; "
            "validate/arraycheck loops must stay instrumentation-free",
        )

    def visit_Name(self, node: ast.Name) -> None:
        if (
            self.obs_free_loops
            and self._loop_depth > 0
            and isinstance(node.ctx, ast.Load)
            and node.id in self._obs_names
        ):
            self._flag_obs_use(node, repr(node.id))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.obs_free_loops
            and self._loop_depth > 0
            and self._obs_module_imported
            and node.attr == "obs"
            and isinstance(node.value, ast.Name)
            and node.value.id == "repro"
        ):
            self._flag_obs_use(node, "'repro.obs'")
        self.generic_visit(node)

    # -- INV004 (suppress form) / INV007 -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.bulk_encode_only:
            called = _call_name(node.func)
            if called in _PER_FIELD_ENCODES:
                self._add(
                    node,
                    "INV007",
                    f"per-field {called!r} call in the conversion hot path; "
                    "use varint.encode_triples to write whole subarrays",
                )
        self._check_suppress_call(node)
        self.generic_visit(node)

    def _check_suppress_call(self, node: ast.Call) -> None:
        """INV004 also covers ``contextlib.suppress(Exception)``.

        ``with suppress(Exception): ...`` swallows exactly as silently as
        ``except Exception: pass`` — the rule would be trivial to launder
        without this.
        """
        if _call_name(node.func) != "suppress":
            return
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in _BROAD_EXCEPTIONS:
                self._add(
                    node,
                    "INV004",
                    f"overbroad 'suppress({arg.id})'; suppress a specific "
                    "repro.errors type",
                )

    # -- INV004: exception hygiene ------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(node, "INV004", "bare except")
        else:
            names = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for name in names:
                if isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS:
                    self._add(
                        node,
                        "INV004",
                        f"overbroad 'except {name.id}'; catch a specific "
                        "repro.errors type",
                    )
        self.generic_visit(node)


def check_module(
    module: str, tree: ast.Module, source_lines: list[str]
) -> list[Finding]:
    """All unsuppressed INV findings for one parsed module."""
    checker = FileChecker(module)
    checker.visit(tree)
    return filter_suppressed(checker.violations, source_lines)


class InvariantsPass:
    """Pass adapter: runs the per-file checker over the whole index."""

    name = "invariants"
    codes = (
        "INV001",
        "INV002",
        "INV003",
        "INV004",
        "INV005",
        "INV006",
        "INV007",
        "INV008",
    )

    def run(self, index: ProgramIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in sorted(index.modules):
            info = index.modules[module]
            findings.extend(
                check_module(info.module, info.tree, info.source_lines)
            )
        return findings


def lint_file(path: Path) -> list[Finding]:
    """Lint one file standalone (the old ``lint_invariants.lint_file``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = _standalone_module_path(path)
    return check_module(module, tree, source.splitlines())


def _standalone_module_path(path: Path) -> str:
    """Best-effort repo-relative posix path for shim-style invocations."""
    package_root = Path(__file__).resolve().parents[4]  # .../src
    repo_root = package_root.parent
    for root in (package_root, repo_root):
        try:
            return path.resolve().relative_to(root).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_paths(paths: list[Path]) -> list[Finding]:
    """Lint files and directory trees (the old ``lint_paths``)."""
    findings: list[Finding] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_file(file))
    return findings


__all__ = [
    "ARENA_BUF_ALLOWED",
    "BULK_ENCODE_ONLY",
    "FileChecker",
    "InvariantsPass",
    "MASK_ALLOWED",
    "MASK_LITERALS",
    "MINE_HOT_PATH",
    "OBS_FREE_LOOPS",
    "TYPED_PACKAGES",
    "check_module",
    "lint_file",
    "lint_paths",
]
