"""EFF001–EFF004: the worker-effect (race) checker.

The parallel mine/build phases promise output **byte-identical to the
serial code path for any worker count and any retry schedule** (see
docs/performance.md and docs/robustness.md). That guarantee holds only
if the code shipped to pool workers is effect-free over state shared
between processes or between retries of the same task:

* a write to a module-level global leaks across tasks that reuse a
  pooled worker (and silently diverges under ``fork`` vs ``spawn``);
* a write into an attached shared-memory segment races the parent and
  every sibling worker;
* ``os.environ`` mutation is invisible cross-process config drift;
* unseeded RNG makes a retried task produce different bytes than its
  first attempt.

This pass finds every function that can be *shipped to a worker* —
entry points passed to ``pool.submit(...)`` or packed as ``(function,
args)`` task tuples for a :class:`repro.runtime.Supervisor` — walks
their transitive call graph inside ``repro``, and flags:

``EFF001``
    store to a module-level global (``global`` declaration, subscript or
    attribute store on a module global, or a store through an imported
    name).
``EFF002``
    subscript store into an attached shared-memory buffer (anything
    derived from ``attach_array`` / ``_attach_untracked`` /
    ``SharedMemory`` by slicing, ``memoryview``, ``.buf``, ``.cast`` or
    wrapping).
``EFF003``
    ``os.environ`` mutation (item store/delete, ``update`` /
    ``setdefault`` / ``pop`` / ``clear``, ``os.putenv`` /
    ``os.unsetenv``).
``EFF004``
    unseeded randomness: module-level :mod:`random` functions (the
    process-wide shared ``Random``), ``random.Random()`` /
    ``numpy.random.default_rng()`` with no seed argument, and
    ``numpy.random`` module-level samplers.

Sanctioned exceptions (the fault-injection plan adoption, the worker's
attachment cache, the tracer installation) carry inline
``# lint: ignore[EFF001]`` markers at the store site — the shared
suppression machinery, so every exemption is visible in the diff.

The call graph resolution is syntactic: direct calls resolve through
the import maps (with re-export following); method calls through
objects fall back to *every* indexed method of that name — deliberately
over-approximate, because missing a reachable effect is worse than
walking a few extra instance methods (whose ``self.x`` stores are not
flagged anyway).
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.staticcheck.findings import Finding, filter_suppressed
from repro.analysis.staticcheck.index import (
    FunctionInfo,
    ModuleInfo,
    ProgramIndex,
)

#: Calls whose result is (or wraps) an attached shared-memory buffer.
_ATTACH_PROVIDERS = frozenset({"attach_array", "_attach_untracked", "SharedMemory"})

#: ``os.environ`` methods that mutate the process environment.
_ENVIRON_MUTATORS = frozenset({"update", "setdefault", "pop", "clear", "popitem"})

#: ``os``-level environment mutators.
_OS_ENV_CALLS = frozenset({"putenv", "unsetenv"})

#: Module-level :mod:`random` functions backed by the shared global Random.
_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ----------------------------------------------------------------------
# Worker-entry discovery
# ----------------------------------------------------------------------


def _resolve_name(
    index: ProgramIndex, info: ModuleInfo, name: str
) -> FunctionInfo | None:
    """Resolve a bare name reference to an indexed function."""
    prefix = info.dotted or info.module
    local = index.functions.get(f"{prefix}.{name}")
    if local is not None:
        return local
    binding = info.imports.get(name)
    if binding is not None and ":" in binding:
        module, attr = binding.split(":", 1)
        qualname = index.resolve_export(module, attr)
        if qualname is not None:
            return index.functions.get(qualname)
    return None


def _references_supervisor(info: ModuleInfo) -> bool:
    if info.dotted.startswith("repro.runtime"):
        return True
    return any(
        binding.endswith(":Supervisor") or binding == "repro.runtime"
        for binding in info.imports.values()
    )


def discover_worker_entries(index: ProgramIndex) -> dict[str, FunctionInfo]:
    """Every function the parallel runtime can ship to a pool worker.

    Two shapes count as shipping: a direct ``something.submit(f, ...)``
    call, and a ``(f, args)`` tuple used as a dict value in a module
    that references :class:`repro.runtime.Supervisor` — the task-table
    shape both :func:`repro.core.parallel.mine_array_parallel` and
    :func:`repro.core.build_parallel.build_tree_parallel` feed to
    ``Supervisor.run``.
    """
    entries: dict[str, FunctionInfo] = {}

    def _note(target: ast.expr, info: ModuleInfo) -> None:
        if isinstance(target, ast.Name):
            resolved = _resolve_name(index, info, target.id)
            if resolved is not None:
                entries[resolved.qualname] = resolved

    for info in index.repro_modules():
        supervised = _references_supervisor(info)
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                _note(node.args[0], info)
            elif supervised and isinstance(node, ast.Dict):
                for value in node.values:
                    if isinstance(value, ast.Tuple) and value.elts:
                        _note(value.elts[0], info)
            elif supervised and isinstance(node, ast.DictComp):
                if isinstance(node.value, ast.Tuple) and node.value.elts:
                    _note(node.value.elts[0], info)
    return entries


# ----------------------------------------------------------------------
# Transitive call-graph walk
# ----------------------------------------------------------------------


def reachable_functions(
    index: ProgramIndex, entries: dict[str, FunctionInfo]
) -> dict[str, str]:
    """Map of reachable function qualname -> the entry it is reached from."""
    reached: dict[str, str] = {}
    queue: deque[tuple[FunctionInfo, str]] = deque(
        (func, func.qualname) for __, func in sorted(entries.items())
    )
    while queue:
        func, entry = queue.popleft()
        if func.qualname in reached:
            continue
        reached[func.qualname] = entry
        info = index.modules.get(func.module)
        if info is None:
            continue
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = index.resolve_call(info, node)
            if resolved is not None:
                if resolved.qualname not in reached:
                    queue.append((resolved, entry))
                continue
            if isinstance(node.func, ast.Attribute):
                for method in index.methods_by_name.get(node.func.attr, []):
                    if method.qualname not in reached:
                        queue.append((method, entry))
    return reached


# ----------------------------------------------------------------------
# Per-function effect checks
# ----------------------------------------------------------------------


class _EffectChecker:
    """Checks one reachable function for cross-process side effects."""

    def __init__(
        self, func: FunctionInfo, info: ModuleInfo, entry: str
    ) -> None:
        self.func = func
        self.info = info
        self.entry = entry
        self.findings: list[Finding] = []
        self._globals = self._declared_globals()
        self._locals = self._local_names()
        self._tainted = self._tainted_names()

    # -- scope collection ----------------------------------------------

    def _declared_globals(self) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(self.func.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names.update(node.names)
        return names

    def _local_names(self) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.arg):
                names.add(node.arg)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
        return names - self._globals

    def _tainted_names(self) -> set[str]:
        """Names holding attached shared-memory state (fixpoint)."""
        assignments: list[tuple[list[str], ast.expr]] = []
        for node in ast.walk(self.func.node):
            value: ast.expr | None = None
            targets: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                if isinstance(node.target, ast.Name):
                    targets = [node.target.id]
            if value is not None and targets:
                assignments.append((targets, value))
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for targets, value in assignments:
                if self._taints(value, tainted):
                    for name in targets:
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        return tainted

    def _taints(self, node: ast.expr, tainted: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self._taints(node.value, tainted)
        if isinstance(node, ast.Call):
            called = _called_name(node.func)
            if called in _ATTACH_PROVIDERS:
                return True
            if isinstance(node.func, ast.Attribute) and self._taints(
                node.func.value, tainted
            ):
                return True  # e.g. base[...].cast("Q")
            return any(
                self._taints(arg, tainted)
                for arg in node.args
                if isinstance(arg, (ast.Name, ast.Attribute, ast.Subscript, ast.Call))
            )
        return False

    # -- environment chain detection ------------------------------------

    def _is_environ(self, node: ast.expr) -> bool:
        """True for expressions denoting ``os.environ``."""
        if isinstance(node, ast.Attribute) and node.attr == "environ":
            return isinstance(node.value, ast.Name) and node.value.id == "os"
        if isinstance(node, ast.Name):
            return self.info.imports.get(node.id) == "os:environ"
        return False

    # -- reporting -------------------------------------------------------

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.info.module,
                getattr(node, "lineno", 0),
                code,
                f"{message} (reachable from worker entry "
                f"'{self.entry}' via '{self.func.qualname}')",
            )
        )

    # -- the walk --------------------------------------------------------

    def check(self) -> list[Finding]:
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_store(target, node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._check_store(node.target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and self._is_environ(
                        target.value
                    ):
                        self._add(node, "EFF003", "deletes an os.environ entry")
            elif isinstance(node, ast.Call):
                self._check_call(node)
        return self.findings

    def _check_store(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, node)
            return
        if isinstance(target, ast.Starred):
            self._check_store(target.value, node)
            return
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self._add(
                    node,
                    "EFF001",
                    f"writes module-level global {target.id!r}",
                )
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        if isinstance(target, ast.Subscript) and self._is_environ(target.value):
            self._add(node, "EFF003", "mutates os.environ")
            return
        root = _root_name(target)
        if root is None:
            return
        if isinstance(target, ast.Subscript) and root in self._tainted:
            self._add(
                node,
                "EFF002",
                "writes into an attached shared-memory buffer "
                f"(through {root!r})",
            )
            return
        if root in self._globals or (
            root not in self._locals
            and (root in self.info.module_globals or root in self.info.imports)
        ):
            self._add(
                node,
                "EFF001",
                f"stores through module-level name {root!r}",
            )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _ENVIRON_MUTATORS and self._is_environ(func.value):
                self._add(node, "EFF003", f"mutates os.environ via .{func.attr}()")
                return
            if (
                func.attr in _OS_ENV_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                self._add(node, "EFF003", f"mutates the environment via os.{func.attr}()")
                return
        self._check_rng(node)

    def _check_rng(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            binding = self.info.imports.get(base, "")
            if binding == "random" or base == "random":
                if func.attr in _RNG_FUNCS:
                    self._add(
                        node,
                        "EFF004",
                        f"shared-global RNG call random.{func.attr}()",
                    )
                elif func.attr == "Random" and not node.args:
                    self._add(node, "EFF004", "unseeded random.Random()")
            return
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and self.info.imports.get(func.value.value.id, "") == "numpy"
        ):
            if func.attr == "default_rng" and node.args:
                return
            self._add(
                node,
                "EFF004",
                f"unseeded numpy.random.{func.attr}() call",
            )
            return
        if isinstance(func, ast.Name):
            binding = self.info.imports.get(func.id, "")
            if binding.startswith("random:"):
                attr = binding.split(":", 1)[1]
                if attr in _RNG_FUNCS:
                    self._add(
                        node,
                        "EFF004",
                        f"shared-global RNG call {func.id}() (random.{attr})",
                    )
                elif attr == "Random" and not node.args:
                    self._add(node, "EFF004", "unseeded random.Random()")


class WorkerEffectPass:
    """Pass adapter: discover entries, walk, check every reachable function."""

    name = "worker-effect"
    codes = ("EFF001", "EFF002", "EFF003", "EFF004")

    def run(self, index: ProgramIndex) -> list[Finding]:
        entries = discover_worker_entries(index)
        reached = reachable_functions(index, entries)
        findings: list[Finding] = []
        for qualname in sorted(reached):
            func = index.functions.get(qualname)
            if func is None:
                continue
            info = index.modules.get(func.module)
            if info is None:
                continue
            checker = _EffectChecker(func, info, reached[qualname])
            findings.extend(
                filter_suppressed(checker.check(), info.source_lines)
            )
        return findings


__all__ = [
    "WorkerEffectPass",
    "discover_worker_entries",
    "reachable_functions",
]
