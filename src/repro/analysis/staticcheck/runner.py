"""Analyzer entry point: build the index once, run the selected passes.

Used three ways, all converging on :func:`run`:

* ``python -m repro.analysis.staticcheck [paths...]`` — the CLI, with
  ``--json`` for machine-readable findings and ``--select`` to filter
  passes by name or rule code;
* ``repro check --static`` — the packaged CLI surface;
* ``tools/lint_invariants.py`` — the legacy shim, which pins
  ``--select invariants`` semantics through the compat helpers in
  :mod:`repro.analysis.staticcheck.passes.invariants`.

``--dump-registries`` prints the extracted string registries (fault
sites, metric counters, span names, ``REPRO_*`` variables) as JSON —
the source of the generated tables in docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.staticcheck.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    findings_to_json,
)
from repro.analysis.staticcheck.index import ProgramIndex, SourceParseError
from repro.analysis.staticcheck.passes import Pass, all_passes
from repro.analysis.staticcheck.passes.drift import (
    collect_env_vars,
    collect_fault_sites,
    collect_metric_names,
    collect_span_names,
    declared_sites,
)


def default_repo_root() -> Path:
    """The repository root this package is installed from (``src/..``)."""
    return Path(__file__).resolve().parents[4]


def default_paths(repo_root: Path) -> list[Path]:
    """The analysis roots the old linter covered by default."""
    candidates = [repo_root / "src" / "repro", repo_root / "tools"]
    benchmarks = repo_root / "benchmarks"
    if benchmarks.is_dir():
        candidates.append(benchmarks)
    return [path for path in candidates if path.exists()]


def select_passes(selectors: list[str] | None) -> list[Pass]:
    """Filter the registry by pass name or rule-code prefix."""
    battery = all_passes()
    if not selectors:
        return battery
    wanted = {selector.strip() for selector in selectors if selector.strip()}
    selected = [
        candidate
        for candidate in battery
        if candidate.name in wanted
        or any(code in wanted for code in candidate.codes)
    ]
    unknown = wanted - {c.name for c in battery} - {
        code for c in battery for code in c.codes
    }
    if unknown:
        raise ValueError(
            f"unknown pass selector(s): {', '.join(sorted(unknown))}"
        )
    return selected


def run(
    paths: list[Path],
    repo_root: Path,
    selectors: list[str] | None = None,
) -> list[Finding]:
    """Index ``paths`` and run the selected passes; findings are sorted."""
    index = ProgramIndex.build(repo_root, paths)
    findings: list[Finding] = []
    for analysis_pass in select_passes(selectors):
        findings.extend(analysis_pass.run(index))
    return sorted(
        set(findings), key=lambda f: (f.path, f.line, f.code, f.message)
    )


def dump_registries(paths: list[Path], repo_root: Path) -> str:
    """The extracted string registries as deterministic JSON."""
    index = ProgramIndex.build(repo_root, paths)
    sites = declared_sites(index)
    metrics = collect_metric_names(index)
    payload = {
        "fault_sites": sorted(
            {site.name for site in collect_fault_sites(index)}
        ),
        "declared_sites": sorted(sites) if sites is not None else None,
        "metric_counters": sorted(
            {m.name for m in metrics if not m.is_prefix}
        ),
        "metric_prefixes": sorted({m.name for m in metrics if m.is_prefix}),
        "span_names": sorted(collect_span_names(index)),
        "env_vars": sorted(collect_env_vars(index)),
    }
    return json.dumps(payload, indent=2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-staticcheck",
        description="whole-program static analysis for the repro package",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro, tools, "
        "benchmarks under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for docs/tests cross-checks "
        "(default: this checkout)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PASS|CODE",
        help="run only the named passes / rule codes (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="list passes and exit"
    )
    parser.add_argument(
        "--dump-registries",
        action="store_true",
        help="print the extracted string registries as JSON and exit",
    )
    args = parser.parse_args(argv)
    if args.list_passes:
        for candidate in all_passes():
            print(f"{candidate.name}: {', '.join(candidate.codes)}")
        return EXIT_CLEAN
    repo_root = (args.root or default_repo_root()).resolve()
    paths = [path.resolve() for path in args.paths] or default_paths(repo_root)
    if not paths:
        print(f"error: no analysis roots under {repo_root}", file=sys.stderr)
        return EXIT_ERROR
    try:
        if args.dump_registries:
            print(dump_registries(paths, repo_root))
            return EXIT_CLEAN
        findings = run(paths, repo_root, args.select)
    except (SourceParseError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
