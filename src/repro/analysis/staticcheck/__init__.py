"""Whole-program static analysis for the repro package.

Grown out of ``tools/lint_invariants.py`` (now a thin shim): one
:class:`~repro.analysis.staticcheck.index.ProgramIndex` is built per
run, and pluggable passes share it plus common finding / suppression /
exit-code machinery. See docs/static-analysis.md for every rule id.

Passes:

* ``invariants`` — INV001–INV008, the byte-format layering rules.
* ``worker-effect`` — EFF001–EFF004, the race checker over code
  reachable from pool-worker entry points.
* ``fault-site-drift`` / ``metric-drift`` / ``env-var-drift`` —
  DRIFT001–DRIFT003, string-registry cross-checks against docs and
  tests.
"""

from __future__ import annotations

from repro.analysis.staticcheck.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    filter_suppressed,
    findings_to_json,
    is_suppressed,
    suppressed_codes,
)
from repro.analysis.staticcheck.index import (
    FunctionInfo,
    ModuleInfo,
    ProgramIndex,
    SourceParseError,
)
from repro.analysis.staticcheck.passes import Pass, all_passes
from repro.analysis.staticcheck.runner import (
    default_paths,
    default_repo_root,
    dump_registries,
    main,
    run,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Finding",
    "FunctionInfo",
    "ModuleInfo",
    "Pass",
    "ProgramIndex",
    "SourceParseError",
    "all_passes",
    "default_paths",
    "default_repo_root",
    "dump_registries",
    "filter_suppressed",
    "findings_to_json",
    "is_suppressed",
    "main",
    "run",
    "suppressed_codes",
]
