"""Shared finding/suppression/exit-code machinery for the static analyzer.

Every pass reports :class:`Finding` records — the same shape the old
``tools/lint_invariants.py`` printed (``path:line: CODE message``) so the
migration is invisible to humans and CI log scrapers alike. On top of
that the subsystem adds:

* **Suppressions.** A trailing ``# lint: ignore[CODE]`` comment on the
  offending line silences a finding. Brackets may carry several codes
  (``# lint: ignore[INV004, EFF001]``), and the marker may sit anywhere
  in the line's trailing comment, so explanatory text after the bracket
  is fine.
* **JSON output.** :func:`findings_to_json` renders findings as a stable
  machine-readable list for CI annotation tooling.
* **Exit codes.** ``0`` clean, ``1`` findings, ``2`` usage error or
  unparsable source — identical to the old linter's contract.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

#: Exit code when no findings survive suppression.
EXIT_CLEAN = 0
#: Exit code when at least one finding is reported.
EXIT_FINDINGS = 1
#: Exit code for usage errors and unparsable source files.
EXIT_ERROR = 2

#: A suppression marker: ``lint: ignore[CODE]`` or ``lint: ignore[A, B]``.
_SUPPRESS_RE = re.compile(r"lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, pinned to a file and line."""

    path: str  #: repo-relative posix path (``repro/...`` for src modules)
    line: int
    code: str  #: rule id (``INV001``..., ``EFF001``..., ``DRIFT001``...)
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-able representation (stable key order via dataclass order)."""
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }


def suppressed_codes(line: str) -> frozenset[str]:
    """Every rule code suppressed by markers on ``line``.

    Multiple markers and multiple comma-separated codes per marker all
    accumulate; an empty set means the line suppresses nothing.
    """
    codes: set[str] = set()
    for match in _SUPPRESS_RE.finditer(line):
        for code in match.group(1).split(","):
            code = code.strip()
            if code:
                codes.add(code)
    return frozenset(codes)


def is_suppressed(finding: Finding, source_lines: list[str]) -> bool:
    """True when the finding's source line carries a matching marker."""
    if not 1 <= finding.line <= len(source_lines):
        return False
    return finding.code in suppressed_codes(source_lines[finding.line - 1])


def filter_suppressed(
    findings: list[Finding], source_lines: list[str]
) -> list[Finding]:
    """Drop findings whose line carries a matching suppression marker."""
    return [f for f in findings if not is_suppressed(f, source_lines)]


def findings_to_json(findings: list[Finding]) -> str:
    """Render findings as a deterministic JSON array."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.code, f.message))
    return json.dumps([f.to_dict() for f in ordered], indent=2)


__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "Finding",
    "suppressed_codes",
    "is_suppressed",
    "filter_suppressed",
    "findings_to_json",
]
