"""Offline fsck for CFP store files and buffer-pool runtime state.

:func:`check_file` opens a page file, sniffs the magic, and verifies every
level of the on-disk format without trusting the loaders' happy path:

* file geometry: non-empty, a whole number of pages, exactly the page
  count the header implies (``STO001``/``STO005``),
* identification: known magic and supported format version
  (``STO002``/``STO003``),
* header integrity: the header fits the file, metadata parses and is
  sane (``STO004``/``STO012``/``STO013``),
* page checksums: every content page's CRC32 matches the version-2
  trailer (``STO010``),
* partitioned (v3) arrays: the partition manifest is consistent —
  contiguous rank coverage, byte extents matching the item index,
  non-overlapping page extents (``STO006``) — and every partition's
  manifest CRC32 matches its payload (``STO011``),
* deep structure (``deep=True``): the payload is handed to the format
  checkers — :mod:`repro.analysis.arraycheck` for CFP-arrays (``ARR0xx``
  codes), arena restore plus :func:`repro.core.validate.validate_tree`
  for CFP-tree checkpoints (``STO020``/``TRE001``).

Like every checker in this package, findings are *reported*, not raised:
a corrupt file yields a :class:`StoreCheckReport` full of diagnostics,
while OS-level errors (missing file, permission) propagate to the caller,
which distinguishes "unreadable" from "corrupt" exit codes.

:func:`check_bufferpool` audits a live :class:`~repro.storage.BufferPool`
against its own accounting (``BUF0xx``).
"""

from __future__ import annotations

import json
import os
import struct

from dataclasses import dataclass

from repro.analysis.arraycheck import ArrayCheckReport, check_array_parts
from repro.analysis.diagnostics import DiagnosticSink
from repro.core.validate import ValidationReport, validate_tree
from repro.errors import ReproError
from repro.memman.pointers import POINTER_SIZE
from repro.storage.bufferpool import BufferPool
from repro.storage.cfp_store import (
    _ARRAY_MAGIC,
    _TREE_MAGIC,
    PARTITIONED_FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    PartitionInfo,
    StorageFormatError,
    TreeHeader,
    _header_pages,
    _parse_partition_manifest,
    iter_checksum_mismatches,
    pages_needed,
    read_partition_bytes,
    restore_tree,
    trailer_pages,
)
from repro.storage.pagefile import PAGE_SIZE, PageFile

#: Integer metadata fields a CFP-tree checkpoint must carry.
_TREE_INT_FIELDS = (
    "n_ranks",
    "max_chain_length",
    "logical_node_count",
    "transaction_count",
    "root_slot",
    "next_free",
    "free_bytes",
    "capacity",
    "max_chunk_size",
)


@dataclass
class StoreCheckReport(DiagnosticSink):
    """Findings of one store-file verification."""

    path: str = ""
    kind: str = "unknown"
    """``cfp-array``, ``cfp-tree``, or ``unknown`` (bad magic/geometry)."""

    version: int | None = None
    page_count: int = 0
    checksummed: bool = False
    """True when the file carries a version-2 checksum trailer."""

    array_report: ArrayCheckReport | None = None
    tree_report: ValidationReport | None = None


def check_file(path: str | os.PathLike[str], deep: bool = True) -> StoreCheckReport:
    """Verify one store file; ``deep`` additionally decodes the payload.

    OS errors (missing file, unreadable path) propagate; every format
    problem is reported as a diagnostic on the returned report.
    """
    report = StoreCheckReport(path=os.fspath(path))
    size = os.path.getsize(path)
    if size == 0 or size % PAGE_SIZE:
        report.add(
            "STO001",
            f"file size {size} is not a positive multiple of the "
            f"{PAGE_SIZE}-byte page size",
        )
        return report
    with PageFile.open_readonly(path) as pagefile:
        report.page_count = pagefile.page_count
        magic = pagefile.read_page(0)[:4]
        if magic == _ARRAY_MAGIC:
            report.kind = "cfp-array"
            _check_array_file(pagefile, report, deep)
        elif magic == _TREE_MAGIC:
            report.kind = "cfp-tree"
            _check_tree_file(pagefile, report, deep)
        else:
            report.add("STO002", f"unknown magic {bytes(magic)!r}")
    return report


# ----------------------------------------------------------------------
# Shared geometry/checksum steps
# ----------------------------------------------------------------------

def _check_geometry(
    pagefile: PageFile, report: StoreCheckReport, content_pages: int
) -> bool:
    """Page-count and checksum checks; False when the payload is truncated."""
    expected = content_pages
    if report.checksummed:
        expected += trailer_pages(content_pages)
    if pagefile.page_count != expected:
        report.add(
            "STO005",
            f"file has {pagefile.page_count} pages, header implies "
            f"{expected} ({content_pages} content)",
        )
    truncated = pagefile.page_count < content_pages
    if report.checksummed and not truncated:
        try:
            for page_no, stored, actual in iter_checksum_mismatches(
                pagefile, content_pages
            ):
                report.add(
                    "STO010",
                    f"CRC32 mismatch: stored {stored:#010x}, "
                    f"computed {actual:#010x}",
                    f"page {page_no}",
                )
        except StorageFormatError as exc:
            report.add("STO005", str(exc))
    return not truncated


def _read_pages(pagefile: PageFile, first: int, last: int) -> bytes:
    blob = bytearray()
    for page_no in range(first, last):
        blob += pagefile.read_page(page_no)
    return bytes(blob)


# ----------------------------------------------------------------------
# CFP-array files
# ----------------------------------------------------------------------

def _check_array_file(
    pagefile: PageFile, report: StoreCheckReport, deep: bool
) -> None:
    first = pagefile.read_page(0)
    version = struct.unpack_from("<I", first, 4)[0]
    report.version = version
    if version not in SUPPORTED_VERSIONS:
        report.add("STO003", f"unsupported CFP-array version {version}")
        return
    report.checksummed = version >= 2
    n_partitions = 0
    if version >= PARTITIONED_FORMAT_VERSION:
        n_partitions = struct.unpack_from("<I", first, 8)[0]
    n_ranks, buffer_len = struct.unpack_from("<QQ", first, 12)
    header_pages = _header_pages(n_ranks, n_partitions)
    if header_pages > pagefile.page_count:
        report.add(
            "STO004",
            f"header ({header_pages} pages for {n_ranks} ranks, "
            f"{n_partitions} partitions) exceeds the file "
            f"({pagefile.page_count} pages)",
        )
        return
    header = _read_pages(pagefile, 0, header_pages)
    starts = list(struct.unpack_from(f"<{n_ranks + 2}Q", header, 28))
    partitions: tuple[PartitionInfo, ...] = ()
    if version >= PARTITIONED_FORMAT_VERSION:
        try:
            partitions = _parse_partition_manifest(
                header, n_ranks, n_partitions, starts, header_pages
            )
        except StorageFormatError as exc:
            report.add("STO006", str(exc))
            return
        content_pages = header_pages + sum(part.pages for part in partitions)
    else:
        content_pages = header_pages + pages_needed(buffer_len)
    payload_readable = _check_geometry(pagefile, report, content_pages)
    if not deep or not payload_readable:
        return
    if version >= PARTITIONED_FORMAT_VERSION:
        # Reassemble the buffer in rank order, verifying each partition's
        # manifest CRC on top of the page-checksum trailer above.
        assembled = bytearray(buffer_len)
        corrupt = False
        for part in partitions:
            try:
                data = read_partition_bytes(pagefile, part)
            except StorageFormatError as exc:
                report.add("STO011", str(exc))
                corrupt = True
                continue
            lo = starts[part.first_rank]
            assembled[lo : lo + part.byte_len] = data
        if corrupt:
            return
        payload = bytes(assembled)
    else:
        payload = _read_pages(pagefile, header_pages, content_pages)
        if buffer_len > len(payload):
            report.add(
                "STO005",
                f"declared buffer length {buffer_len} exceeds the "
                f"{len(payload)} payload bytes on disk",
            )
            return
    array_report = check_array_parts(n_ranks, payload[:buffer_len], starts)
    report.array_report = array_report
    report.diagnostics.extend(array_report.diagnostics)


# ----------------------------------------------------------------------
# CFP-tree checkpoints
# ----------------------------------------------------------------------

def _check_tree_meta(report: StoreCheckReport, meta: dict[str, object]) -> bool:
    """Sanity-check checkpoint metadata; False when restoring is hopeless."""
    for name in _TREE_INT_FIELDS:
        value = meta.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            report.add(
                "STO013", f"metadata field {name!r} missing or not an integer"
            )
            return False
    if not isinstance(meta.get("free_heads"), dict):
        report.add("STO013", "metadata field 'free_heads' missing or not a map")
        return False
    usable = True
    next_free = int(meta["next_free"])  # type: ignore[arg-type]
    capacity = int(meta["capacity"])  # type: ignore[arg-type]
    root_slot = int(meta["root_slot"])  # type: ignore[arg-type]
    if not 8 <= next_free <= capacity:
        report.add(
            "STO013",
            f"next_free {next_free} outside the arena range [8, {capacity}]",
        )
        usable = False
    if root_slot < 0 or root_slot + POINTER_SIZE > next_free:
        report.add(
            "STO013",
            f"root_slot {root_slot} outside the used region "
            f"[0, {next_free - POINTER_SIZE}]",
        )
        usable = False
    for name in ("n_ranks", "logical_node_count", "transaction_count", "free_bytes"):
        if int(meta[name]) < 0:  # type: ignore[arg-type]
            report.add("STO013", f"metadata field {name!r} is negative")
            usable = False
    return usable


def _check_tree_file(
    pagefile: PageFile, report: StoreCheckReport, deep: bool
) -> None:
    first = pagefile.read_page(0)
    version, meta_len = struct.unpack_from("<IQ", first, 4)
    report.version = version
    if version not in SUPPORTED_VERSIONS:
        report.add("STO003", f"unsupported CFP-tree version {version}")
        return
    report.checksummed = version >= 2
    header_pages = pages_needed(16 + meta_len)
    if header_pages > pagefile.page_count:
        report.add(
            "STO004",
            f"header ({header_pages} pages for a {meta_len}-byte metadata "
            f"blob) exceeds the file ({pagefile.page_count} pages)",
        )
        return
    header = _read_pages(pagefile, 0, header_pages)
    try:
        meta = json.loads(header[16 : 16 + meta_len].decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        report.add("STO012", f"checkpoint metadata is not valid JSON: {exc}")
        return
    if not isinstance(meta, dict):
        report.add("STO012", "checkpoint metadata is not a JSON object")
        return
    if not _check_tree_meta(report, meta):
        return
    content_pages = header_pages + pages_needed(int(meta["next_free"]))
    payload_readable = _check_geometry(pagefile, report, content_pages)
    if not deep or not payload_readable:
        return
    payload = _read_pages(pagefile, header_pages, content_pages)
    try:
        tree = restore_tree(TreeHeader(version, meta, header_pages), payload)
    except ReproError as exc:
        report.add("STO020", f"checkpoint does not restore: {exc}")
        return
    tree_report = validate_tree(tree, strict=False)
    report.tree_report = tree_report
    for issue in tree_report.issues:
        report.add("TRE001", issue)


# ----------------------------------------------------------------------
# Buffer-pool runtime invariants
# ----------------------------------------------------------------------

def check_bufferpool(pool: BufferPool) -> DiagnosticSink:
    """Audit a live buffer pool against its own accounting."""
    sink = DiagnosticSink()
    resident = pool.resident_page_numbers()
    if len(resident) > pool.capacity_pages:
        sink.add(
            "BUF001",
            f"{len(resident)} resident pages exceed the capacity of "
            f"{pool.capacity_pages}",
        )
    resident_set = set(resident)
    for page_no, pins in sorted(pool.pinned_pages().items()):
        if pins < 1:
            sink.add("BUF002", f"page {page_no} recorded with pin count {pins}")
        if page_no not in resident_set:
            sink.add("BUF002", f"page {page_no} is pinned but not resident")
    stats = pool.stats
    if stats.faults + stats.prefetched - stats.evictions != len(resident):
        sink.add(
            "BUF003",
            f"faults {stats.faults} plus prefetched {stats.prefetched} "
            f"minus evictions {stats.evictions} does not equal the "
            f"{len(resident)} resident pages",
        )
    page_count = pool.pagefile.page_count
    for page_no in resident:
        if not 0 <= page_no < page_count:
            sink.add(
                "BUF004",
                f"resident page {page_no} outside the file range "
                f"[0, {page_count})",
            )
    return sink
