"""Typed diagnostics shared by every static checker in :mod:`repro.analysis`.

A checker never prints and never raises for a *finding* — it returns
:class:`Diagnostic` records, each carrying a stable machine-readable code,
a severity, and a human message. The CLI (``repro check``) renders them and
maps the outcome to a process exit code.

Diagnostic code namespaces:

============  =====================================================
``STO0xx``    store/pagefile level (magic, version, page geometry,
              checksum trailer, header fields)
``ARR0xx``    CFP-array byte format (§4 varint triples + item index)
``TRE0xx``    CFP-tree arena structure (wraps ``core.validate``)
``BUF0xx``    buffer-pool runtime invariants
============  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Exit code: every checked artifact is intact.
EXIT_OK = 0

#: Exit code: at least one error-severity diagnostic was reported.
EXIT_CORRUPT = 1

#: Exit code: bad command-line usage (argparse's convention).
EXIT_USAGE = 2

#: Exit code: a path could not be read at all (missing file, I/O error).
EXIT_UNREADABLE = 3


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker."""

    code: str
    """Stable machine-readable identifier, e.g. ``ARR010``."""

    message: str
    """Human-readable description of the finding."""

    location: str = ""
    """Where in the artifact, e.g. ``page 3`` or ``rank 7 local 12``."""

    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location else ""
        return f"{self.severity.value} {self.code}{where}: {self.message}"

    def to_dict(self) -> dict[str, str]:
        """JSON-ready representation (used by ``repro check --json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics; shared base for the checker reports."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was recorded."""
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    def codes(self) -> set[str]:
        """Distinct diagnostic codes recorded (corruption *classes*)."""
        return {d.code for d in self.diagnostics}

    def add(
        self,
        code: str,
        message: str,
        location: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.diagnostics.append(Diagnostic(code, message, location, severity))
