"""Datasets: FIMI format I/O, the Quest generator, and FIMI proxies (§4.1).

The paper evaluates on the FIMI repository's real datasets (retail,
connect, kosarak, accidents, webdocs) and two synthetic datasets from the
IBM Quest generator (Quest1/Quest2). This subpackage provides:

* :mod:`repro.datasets.fimi` — reader/writer for the standard FIMI text
  format (one space-separated transaction per line),
* :mod:`repro.datasets.loader` — the asynchronous double-buffered file
  reader the paper uses for data input,
* :mod:`repro.datasets.quest` — a reimplementation of the IBM Quest
  synthetic data model,
* :mod:`repro.datasets.synthetic` — scaled generators mimicking the shape
  of each FIMI real-world dataset (the files themselves are not
  redistributable; a real FIMI file can be dropped in via the reader),
* :mod:`repro.datasets.stats` — per-dataset summary statistics (Table 3).
"""

from repro.datasets.fimi import iter_fimi, read_fimi, write_fimi
from repro.datasets.loader import DoubleBufferedReader
from repro.datasets.quest import QuestGenerator
from repro.datasets.stats import DatasetStats, dataset_stats
from repro.datasets.synthetic import FIMI_PROXIES, make_dataset

__all__ = [
    "read_fimi",
    "iter_fimi",
    "write_fimi",
    "DoubleBufferedReader",
    "QuestGenerator",
    "FIMI_PROXIES",
    "make_dataset",
    "DatasetStats",
    "dataset_stats",
]
