"""Dataset summary statistics (paper Table 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.items import TransactionDatabase, count_items


@dataclass
class DatasetStats:
    """The columns of Table 3, plus FIMI-format size estimate."""

    name: str
    n_transactions: int
    avg_item_cardinality: float
    distinct_items: int
    fimi_bytes: int
    """Estimated size in FIMI text format (digits + separators)."""

    def row(self) -> str:
        """One Table-3-style text row."""
        return (
            f"{self.name:<12} {self.n_transactions:>10,} "
            f"{self.avg_item_cardinality:>8.2f} {self.distinct_items:>9,} "
            f"{_human_bytes(self.fimi_bytes):>10}"
        )


def dataset_stats(name: str, database: TransactionDatabase) -> DatasetStats:
    """Compute Table-3 statistics for one database."""
    n_transactions = len(database)
    total_items = sum(len(set(t)) for t in database)
    counts = count_items(database)
    fimi_bytes = sum(
        sum(len(str(item)) + 1 for item in set(t)) for t in database
    )
    return DatasetStats(
        name=name,
        n_transactions=n_transactions,
        avg_item_cardinality=(total_items / n_transactions) if n_transactions else 0.0,
        distinct_items=len(counts),
        fimi_bytes=fimi_bytes,
    )


def _human_bytes(size: int) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if size < 1024:
            return f"{size:.0f}{unit}" if unit == "B" else f"{size:.1f}{unit}"
        size /= 1024
    return f"{size:.1f}TB"
