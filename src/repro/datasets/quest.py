"""IBM Quest-style synthetic transaction generator (paper §4.1, Table 3).

A reimplementation of the classic Agrawal-Srikant market-basket model the
IBM Quest Dataset Generator uses:

1. A pool of ``n_patterns`` *potentially frequent itemsets* is drawn; each
   pattern's length is Poisson-distributed around ``avg_pattern_length``,
   and a fraction of its items is inherited from the previous pattern
   (overlap/correlation), the rest drawn uniformly.
2. Patterns receive exponentially distributed weights (normalized).
3. Each transaction draws a Poisson length around
   ``avg_transaction_length`` and is filled by weighted pattern picks;
   each pick is *corrupted* — items are dropped with the pattern's
   corruption level — and a pattern that overflows the remaining length is
   kept anyway half the time (as in the original generator).

The paper's Quest1 (25M x 100 items avg, 20k distinct) and Quest2 (2x the
transactions) are expressed as scaled presets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import DatasetError


@dataclass
class QuestGenerator:
    """Configurable Quest-model generator (deterministic per seed)."""

    n_transactions: int = 10_000
    avg_transaction_length: float = 10.0
    avg_pattern_length: float = 4.0
    n_items: int = 1_000
    n_patterns: int = 200
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    seed: int = 0

    _patterns: list[list[int]] = field(init=False, repr=False)
    _corruptions: list[float] = field(init=False, repr=False)
    _cumulative_weights: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise DatasetError("n_transactions must be non-negative")
        if self.n_items < 1:
            raise DatasetError("n_items must be positive")
        if self.n_patterns < 1:
            raise DatasetError("n_patterns must be positive")
        if self.avg_transaction_length <= 0 or self.avg_pattern_length <= 0:
            raise DatasetError("average lengths must be positive")
        rng = random.Random(self.seed)
        self._patterns = self._draw_patterns(rng)
        self._corruptions = [
            min(0.98, max(0.0, rng.gauss(self.corruption_mean, self.corruption_sd)))
            for __ in self._patterns
        ]
        weights = [rng.expovariate(1.0) for __ in self._patterns]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative_weights = cumulative

    def _draw_patterns(self, rng: random.Random) -> list[list[int]]:
        patterns = []
        previous: list[int] = []
        for __ in range(self.n_patterns):
            length = max(1, _poisson(rng, self.avg_pattern_length))
            length = min(length, self.n_items)
            pattern: set[int] = set()
            if previous:
                # Exponentially distributed inherited fraction (Quest model).
                inherited = min(
                    len(previous),
                    int(length * min(1.0, rng.expovariate(1.0) * self.correlation)),
                )
                pattern.update(rng.sample(previous, inherited))
            while len(pattern) < length:
                pattern.add(rng.randrange(self.n_items))
            ordered = sorted(pattern)
            patterns.append(ordered)
            previous = ordered
        return patterns

    def _pick_pattern(self, rng: random.Random) -> int:
        point = rng.random()
        low, high = 0, len(self._cumulative_weights) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative_weights[mid] < point:
                low = mid + 1
            else:
                high = mid
        return low

    def generate(self) -> list[list[int]]:
        """Materialize the whole database."""
        return list(self.iter_transactions())

    def iter_transactions(self):
        """Generate transactions lazily (stable for a given seed)."""
        rng = random.Random(self.seed + 1)
        for __ in range(self.n_transactions):
            target = max(1, _poisson(rng, self.avg_transaction_length))
            transaction: set[int] = set()
            guard = 0
            while len(transaction) < target and guard < 8 * target:
                guard += 1
                pattern = self._patterns[self._pick_pattern(rng)]
                corruption = self._corruptions[self._pick_pattern(rng)]
                kept = [item for item in pattern if rng.random() >= corruption]
                if not kept:
                    continue
                if len(transaction) + len(kept) > target and transaction:
                    # Overflowing pattern: keep it anyway half the time.
                    if rng.random() < 0.5:
                        break
                transaction.update(kept)
            if not transaction:
                transaction.add(rng.randrange(self.n_items))
            yield sorted(transaction)

    @classmethod
    def quest1(cls, scale: float = 1.0, seed: int = 101) -> "QuestGenerator":
        """Scaled Quest1 (paper: 25M transactions, 100 avg, 20k items).

        ``scale = 1.0`` yields a laptop-size stand-in (25k transactions)
        preserving the length/item-count regime.
        """
        return cls(
            n_transactions=int(25_000 * scale),
            avg_transaction_length=40.0,
            avg_pattern_length=8.0,
            n_items=2_000,
            n_patterns=400,
            seed=seed,
        )

    @classmethod
    def quest2(cls, scale: float = 1.0, seed: int = 101) -> "QuestGenerator":
        """Scaled Quest2: exactly twice Quest1's transactions (§4.1)."""
        generator = cls.quest1(scale, seed)
        generator.n_transactions *= 2
        generator.__post_init__()
        return generator


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (sufficient for the means used here)."""
    if mean > 60:
        # Normal approximation keeps the sampler O(1) for long transactions.
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    limit = math.exp(-mean)
    product = rng.random()
    count = 0
    while product > limit:
        product *= rng.random()
        count += 1
    return count
