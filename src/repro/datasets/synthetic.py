"""Scaled proxies for the FIMI real-world datasets (paper §4.1-4.2).

The FIMI files themselves (retail, connect, kosarak, accidents, webdocs)
are not bundled; these generators mimic each dataset's published shape —
transaction count, item universe, average length, density and skew — at
laptop scale, so the compression experiments (Tables 1-2, Figure 6)
exercise the same tree-shape regimes:

============  =========  ============  ===========  =======================
dataset       tx (real)  items (real)  avg length   character
============  =========  ============  ===========  =======================
retail        88k        16,470        10.3         sparse, power-law
connect       67k        129           43 (fixed)   dense, near-duplicate
kosarak       990k       41,270        8.1          click-stream power-law
accidents     340k       468           33.8         dense, moderate skew
webdocs       1.69M      5.2M          177          very long, heavy tail
============  =========  ============  ===========  =======================

Real FIMI files can be substituted at any time through
:func:`repro.datasets.fimi.read_fimi`.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import DatasetError


def _zipf_items(rng: random.Random, n_items: int, skew: float, count: int) -> set[int]:
    """Draw ``count`` distinct items with Zipf-like rank-frequency skew."""
    items: set[int] = set()
    guard = 0
    while len(items) < count and guard < 20 * count:
        guard += 1
        # Inverse-CDF style draw: u^skew concentrates mass on low ids.
        items.add(int(n_items * rng.random() ** skew))
    return items


def make_retail(
    n_transactions: int = 4_000, n_items: int = 1_600, seed: int = 7
) -> list[list[int]]:
    """Sparse market-basket data: power-law items, short transactions."""
    rng = random.Random(seed)
    database = []
    for __ in range(n_transactions):
        length = max(1, min(int(rng.lognormvariate(2.0, 0.7)), 60))
        database.append(sorted(_zipf_items(rng, n_items, 3.0, length)))
    return database


def make_connect(
    n_transactions: int = 3_000, n_items: int = 130, seed: int = 11
) -> list[list[int]]:
    """Dense fixed-length data: near-duplicate game-state vectors.

    Each transaction takes a base vector (43 of 130 items) and mutates a
    few positions — producing the massive prefix sharing that makes
    connect's FP-trees tiny relative to the data.
    """
    rng = random.Random(seed)
    length = 43
    n_bases = 40
    bases = [sorted(rng.sample(range(n_items), length)) for __ in range(n_bases)]
    database = []
    for __ in range(n_transactions):
        base = list(bases[rng.randrange(n_bases)])
        for __ in range(rng.randint(0, 4)):
            position = rng.randrange(length)
            replacement = rng.randrange(n_items)
            base[position] = replacement
        database.append(sorted(set(base)))
    return database


def make_kosarak(
    n_transactions: int = 6_000, n_items: int = 4_000, seed: int = 13
) -> list[list[int]]:
    """Click-stream data: heavy power-law, short-to-medium sessions."""
    rng = random.Random(seed)
    database = []
    for __ in range(n_transactions):
        length = max(1, min(int(rng.expovariate(1 / 8.0)) + 1, 200))
        database.append(sorted(_zipf_items(rng, n_items, 4.0, length)))
    return database


def make_accidents(
    n_transactions: int = 3_000, n_items: int = 470, seed: int = 17
) -> list[list[int]]:
    """Dense attribute data: long transactions over a small universe."""
    rng = random.Random(seed)
    # A core of near-universal attributes plus skewed tail attributes.
    core = list(range(20))
    database = []
    for __ in range(n_transactions):
        transaction = {item for item in core if rng.random() < 0.9}
        length = max(5, int(rng.gauss(34, 6)))
        transaction |= _zipf_items(rng, n_items, 2.0, max(0, length - len(transaction)))
        database.append(sorted(transaction))
    return database


def make_webdocs(
    n_transactions: int = 1_500, n_items: int = 20_000, seed: int = 19
) -> list[list[int]]:
    """Web documents: very long transactions, huge sparse vocabulary.

    The long shared runs of globally frequent terms are what give the
    CFP-tree its chain-node payoff on this dataset (§4.2).
    """
    rng = random.Random(seed)
    database = []
    for __ in range(n_transactions):
        length = max(10, min(int(rng.lognormvariate(4.4, 0.6)), 600))
        database.append(sorted(_zipf_items(rng, n_items, 3.5, length)))
    return database


def make_quest1(scale: float = 0.2, seed: int = 101) -> list[list[int]]:
    """Scaled Quest1 (lazy import avoids a cycle at package load)."""
    from repro.datasets.quest import QuestGenerator

    return QuestGenerator.quest1(scale, seed).generate()


def make_quest2(scale: float = 0.2, seed: int = 101) -> list[list[int]]:
    """Scaled Quest2 — twice Quest1's transactions."""
    from repro.datasets.quest import QuestGenerator

    return QuestGenerator.quest2(scale, seed).generate()


#: The evaluation datasets of §4.2's Figure 6, by paper name.
FIMI_PROXIES: dict[str, Callable[..., list[list[int]]]] = {
    "retail": make_retail,
    "connect": make_connect,
    "kosarak": make_kosarak,
    "accidents": make_accidents,
    "webdocs": make_webdocs,
    "quest1": make_quest1,
    "quest2": make_quest2,
}


def make_dataset(name: str, **kwargs) -> list[list[int]]:
    """Generate a named dataset proxy."""
    try:
        factory = FIMI_PROXIES[name]
    except KeyError:
        known = ", ".join(sorted(FIMI_PROXIES))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    return factory(**kwargs)
