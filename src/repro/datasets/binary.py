"""Binary dataset format (paper §4.1's footnote).

The paper notes that replacing the text input by binary files would cut
file size by roughly 40% (though the build would stay I/O bound). This
module implements that format: magic ``FIMB``, a varint transaction count,
then per transaction a varint length followed by the item ids
delta-encoded (sorted ascending) as varints — deltas keep most item
bytes at one.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.compress import varint
from repro.errors import DatasetError

_MAGIC = b"FIMB"


def write_binary(path: str | os.PathLike, database: Iterable[Iterable[int]]) -> int:
    """Write a database in binary form; returns bytes written."""
    transactions = []
    for transaction in database:
        items = sorted(set(transaction))
        if not items:
            continue
        if items[0] < 0:
            raise DatasetError(f"binary format requires non-negative items: {items[:4]}")
        transactions.append(items)
    blob = bytearray(_MAGIC)
    blob += varint.encode(len(transactions))
    for items in transactions:
        blob += varint.encode(len(items))
        previous = 0
        for item in items:
            blob += varint.encode(item - previous)
            previous = item
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def read_binary(path: str | os.PathLike) -> list[list[int]]:
    """Read a binary database written by :func:`write_binary`."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[:4] != _MAGIC:
        raise DatasetError(f"{path}: not a binary dataset (bad magic)")
    offset = 4
    count, offset = varint.decode_from(blob, offset)
    database = []
    for __ in range(count):
        length, offset = varint.decode_from(blob, offset)
        items = []
        previous = 0
        for __ in range(length):
            delta, offset = varint.decode_from(blob, offset)
            previous += delta
            items.append(previous)
        database.append(items)
    if offset != len(blob):
        raise DatasetError(f"{path}: {len(blob) - offset} trailing bytes")
    return database
