"""Reader/writer for the standard FIMI dataset format (§4.1).

Each line of a FIMI file is one transaction: the items' integer ids
separated by single spaces. The paper notes the average storage per item
occurrence is below 6 bytes in this format.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.errors import DatasetError


def iter_fimi(path: str | os.PathLike) -> Iterator[list[int]]:
    """Stream transactions from a FIMI file, skipping blank lines."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield [int(token) for token in stripped.split()]
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: not a FIMI line: {stripped[:60]!r}"
                ) from exc


def read_fimi(path: str | os.PathLike) -> list[list[int]]:
    """Load a whole FIMI file into memory."""
    return list(iter_fimi(path))


def write_fimi(path: str | os.PathLike, database: Iterable[Iterable[int]]) -> int:
    """Write transactions in FIMI format; returns the number written.

    Items within a transaction are written in their given order; empty
    transactions are skipped (they carry no information for mining).
    """
    written = 0
    with open(path, "w", encoding="ascii") as handle:
        for transaction in database:
            items = list(transaction)
            if not items:
                continue
            if any(not isinstance(item, int) or item < 0 for item in items):
                raise DatasetError(
                    f"FIMI items must be non-negative ints: {items[:8]!r}"
                )
            handle.write(" ".join(str(item) for item in items))
            handle.write("\n")
            written += 1
    return written
