"""Asynchronous double-buffered data input (paper §4.1).

The paper's implementation overlaps I/O and parsing with two input buffers:
one being processed while the other is loaded from disk. This class
reproduces that scheme with a reader thread filling a bounded two-slot
queue of raw line blocks while the consumer parses the previous block —
the build phase of the initial tree is I/O bound, so the overlap matters.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Iterator

from repro.errors import DatasetError

#: Default block size read per buffer fill (bytes).
DEFAULT_BLOCK_BYTES = 1 << 20


class DoubleBufferedReader:
    """Iterate FIMI transactions with read-ahead on a background thread.

    Usage::

        with DoubleBufferedReader("data.fimi") as reader:
            for transaction in reader:
                ...
    """

    def __init__(
        self, path: str | os.PathLike, block_bytes: int = DEFAULT_BLOCK_BYTES
    ):
        if block_bytes < 1:
            raise DatasetError(f"block_bytes must be positive, got {block_bytes}")
        self.path = os.fspath(path)
        self.block_bytes = block_bytes
        # Two slots: one block being parsed, one being read — the paper's
        # double buffering.
        self._queue: queue.Queue = queue.Queue(maxsize=2)
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def __enter__(self) -> "DoubleBufferedReader":
        self._thread = threading.Thread(target=self._fill, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None:
            # Drain so the producer can finish and the thread can join.
            while self._thread.is_alive():
                try:
                    self._queue.get(timeout=0.01)
                except queue.Empty:
                    continue
            self._thread.join()
            self._thread = None

    def _fill(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                carry = b""
                while True:
                    block = handle.read(self.block_bytes)
                    if not block:
                        if carry:
                            self._queue.put(carry)
                        break
                    block = carry + block
                    cut = block.rfind(b"\n")
                    if cut < 0:
                        carry = block
                        continue
                    carry, block = block[cut + 1 :], block[: cut + 1]
                    self._queue.put(block)
        except BaseException as exc:  # lint: ignore[INV004] surfaced to the consumer
            self._error = exc
        finally:
            self._queue.put(None)

    def __iter__(self) -> Iterator[list[int]]:
        if self._thread is None:
            raise DatasetError("DoubleBufferedReader must be used as a context manager")
        while True:
            block = self._queue.get()
            if block is None:
                if self._error is not None:
                    error, self._error = self._error, None
                    raise DatasetError(f"read failed: {error}") from error
                return
            for line in block.splitlines():
                if line.strip():
                    yield [int(token) for token in line.split()]
