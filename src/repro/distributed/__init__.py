"""Distributed FP-growth: the paper's research class (4) as a subsystem.

Li et al.'s PFP [17] — the MapReduce-based parallel FP-growth the paper
cites — partitions the frequent items into groups, rewrites every
transaction into *group-dependent* shards, and mines each shard's local
FP-tree independently. This package implements:

* :mod:`repro.distributed.mapreduce` — a deterministic in-process
  MapReduce engine with per-worker record/byte accounting (the substrate;
  the paper's experiments ran on real clusters we do not have),
* :mod:`repro.distributed.pfp` — the three PFP jobs: parallel counting,
  group-dependent shard generation, and per-group CFP-growth mining with
  the group-membership emission rule that makes results exact.
"""

from repro.distributed.mapreduce import JobStats, MapReduceJob
from repro.distributed.pfp import PfpResult, parallel_fp_growth

__all__ = [
    "MapReduceJob",
    "JobStats",
    "parallel_fp_growth",
    "PfpResult",
]
