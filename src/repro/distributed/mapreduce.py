"""A small deterministic MapReduce engine (the PFP substrate).

Executes map -> (combine) -> shuffle -> reduce in-process, with the
dataflow accounting a cluster scheduler would see: records and bytes
emitted per mapper, shuffle volume per partition, records reduced per
reducer. Workers are simulated; determinism (fixed partitioning, sorted
keys) keeps the distributed algorithms testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.errors import ExperimentError

#: A mapper takes one input record and yields (key, value) pairs.
Mapper = Callable[[object], Iterable[tuple[Hashable, object]]]

#: A reducer takes (key, values) and yields output records.
Reducer = Callable[[Hashable, list], Iterable[object]]

#: An optional combiner runs per mapper with reducer semantics.
Combiner = Callable[[Hashable, list], Iterable[tuple[Hashable, object]]]


@dataclass
class JobStats:
    """Dataflow accounting of one job run."""

    input_records: int = 0
    map_output_records: int = 0
    shuffle_bytes: int = 0
    reduce_output_records: int = 0
    records_per_partition: dict[int, int] = field(default_factory=dict)

    @property
    def max_partition_records(self) -> int:
        if not self.records_per_partition:
            return 0
        return max(self.records_per_partition.values())

    @property
    def skew(self) -> float:
        """Max/mean partition load — 1.0 is perfectly balanced."""
        if not self.records_per_partition:
            return 1.0
        loads = list(self.records_per_partition.values())
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean


def _estimate_bytes(key, value) -> int:
    """Rough serialized size of a shuffle record (ints and tuples)."""
    size = 8
    if isinstance(value, (list, tuple)):
        size += 4 * len(value)
    else:
        size += 8
    return size


class MapReduceJob:
    """One configured MapReduce job.

    ``n_partitions`` plays the role of the reducer count; keys are routed
    with ``partitioner`` (default: ``hash(key) % n_partitions``).
    """

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        n_partitions: int = 4,
        combiner: Combiner | None = None,
        partitioner: Callable[[Hashable, int], int] | None = None,
    ):
        if n_partitions < 1:
            raise ExperimentError(f"n_partitions must be >= 1, got {n_partitions}")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.n_partitions = n_partitions
        self.partitioner = partitioner or (lambda key, n: hash(key) % n)

    def run(self, records: Sequence) -> tuple[list, JobStats]:
        """Execute the job; returns (sorted outputs, stats)."""
        stats = JobStats(input_records=len(records))
        stats.records_per_partition = {p: 0 for p in range(self.n_partitions)}
        # Map (+ combine per mapper "task"; one task here, semantics equal).
        intermediate: dict[Hashable, list] = {}
        for record in records:
            for key, value in self.mapper(record):
                stats.map_output_records += 1
                intermediate.setdefault(key, []).append(value)
        if self.combiner is not None:
            combined: dict[Hashable, list] = {}
            for key, values in intermediate.items():
                for out_key, out_value in self.combiner(key, values):
                    combined.setdefault(out_key, []).append(out_value)
            intermediate = combined
        # Shuffle: route keys to partitions, account volume.
        partitions: dict[int, dict[Hashable, list]] = {
            p: {} for p in range(self.n_partitions)
        }
        for key, values in intermediate.items():
            partition = self.partitioner(key, self.n_partitions)
            if not 0 <= partition < self.n_partitions:
                raise ExperimentError(
                    f"partitioner returned {partition} for {self.n_partitions} partitions"
                )
            partitions[partition][key] = values
            for value in values:
                stats.shuffle_bytes += _estimate_bytes(key, value)
            stats.records_per_partition[partition] = stats.records_per_partition.get(
                partition, 0
            ) + len(values)
        # Reduce, deterministically (sorted keys within each partition).
        outputs = []
        for partition in range(self.n_partitions):
            for key in sorted(partitions[partition], key=repr):
                for output in self.reducer(key, partitions[partition][key]):
                    outputs.append(output)
                    stats.reduce_output_records += 1
        return outputs, stats
