"""PFP: parallel FP-growth over MapReduce (paper §5, Li et al. [17]).

Three jobs, as in the original:

1. **Parallel counting** — a word count of item supports.
2. **Group-dependent transactions** — the frequent ranks are divided into
   ``n_groups`` groups. A mapper scans each (rank-sorted) transaction from
   its *least* frequent item leftwards and, the first time it meets an
   item of a group, emits the transaction's prefix up to that item keyed
   by the group. The reducer for a group therefore receives exactly the
   prefixes needed to mine every itemset whose least frequent member lies
   in that group — the shards are independent.
3. **Per-group mining + aggregation** — each reducer builds a local
   CFP-tree over its shard, converts it, and mines with the top-level
   loop restricted to the group's ranks (itemsets are counted once
   globally because an itemset belongs to exactly one group: that of its
   maximum rank).

The paper's caveat — "depending on the dataset, such a partitioning may
or may not be effective" — is observable here through the shard-size and
shuffle statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable

from repro.core.cfp_growth import _conditional_struct, mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.distributed.mapreduce import JobStats, MapReduceJob
from repro.errors import ExperimentError
from repro.fptree.growth import ListCollector
from repro.util.items import TransactionDatabase, prepare_transactions


@dataclass
class ShardReport:
    """Per-group mining footprint."""

    group: int
    transactions: int
    tree_nodes: int
    tree_bytes: int
    itemsets: int


@dataclass
class PfpResult:
    """Everything the distributed run produced."""

    itemsets: list[tuple[tuple[Hashable, ...], int]]
    n_groups: int
    count_stats: JobStats
    shard_stats: JobStats
    shards: list[ShardReport]

    @property
    def max_shard_bytes(self) -> int:
        if not self.shards:
            return 0
        return max(s.tree_bytes for s in self.shards)

    @property
    def total_shard_transactions(self) -> int:
        """Shard records including duplication across groups."""
        return sum(s.transactions for s in self.shards)


def assign_groups(n_ranks: int, n_groups: int) -> list[int]:
    """Round-robin rank -> group assignment (index 0 unused).

    Round-robin spreads the expensive low-rank (frequent) items across
    groups, the balancing heuristic of the PFP paper.
    """
    return [0] + [(rank - 1) % n_groups for rank in range(1, n_ranks + 1)]


def group_dependent_shards(
    transactions: list[list[int]], group_of: list[int], n_groups: int
) -> tuple[dict[int, list[list[int]]], JobStats]:
    """Job 2: emit each transaction's group-dependent prefixes."""

    def mapper(ranks):
        emitted = set()
        for position in range(len(ranks) - 1, -1, -1):
            group = group_of[ranks[position]]
            if group not in emitted:
                emitted.add(group)
                yield group, ranks[: position + 1]

    def reducer(group, prefixes):
        yield group, prefixes

    job = MapReduceJob(
        mapper,
        reducer,
        n_partitions=n_groups,
        partitioner=lambda key, n: key % n,
    )
    outputs, stats = job.run(transactions)
    shards = {group: prefixes for group, prefixes in outputs}
    return shards, stats


def _mine_shard(
    shard: list[list[int]],
    group_ranks: set[int],
    n_ranks: int,
    min_support: int,
) -> tuple[list[tuple[tuple[int, ...], int]], ShardReport, int]:
    """Job 3 reducer body: local CFP-growth restricted to the group."""
    tree = TernaryCfpTree.from_rank_transactions(shard, n_ranks)
    tree_nodes = tree.node_count
    tree_bytes = tree.memory_bytes
    array = convert(tree)
    del tree
    collector = ListCollector()
    # Top-level loop restricted to the group's ranks: an itemset is mined
    # in exactly the group of its maximum (least frequent) rank. The
    # conditional recursion below each top-level rank is unrestricted.
    for rank in array.active_ranks_descending():
        if rank not in group_ranks:
            continue
        support = array.rank_support(rank)
        if support < min_support:
            continue
        itemset = (rank,)
        collector.emit(itemset, support)
        chain, cond_array = _conditional_struct(array, rank, min_support)
        if chain is not None:
            collector.emit_path_subsets(chain, itemset)
            continue
        if cond_array is None:
            continue
        mine_array(cond_array, min_support, collector, itemset)
    return collector.itemsets, tree_nodes, tree_bytes


def parallel_fp_growth(
    database: TransactionDatabase,
    min_support: int,
    n_groups: int = 4,
) -> PfpResult:
    """Run the full three-job PFP pipeline."""
    if n_groups < 1:
        raise ExperimentError(f"n_groups must be >= 1, got {n_groups}")

    # Job 1: parallel counting (word count over item occurrences).
    def count_mapper(transaction):
        for item in set(transaction):
            yield item, 1

    def count_reducer(item, ones):
        yield item, len(ones)

    count_job = MapReduceJob(count_mapper, count_reducer, n_partitions=n_groups)
    __, count_stats = count_job.run(list(database))

    # Rank assignment (reuses the shared preprocessing for determinism).
    table, transactions = prepare_transactions(database, min_support)
    n_ranks = len(table)
    group_of = assign_groups(n_ranks, n_groups)

    # Job 2: group-dependent transactions.
    shards, shard_stats = group_dependent_shards(transactions, group_of, n_groups)

    # Job 3: independent per-group mining.
    ranks_per_group: dict[int, set[int]] = defaultdict(set)
    for rank in range(1, n_ranks + 1):
        ranks_per_group[group_of[rank]].add(rank)
    all_itemsets: list[tuple[tuple[int, ...], int]] = []
    reports = []
    for group in sorted(shards):
        itemsets, tree_nodes, tree_bytes = _mine_shard(
            shards[group], ranks_per_group[group], n_ranks, min_support
        )
        all_itemsets.extend(itemsets)
        reports.append(
            ShardReport(
                group=group,
                transactions=len(shards[group]),
                tree_nodes=tree_nodes,
                tree_bytes=tree_bytes,
                itemsets=len(itemsets),
            )
        )

    translated = [
        (table.ranks_to_items(ranks), support) for ranks, support in all_itemsets
    ]
    return PfpResult(
        itemsets=translated,
        n_groups=n_groups,
        count_stats=count_stats,
        shard_stats=shard_stats,
        shards=reports,
    )


class PfpMiner:
    """Miner-interface wrapper (single-machine simulation of PFP)."""

    name = "pfp"

    def __init__(self, n_groups: int = 4):
        self.n_groups = n_groups

    def mine(self, database: TransactionDatabase, min_support: int):
        return parallel_fp_growth(database, min_support, self.n_groups).itemsets
