"""Memory-efficient frequent-itemset mining (CFP-growth).

A from-scratch reproduction of

    Benjamin Schlegel, Rainer Gemulla, Wolfgang Lehner.
    *Memory-Efficient Frequent-Itemset Mining.* EDBT 2011.

The package provides:

* the **CFP-tree** and **CFP-array** — byte-level compressed prefix-tree
  representations that shrink FP-growth's working set by roughly an order of
  magnitude (:mod:`repro.core`),
* the **CFP-growth** miner built on them (:class:`repro.core.CfpGrowth`),
* a reference FP-tree/FP-growth implementation and the ternary physical
  design of the paper's §2 (:mod:`repro.fptree`),
* the comparison algorithms of the paper's evaluation — Apriori, Eclat,
  nonordfp, LCM, AFOPT, FP-array, FP-growth-Tiny, CT-PRO and more
  (:mod:`repro.algorithms`),
* dataset tooling: a FIMI-format reader/writer, an IBM Quest-style generator
  and proxies for the FIMI real-world datasets (:mod:`repro.datasets`),
* a simulated machine with a paging model used to reproduce the paper's
  out-of-core experiments on laptop-scale inputs (:mod:`repro.machine`),
* one experiment driver per table/figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import mine_frequent_itemsets

    transactions = [[1, 2, 3], [1, 2], [2, 3], [1, 2, 3, 4]]
    for itemset, support in mine_frequent_itemsets(transactions, min_support=2):
        print(sorted(itemset), support)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "mine_frequent_itemsets",
    "build_cfp_tree",
    "build_cfp_array",
    "MiningResult",
    "mine_rules",
    "mine_with_budget",
    "closed_itemsets",
    "maximal_itemsets",
    "top_k_itemsets",
    "ReproError",
    "ValidationError",
    "ValidationReport",
    "validate_tree",
    "validate_array",
    "ArrayCheckReport",
    "StoreCheckReport",
    "check_file",
    "Diagnostic",
    "Severity",
    "__version__",
]

# The convenience APIs pull in the full core/dataset machinery, so they
# are loaded lazily (PEP 562) to keep `import repro.compress` and friends
# lightweight. Maps exported name -> defining submodule.
_LAZY_EXPORTS = {
    "mine_frequent_itemsets": "repro.api",
    "build_cfp_tree": "repro.api",
    "build_cfp_array": "repro.api",
    "MiningResult": "repro.api",
    "mine_rules": "repro.rules",
    "mine_with_budget": "repro.budget",
    "closed_itemsets": "repro.mining",
    "maximal_itemsets": "repro.mining",
    "top_k_itemsets": "repro.mining",
    "ValidationError": "repro.core.validate",
    "ValidationReport": "repro.core.validate",
    "validate_tree": "repro.core.validate",
    "validate_array": "repro.analysis",
    "ArrayCheckReport": "repro.analysis",
    "StoreCheckReport": "repro.analysis",
    "check_file": "repro.analysis",
    "Diagnostic": "repro.analysis",
    "Severity": "repro.analysis",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
