"""Deterministic fault injection for the fault-tolerant runtime.

Recovery code that is only ever exercised "in anger" is recovery code
that does not work. This package lets tests (and the chaos CI job) plant
failures at named *sites* in the real code paths — kill a worker
mid-shard, delay it past its deadline, make a page read flake, truncate
a checkpoint — and have them fire deterministically, including exactly-N
-times semantics that hold across worker processes.

**Sites.** An instrumented call site invokes :func:`fire` with its site
name and some context, e.g. ``fire("mine.worker", rank=rank)``. With no
plan installed this is one module-global ``None`` check — the production
cost of the whole facility.

**Specs.** A plan is a semicolon-separated list of specs::

    site:action[:key=value,...]

    mine.worker:kill:times=1            # first mine task exits hard, once
    mine.worker:kill:rank=7             # every task for rank 7 exits hard
    build.worker:delay:seconds=0.5      # stall each build shard 500 ms
    pagefile.read:flake:times=2         # two transient read errors
    checkpoint.write:truncate           # tear the checkpoint just written

Actions: ``kill`` (``os._exit`` — a hard worker death, the OOM-killer
case), ``raise`` (:class:`repro.errors.InjectedFault`, a poisoned task),
``flake`` (:class:`repro.errors.TransientIOError`, a retryable error),
``delay`` (sleep ``seconds``, default 0.05 — deadline/watchdog testing),
``truncate`` (cut the file named by the site's ``path`` context — torn
checkpoint writes). Any other ``key=value`` is a match condition against
the :func:`fire` context (compared as strings); ``times=N`` bounds how
often the spec fires in total.

**Cross-process state.** ``times=N`` must mean *N firings across every
process* — a retried task must not be re-killed by a spec that already
spent its budget, or recovery could never converge. Firings are claimed
by atomically creating marker files in a shared state directory
(``O_CREAT | O_EXCL`` — the claim either succeeds in exactly one process
or has already happened). The parallel runtime ships ``exported()``
plans to its workers inside the task payload and the task body calls
:func:`adopt` first, so plans reach workers regardless of start method
or pool reuse.

Plans come from :func:`install` (tests) or the ``REPRO_FAULTS`` /
``REPRO_FAULTS_STATE`` environment variables (the chaos CI job), read
lazily on the first :func:`fire`. See docs/robustness.md.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import (
    FaultSpecError,
    InjectedFault,
    TransientIOError,
    UnknownFaultSiteError,
)

_ACTIONS = ("kill", "raise", "flake", "delay", "truncate")

#: The canonical registry of instrumented sites. Specs naming any other
#: site are rejected at parse time (a typo used to be a silent no-op),
#: and :func:`fire` rejects unknown sites whenever a plan is active.
#: The static analyzer's DRIFT001 pass cross-checks this set against the
#: ``fire()`` call sites, docs/robustness.md, and the chaos tests — keep
#: all four in sync when instrumenting a new site.
SITES = frozenset(
    {
        "build.worker",
        "checkpoint.write",
        "delta.merge",
        "mine.worker",
        "pagefile.prefetch",
        "pagefile.read",
        "parallel.attach",
        "snapshot.flip",
    }
)

#: Spec keys that configure the action instead of matching context.
_RESERVED_KEYS = ("times", "seconds", "bytes")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: where it fires, what it does, and how often."""

    site: str
    action: str
    match: tuple[tuple[str, str], ...] = ()
    times: int = 0  #: max total firings; 0 = unlimited
    seconds: float = 0.05  #: sleep for ``delay``
    drop_bytes: int = 0  #: bytes cut by ``truncate``; 0 = half the file
    spec_id: str = ""  #: stable id for cross-process firing state

    def matches(self, site: str, ctx: dict[str, object]) -> bool:
        if site != self.site:
            return False
        return all(
            key in ctx and str(ctx[key]) == value for key, value in self.match
        )


@dataclass
class FaultPlan:
    """An installed set of specs plus the shared firing-state directory."""

    specs: tuple[FaultSpec, ...]
    state_dir: str | None = None
    text: str = ""
    _fired: dict[str, int] = field(default_factory=dict)

    def claim(self, spec: FaultSpec) -> bool:
        """Try to consume one firing of ``spec``; False if budget spent."""
        if spec.times <= 0:
            return True
        if self.state_dir is None:
            count = self._fired.get(spec.spec_id, 0)
            if count >= spec.times:
                return False
            self._fired[spec.spec_id] = count + 1
            return True
        for firing in range(spec.times):
            marker = os.path.join(self.state_dir, f"{spec.spec_id}.{firing}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False


def parse_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse a plan string (see module docstring for the grammar)."""
    specs: list[FaultSpec] = []
    for index, chunk in enumerate(part for part in text.split(";") if part.strip()):
        fields = chunk.strip().split(":")
        if len(fields) < 2 or len(fields) > 3:
            raise FaultSpecError(f"fault spec {chunk!r} is not site:action[:params]")
        site, action = fields[0].strip(), fields[1].strip()
        if not site or action not in _ACTIONS:
            raise FaultSpecError(
                f"fault spec {chunk!r}: action must be one of {', '.join(_ACTIONS)}"
            )
        if site not in SITES:
            raise UnknownFaultSiteError(
                f"fault spec {chunk!r}: unknown site {site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        match: list[tuple[str, str]] = []
        times = 0
        seconds = 0.05
        drop_bytes = 0
        if len(fields) == 3 and fields[2].strip():
            for pair in fields[2].split(","):
                if "=" not in pair:
                    raise FaultSpecError(
                        f"fault spec {chunk!r}: parameter {pair!r} is not key=value"
                    )
                key, __, value = pair.partition("=")
                key, value = key.strip(), value.strip()
                try:
                    if key == "times":
                        times = int(value)
                    elif key == "seconds":
                        seconds = float(value)
                    elif key == "bytes":
                        drop_bytes = int(value)
                    else:
                        match.append((key, value))
                except ValueError as exc:
                    raise FaultSpecError(
                        f"fault spec {chunk!r}: bad {key}={value!r}"
                    ) from exc
        specs.append(
            FaultSpec(
                site=site,
                action=action,
                match=tuple(match),
                times=times,
                seconds=seconds,
                drop_bytes=drop_bytes,
                spec_id=f"{index}-{site}-{action}",
            )
        )
    return tuple(specs)


#: The active plan. ``None`` + ``_ENV_CHECKED`` means fire() is a no-op.
_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False


def install(text: str, state_dir: str | None = None) -> FaultPlan:
    """Install a plan from a spec string; returns it for inspection.

    A state directory is created when any spec is count-bounded and none
    was given, so ``times=N`` holds across processes out of the box.
    """
    global _ACTIVE, _ENV_CHECKED
    specs = parse_specs(text)
    if state_dir is None and any(spec.times > 0 for spec in specs):
        state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    _ACTIVE = FaultPlan(specs=specs, state_dir=state_dir, text=text)  # lint: ignore[EFF001] - plan installation is the sanctioned worker-side mutation (adopt)
    _ENV_CHECKED = True  # lint: ignore[EFF001] - paired with the plan store above
    return _ACTIVE


def reset() -> None:
    """Drop the active plan (and forget the env lookup)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def _active() -> FaultPlan | None:
    """The installed plan, reading ``REPRO_FAULTS`` on first use."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True  # lint: ignore[EFF001] - memoizes the one-time env lookup
        text = os.environ.get("REPRO_FAULTS", "")
        if text:
            install(text, state_dir=os.environ.get("REPRO_FAULTS_STATE") or None)
    return _ACTIVE


def exported() -> tuple[str, str | None] | None:
    """The active plan as a ``(spec_text, state_dir)`` token for workers.

    ``None`` when no faults are configured — the common case, in which
    the parallel runtime ships nothing and workers skip :func:`adopt`.
    """
    plan = _active()
    if plan is None:
        return None
    return plan.text, plan.state_dir


def adopt(token: tuple[str, str | None] | None) -> None:
    """Install an exported plan in a worker process.

    Must run before the worker's first :func:`fire` so a worker never
    falls back to its own environment-derived state directory and splits
    the ``times=N`` budget. A ``None`` token is authoritative too: a
    cached (or forked) worker may still hold the plan of an *earlier*
    supervised run, and must drop it rather than keep firing faults the
    parent has since reset.
    """
    global _ACTIVE, _ENV_CHECKED
    if token is None:
        _ACTIVE = None  # lint: ignore[EFF001] - dropping a stale plan is adopt's contract
        _ENV_CHECKED = True  # the parent already decided: no plan  # lint: ignore[EFF001]
        return
    text, state_dir = token
    plan = _active()
    if plan is not None and plan.text == text and plan.state_dir == state_dir:
        return  # forked workers inherit the parent's plan object
    install(text, state_dir=state_dir)


def fire(site: str, **ctx: object) -> None:
    """Trigger any faults planted at ``site`` (no-op without a plan).

    Counts every firing in ``faultinject.fired`` on the process-local
    metrics registry (worker registries merge back through the parallel
    runtime's delta channel), so a trace shows which faults actually
    went off.
    """
    plan = _active()
    if plan is None:
        return
    if site not in SITES:
        # Validated only under an active plan: the no-plan production
        # path stays a single None check, and a mistyped instrumentation
        # site cannot silently never fire during a chaos run.
        raise UnknownFaultSiteError(
            f"fire() called with unknown site {site!r}; known sites: "
            f"{', '.join(sorted(SITES))}"
        )
    for spec in plan.specs:
        if not spec.matches(site, ctx) or not plan.claim(spec):
            continue
        from repro import obs

        obs.metrics.add("faultinject.fired")
        obs.metrics.add(f"faultinject.fired.{spec.site}.{spec.action}")
        if spec.action == "kill":
            os._exit(17)
        elif spec.action == "raise":
            raise InjectedFault(f"injected fault at {site}")
        elif spec.action == "flake":
            raise TransientIOError(f"injected transient I/O failure at {site}")
        elif spec.action == "delay":
            time.sleep(spec.seconds)
        elif spec.action == "truncate":
            path = str(ctx["path"])
            size = os.path.getsize(path)
            drop = spec.drop_bytes if spec.drop_bytes > 0 else size // 2
            os.truncate(path, max(0, size - drop))


__all__ = [
    "SITES",
    "FaultSpec",
    "FaultPlan",
    "parse_specs",
    "install",
    "reset",
    "exported",
    "adopt",
    "fire",
]
