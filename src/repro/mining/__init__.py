"""Condensed-representation mining: closed, maximal, and top-k itemsets.

Full frequent-itemset output explodes at low support (§4's sweeps stop
where it does); these are the standard condensed alternatives a mining
library ships:

* :func:`repro.mining.closed_itemsets` — itemsets with no equal-support
  superset (LCM-style prefix-preserving closure extension [29]),
* :func:`repro.mining.maximal_itemsets` — itemsets with no frequent
  superset,
* :func:`repro.mining.top_k_itemsets` — the k highest-support itemsets,
  mined with a dynamically rising support threshold.
"""

from repro.mining.closed import closed_itemsets
from repro.mining.maximal import maximal_itemsets
from repro.mining.topk import mine_top_k, top_k_itemsets

__all__ = ["closed_itemsets", "maximal_itemsets", "mine_top_k", "top_k_itemsets"]
