"""Maximal frequent itemsets.

An itemset is *maximal* when no frequent itemset strictly contains it.
Because frequency is downward closed, an itemset has a frequent strict
superset iff some single-item extension is frequent — so maximality can
be decided against the frequent-itemset map with one extension probe per
item.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.cfp_growth import cfp_growth
from repro.util.items import TransactionDatabase


def maximal_itemsets(
    database: TransactionDatabase, min_support: int
) -> list[tuple[tuple[Hashable, ...], int]]:
    """All maximal frequent itemsets with their supports."""
    frequent = cfp_growth(database, min_support)
    supports = {frozenset(itemset): support for itemset, support in frequent}
    items = set()
    for itemset in supports:
        items |= itemset
    maximal = []
    for itemset, support in frequent:
        key = frozenset(itemset)
        if any(
            item not in key and key | {item} in supports for item in items
        ):
            continue
        maximal.append((itemset, support))
    return maximal
