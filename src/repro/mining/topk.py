"""Top-k frequent itemsets with a dynamically rising support threshold.

Instead of guessing a minimum support, the miner keeps a size-k min-heap
of the best supports seen; once the heap is full, the heap's minimum
becomes the *effective* support threshold for the rest of the search.
Raising the threshold mid-run is sound because support is anti-monotone —
the standard top-k FIM technique.

Itemsets of support below ``min_support_floor`` (default 1) are never
considered; ``min_length`` filters trivial singletons if desired.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Hashable

from repro.errors import ExperimentError
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions


class _TopKCollector:
    """Size-k min-heap with a rising threshold."""

    def __init__(self, k: int, min_length: int, floor: int):
        self.k = k
        self.min_length = min_length
        self.floor = floor
        self._heap: list[tuple[int, tuple[int, ...]]] = []
        self._sequence = 0

    @property
    def threshold(self) -> int:
        if len(self._heap) < self.k:
            return self.floor
        return max(self.floor, self._heap[0][0])

    def emit(self, ranks: tuple[int, ...], support: int) -> None:
        if len(ranks) < self.min_length or support < self.threshold:
            return
        entry = (support, tuple(sorted(ranks)))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif support > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def emit_path_subsets(self, path, suffix) -> None:
        # Enumerate subsets whose deepest element sets the support, but
        # stop expanding once supports fall below the threshold (counts
        # along a path are non-increasing).
        subsets: list[tuple[int, ...]] = [()]
        for rank, count in path:
            if count < self.threshold and len(self._heap) >= self.k:
                break
            for subset in list(subsets):
                self.emit(subset + (rank,) + suffix, count)
                subsets.append(subset + (rank,))

    def results(self) -> list[tuple[tuple[int, ...], int]]:
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [(ranks, support) for support, ranks in ordered]


def top_k_itemsets(
    database: TransactionDatabase,
    k: int,
    min_length: int = 1,
    min_support_floor: int = 1,
) -> list[tuple[tuple[Hashable, ...], int]]:
    """The ``k`` highest-support itemsets (ties broken lexicographically)."""
    if k < 1:
        raise ExperimentError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise ExperimentError(f"min_length must be >= 1, got {min_length}")
    table, transactions = prepare_transactions(database, min_support_floor)
    collector = _TopKCollector(k, min_length, min_support_floor)
    tree = FPTree.from_rank_transactions(transactions, len(table))
    _mine(tree, collector, ())
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.results()
    ]


def _mine(tree: FPTree, collector: _TopKCollector, suffix: tuple[int, ...]) -> None:
    path = tree.single_path()
    if path is not None:
        if path:
            collector.emit_path_subsets(path, suffix)
        return
    for rank in tree.active_ranks_descending():
        support = tree.rank_count(rank)
        if support < collector.threshold:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        conditional = _conditional(tree, rank, collector.threshold)
        if conditional is not None:
            _mine(conditional, collector, itemset)


def _conditional(tree: FPTree, rank: int, threshold: int) -> FPTree | None:
    paths = []
    counts: dict[int, int] = defaultdict(int)
    for path_ranks, count in tree.prefix_paths(rank):
        if path_ranks:
            paths.append((path_ranks, count))
            for path_rank in path_ranks:
                counts[path_rank] += count
    frequent = {r for r, c in counts.items() if c >= threshold}
    if not frequent:
        return None
    conditional = FPTree(tree.n_ranks)
    for path_ranks, count in paths:
        filtered = [r for r in path_ranks if r in frequent]
        if filtered:
            conditional.insert(filtered, count)
    if conditional.is_empty():
        return None
    return conditional
