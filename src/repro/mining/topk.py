"""Top-k frequent itemsets with a dynamically rising support threshold.

Instead of guessing a minimum support, the miner keeps a size-k min-heap
of the best supports seen; once the heap is full, the heap's minimum
becomes the *effective* support threshold for the rest of the search.
Raising the threshold mid-run is sound because support is anti-monotone —
the standard top-k FIM technique.

Itemsets of support below ``min_support_floor`` (default 1) are never
considered; ``min_length`` filters trivial singletons if desired.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Hashable

from repro.core.cfp_array import CfpArray
from repro.core.cfp_growth import _conditional_struct
from repro.errors import ExperimentError
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions


class _RevRanks:
    """Rank tuple with reversed comparison, for heap-boundary ordering.

    The min-heap's root must be the *canonically worst* resident itemset:
    lowest support, and among support ties the lexicographically
    **largest** rank tuple (so the smallest-ranked itemset survives a tie,
    matching the ``(-support, ranks)`` order :meth:`_TopKCollector.results`
    reports). ``heapq`` only needs ``__lt__``; negating tuple elements
    does not work for prefix ties (``(1,) < (1, 2)`` must flip), hence a
    wrapper instead of arithmetic.
    """

    __slots__ = ("ranks",)

    def __init__(self, ranks: tuple[int, ...]) -> None:
        self.ranks = ranks

    def __lt__(self, other: "_RevRanks") -> bool:
        return self.ranks > other.ranks

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RevRanks) and self.ranks == other.ranks


class _TopKCollector:
    """Size-k min-heap with a rising threshold.

    Satisfies the :class:`repro.core.cfp_growth.SupportCollector`
    protocol. Two properties the serving layer leans on:

    * **dedup** — an itemset reachable through several prefix paths may be
      emitted more than once by an enumerator; a membership set keeps one
      heap entry per itemset, so duplicates can never crowd distinct
      itemsets out of the top k;
    * **order-independence** — the boundary comparison is the total order
      ``(support desc, ranks asc)``, support ties included, so the final
      k-set (and :meth:`results`) is a pure function of the emitted
      (itemset, support) pairs, whatever order a miner discovers them in.
      The old ``support > heap[0]`` comparison kept whichever tie arrived
      first — tree- and array-order enumerations of the same database
      could report different k-sets.
    """

    def __init__(self, k: int, min_length: int, floor: int):
        self.k = k
        self.min_length = min_length
        self.floor = floor
        self._heap: list[tuple[int, _RevRanks]] = []
        self._members: set[tuple[int, ...]] = set()

    @property
    def threshold(self) -> int:
        if len(self._heap) < self.k:
            return self.floor
        return max(self.floor, self._heap[0][0])

    def emit(self, ranks: tuple[int, ...], support: int) -> None:
        if len(ranks) < self.min_length or support < self.threshold:
            return
        key = tuple(sorted(ranks))
        if key in self._members:
            # Same itemset via another prefix path: its support is a
            # function of the itemset, so the resident entry already
            # carries it — a second entry would double-fill the heap.
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (support, _RevRanks(key)))
            self._members.add(key)
            return
        worst_support, worst = self._heap[0]
        if support > worst_support or (
            support == worst_support and key < worst.ranks
        ):
            heapq.heapreplace(self._heap, (support, _RevRanks(key)))
            self._members.discard(worst.ranks)
            self._members.add(key)

    def emit_path_subsets(self, path, suffix) -> None:
        # Enumerate subsets whose deepest element sets the support, but
        # stop expanding once supports fall below the threshold (counts
        # along a path are non-increasing).
        subsets: list[tuple[int, ...]] = [()]
        for rank, count in path:
            if count < self.threshold and len(self._heap) >= self.k:
                break
            for subset in list(subsets):
                self.emit(subset + (rank,) + suffix, count)
                subsets.append(subset + (rank,))

    def results(self) -> list[tuple[tuple[int, ...], int]]:
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1].ranks))
        return [(entry.ranks, support) for support, entry in ordered]


def top_k_itemsets(
    database: TransactionDatabase,
    k: int,
    min_length: int = 1,
    min_support_floor: int = 1,
) -> list[tuple[tuple[Hashable, ...], int]]:
    """The ``k`` highest-support itemsets (ties broken lexicographically)."""
    if k < 1:
        raise ExperimentError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise ExperimentError(f"min_length must be >= 1, got {min_length}")
    table, transactions = prepare_transactions(database, min_support_floor)
    collector = _TopKCollector(k, min_length, min_support_floor)
    tree = FPTree.from_rank_transactions(transactions, len(table))
    _mine(tree, collector, ())
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.results()
    ]


def _mine(tree: FPTree, collector: _TopKCollector, suffix: tuple[int, ...]) -> None:
    path = tree.single_path()
    if path is not None:
        if path:
            collector.emit_path_subsets(path, suffix)
        return
    for rank in tree.active_ranks_descending():
        support = tree.rank_count(rank)
        if support < collector.threshold:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        conditional = _conditional(tree, rank, collector.threshold)
        if conditional is not None:
            _mine(conditional, collector, itemset)


def mine_top_k(
    array: CfpArray,
    k: int,
    min_length: int = 1,
    min_support_floor: int = 1,
) -> list[tuple[tuple[int, ...], int]]:
    """Top-k over a built CFP-array, in rank vocabulary.

    The serving-layer entry point: the array is long-lived (loaded once,
    queried many times), so unlike :func:`top_k_itemsets` no tree is ever
    built — conditionals come from the columnar kernels
    (:func:`repro.core.cfp_growth._conditional_struct`), exactly as the
    batch mine phase builds them. Because the collector's k-set is
    order-independent, the result is identical to running
    :func:`top_k_itemsets` on the database the array was built from
    (modulo rank translation) — the property the serving parity suite
    holds it to.
    """
    if k < 1:
        raise ExperimentError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise ExperimentError(f"min_length must be >= 1, got {min_length}")
    collector = _TopKCollector(k, min_length, max(1, min_support_floor))
    path = array.single_path()
    if path is not None:
        if path:
            collector.emit_path_subsets(path, ())
        return collector.results()
    _mine_array(array, collector, ())
    return collector.results()


def _mine_array(
    array: CfpArray, collector: _TopKCollector, suffix: tuple[int, ...]
) -> None:
    """The §2.1 mine loop against arrays, pruned by the rising threshold."""
    for rank in array.active_ranks_descending():
        support = array.rank_support(rank)
        if support < collector.threshold:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        chain, cond_array = _conditional_struct(array, rank, collector.threshold)
        if chain is not None:
            collector.emit_path_subsets(chain, itemset)
        elif cond_array is not None:
            cond_array.set_cache_budget(array.cache_budget)
            _mine_array(cond_array, collector, itemset)


def _conditional(tree: FPTree, rank: int, threshold: int) -> FPTree | None:
    paths = []
    counts: dict[int, int] = defaultdict(int)
    for path_ranks, count in tree.prefix_paths(rank):
        if path_ranks:
            paths.append((path_ranks, count))
            for path_rank in path_ranks:
                counts[path_rank] += count
    frequent = {r for r, c in counts.items() if c >= threshold}
    if not frequent:
        return None
    conditional = FPTree(tree.n_ranks)
    for path_ranks, count in paths:
        filtered = [r for r in path_ranks if r in frequent]
        if filtered:
            conditional.insert(filtered, count)
    if conditional.is_empty():
        return None
    return conditional
