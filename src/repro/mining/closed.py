"""Closed frequent itemsets via LCM-style ppc-extension (ref [29]).

An itemset is *closed* when no proper superset has the same support; the
closed sets form a lossless condensed representation (any itemset's
support is the maximum support over closed supersets).

The enumeration is LCM's: each closed set is generated exactly once from
its *prefix-preserving closure extension*. For a current closed set P
extended with item ``i`` (the core item), the closure of ``P ∪ {i}`` is
computed over the conditional database; the extension is kept only if the
closure adds no item smaller than ``i`` (the ppc condition) — otherwise
the same closed set is reachable from a smaller core and would duplicate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.util.items import TransactionDatabase, prepare_transactions


def closed_itemsets(
    database: TransactionDatabase, min_support: int
) -> list[tuple[tuple[Hashable, ...], int]]:
    """All closed frequent itemsets with their supports."""
    table, transactions = prepare_transactions(database, min_support)
    weighted = [(tuple(ranks), 1) for ranks in transactions]
    results: list[tuple[tuple[int, ...], int]] = []
    _ppc_extend(frozenset(), 0, weighted, min_support, results)
    return [
        (table.ranks_to_items(sorted(ranks)), support)
        for ranks, support in results
    ]


def _ppc_extend(
    closed: frozenset[int],
    core: int,
    database: list[tuple[tuple[int, ...], int]],
    min_support: int,
    results: list,
) -> None:
    """Enumerate closed supersets of ``closed`` with core items > ``core``.

    ``database`` holds the transactions containing ``closed`` (projected,
    weighted).
    """
    supports: dict[int, int] = defaultdict(int)
    for ranks, weight in database:
        for rank in ranks:
            if rank not in closed:
                supports[rank] += weight
    for rank in sorted(supports):
        if rank <= core or supports[rank] < min_support:
            continue
        # Conditional database of closed ∪ {rank}.
        conditional = [
            (ranks, weight) for ranks, weight in database if rank in ranks
        ]
        support = sum(weight for __, weight in conditional)
        # Closure: items present in every conditional transaction.
        closure = None
        for ranks, __ in conditional:
            items = set(ranks)
            closure = items if closure is None else closure & items
            if not closure:
                break
        closure = (closure or set()) | closed | {rank}
        # ppc condition: the closure must not add items below the core.
        if any(r < rank and r not in closed for r in closure):
            continue
        new_closed = frozenset(closure)
        results.append((new_closed, support))
        _ppc_extend(new_closed, rank, conditional, min_support, results)
