"""Top-level convenience API.

These helpers wrap the CFP-growth pipeline for users who just want frequent
itemsets or the intermediate structures, without touching ranks or arenas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.analysis import (
    ArrayCheckReport,
    Diagnostic,
    Severity,
    StoreCheckReport,
    check_file,
    validate_array,
)
from repro.core.cfp_array import CfpArray
from repro.core.cfp_growth import cfp_growth
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.core.validate import ValidationError, ValidationReport, validate_tree
from repro.util.items import ItemTable, TransactionDatabase, prepare_transactions

__all__ = [
    "MiningResult",
    "mine_frequent_itemsets",
    "build_cfp_tree",
    "build_cfp_array",
    # Integrity / diagnostics re-exports
    "ArrayCheckReport",
    "Diagnostic",
    "Severity",
    "StoreCheckReport",
    "ValidationError",
    "ValidationReport",
    "check_file",
    "validate_array",
    "validate_tree",
]


@dataclass
class MiningResult:
    """All frequent itemsets of a database, with lookup helpers."""

    min_support: int
    itemsets: list[tuple[tuple[Hashable, ...], int]]

    def __len__(self) -> int:
        return len(self.itemsets)

    def __iter__(self) -> Iterator[tuple[tuple[Hashable, ...], int]]:
        return iter(self.itemsets)

    def support_of(self, itemset) -> int:
        """Support of one itemset, or 0 if it is not frequent."""
        wanted = frozenset(itemset)
        for items, support in self.itemsets:
            if frozenset(items) == wanted:
                return support
        return 0

    def of_size(self, size: int) -> list[tuple[tuple[Hashable, ...], int]]:
        """All frequent itemsets of a given cardinality."""
        return [(items, s) for items, s in self.itemsets if len(items) == size]


def mine_frequent_itemsets(
    database: TransactionDatabase, min_support: int
) -> MiningResult:
    """Mine all frequent itemsets with CFP-growth.

    ``min_support`` is the absolute support threshold (number of
    transactions). Example::

        result = mine_frequent_itemsets([[1, 2], [1, 2, 3], [2, 3]], 2)
        result.support_of({1, 2})  # -> 2
    """
    return MiningResult(min_support, cfp_growth(database, min_support))


def build_cfp_tree(
    database: TransactionDatabase, min_support: int, **tree_options
) -> tuple[ItemTable, TernaryCfpTree]:
    """Run only the build phase; returns the item table and the CFP-tree.

    ``tree_options`` pass through to :class:`repro.core.TernaryCfpTree`
    (``enable_chains``, ``enable_embedding``, ``max_chain_length``).
    """
    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(
        transactions, len(table), **tree_options
    )
    return table, tree


def build_cfp_array(
    database: TransactionDatabase, min_support: int
) -> tuple[ItemTable, CfpArray]:
    """Build a CFP-tree and convert it; returns the item table and array."""
    table, tree = build_cfp_tree(database, min_support)
    return table, convert(tree)
