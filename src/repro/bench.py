"""Wall-clock benchmarks and the perf-regression harness (``repro bench``).

Unlike :mod:`repro.experiments` (which *simulates* the paper's 6 GB
testbed), this module measures real wall time so perf PRs are judged
against a recorded baseline. One run times the three CFP-growth phases —
build, convert, mine — on synthetic + FIMI-proxy datasets, runs the mine
phase at 1/2/4 workers (serial first, so every speedup is relative to the
same run's serial wall), and writes a ``BENCH_<timestamp>.json`` report:

* per dataset: transaction/rank/node counts, build/convert seconds,
  CFP-array bytes;
* per worker count: mine wall seconds, nodes/sec (top-level array nodes
  over mine wall), speedup vs the serial mine, itemset count (a built-in
  correctness tripwire: it must not vary with the worker count);
* per run: peak RSS (self + reaped workers), platform info, and (unless
  ``--no-serving``) one query-server load leg — 64 concurrent clients
  against an in-process :class:`repro.serving.server.ReproServer` plus a
  columnar-vs-per-node support kernel comparison.

``compare_reports`` diffs a report against a previous one (the committed
``benchmarks/BENCH_baseline.json`` in CI, else the newest ``BENCH_*.json``
on disk) and flags any phase that got more than ``tolerance`` slower —
with an absolute noise floor so micro-jitter on near-zero timings does
not trip the gate. See docs/performance.md for how to read the report.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Iterable

from repro.core import kernels
from repro.core.build_parallel import build_tree_parallel
from repro.core.cfp_growth import DEFAULT_CACHE_BUDGET, mine_array
from repro.core.conversion import convert
from repro.core.parallel import mine_array_parallel, warm_pool
from repro.core.ternary import TernaryCfpTree
from repro.datasets.quest import QuestGenerator
from repro.datasets.synthetic import make_kosarak, make_retail
from repro.errors import ReproError
from repro.fptree.growth import CountCollector
from repro.util.items import prepare_transactions

#: Report schema version, bumped on incompatible layout changes.
#: v2 adds the per-jobs ``build`` map (parallel build phase) next to the
#: serial ``build_s``/``convert_s`` scalars, which remain for comparability
#: with v1 reports. v3 adds the top-level ``serving`` leg (query-server
#: load run + columnar-vs-per-node support kernel comparison); v4 adds the
#: top-level ``outofcore`` leg (partitioned mine at a >=10x memory ratio,
#: gated on wall time *and* bytes read); v5 adds the top-level
#: ``incremental`` leg (per-batch delta merges vs from-scratch rebuilds,
#: gated on byte identity and the merge/rebuild wall ratio). Reports
#: without a leg still compare on everything else.
SCHEMA_VERSION = 5

#: Regressions smaller than this many seconds are ignored regardless of
#: ratio — they are timer jitter, not performance.
NOISE_FLOOR_SECONDS = 0.05

#: Default worker counts benchmarked for the mine phase.
DEFAULT_JOBS = (1, 2, 4)

#: Default worker counts benchmarked for the build phase.
DEFAULT_BUILD_JOBS = (1, 2, 4)


def _quest_t10i4(quick: bool) -> tuple[list[list[int]], int]:
    """T10I4D100K-style Quest data: avg |T|=10, avg pattern length 4."""
    scale = 2_000 if quick else 12_000
    generator = QuestGenerator(
        n_transactions=scale,
        avg_transaction_length=10.0,
        avg_pattern_length=4.0,
        n_items=600 if quick else 1_000,
        n_patterns=150 if quick else 300,
        seed=101,
    )
    return generator.generate(), max(2, scale // 200)


def _retail(quick: bool) -> tuple[list[list[int]], int]:
    n = 1_200 if quick else 4_000
    return make_retail(n_transactions=n, n_items=1_600, seed=7), max(2, n // 100)


def _kosarak(quick: bool) -> tuple[list[list[int]], int]:
    n = 1_500 if quick else 6_000
    return make_kosarak(n_transactions=n, seed=13), max(2, n // 100)


#: name -> loader(quick) returning (database, min_support).
DATASETS: dict[str, Callable[[bool], tuple[list[list[int]], int]]] = {
    "quest-T10I4": _quest_t10i4,
    "retail": _retail,
    "kosarak": _kosarak,
}


def _peak_rss_kb() -> int:
    """Peak resident set of this process plus reaped children, in KiB."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(own + children)


def bench_dataset(
    database: list[list[int]],
    min_support: int,
    jobs: Iterable[int] = DEFAULT_JOBS,
    build_jobs: Iterable[int] = DEFAULT_BUILD_JOBS,
) -> dict:
    """Time build/convert/mine for one dataset; returns its report entry."""
    started = time.perf_counter()
    table, transactions = prepare_transactions(database, min_support)
    prepare_s = time.perf_counter() - started

    started = time.perf_counter()
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    array = convert(tree)
    convert_s = time.perf_counter() - started
    array.set_cache_budget(DEFAULT_CACHE_BUDGET)
    del tree

    nodes = array.node_count
    entry: dict = {
        "transactions": len(database),
        "min_support": min_support,
        "n_ranks": array.n_ranks,
        "nodes": nodes,
        "array_bytes": array.memory_bytes,
        "prepare_s": round(prepare_s, 4),
        "build_s": round(build_s, 4),
        "convert_s": round(convert_s, 4),
        "build": {},
        "mine": {},
    }
    # Per-jobs build map: jobs=1 is the serial legs above (tree build plus
    # conversion — the phase build_tree_parallel subsumes); jobs>1 times the
    # sharded build end-to-end, with a byte-identity tripwire against the
    # serial array. Pools are warmed outside the timed region so the fork
    # cost is not billed to the phase.
    serial_build_wall = build_s + convert_s
    entry["build"]["1"] = {
        "wall_s": round(serial_build_wall, 4),
        "speedup": 1.0,
        "identical": True,
    }
    for build_job_count in sorted(set(int(j) for j in build_jobs)):
        if build_job_count <= 1:
            continue
        warm_pool(build_job_count)
        started = time.perf_counter()
        parallel_array = build_tree_parallel(
            transactions, len(table), jobs=build_job_count
        )
        wall = time.perf_counter() - started
        entry["build"][str(build_job_count)] = {
            "wall_s": round(wall, 4),
            "speedup": round(serial_build_wall / wall, 3) if wall > 0 else 1.0,
            "identical": (
                bytes(parallel_array.buffer) == bytes(array.buffer)
                and parallel_array.starts == array.starts
            ),
        }
        del parallel_array
    job_list = sorted(set(int(j) for j in jobs))
    if 1 not in job_list:
        job_list.insert(0, 1)  # speedups are relative to this run's serial mine
    serial_wall: float | None = None
    for job_count in job_list:
        collector = CountCollector()
        started = time.perf_counter()
        if job_count == 1:
            mine_array(array, min_support, collector)
        else:
            mine_array_parallel(array, min_support, collector, jobs=job_count)
        wall = time.perf_counter() - started
        if job_count == 1:
            serial_wall = wall
        entry["mine"][str(job_count)] = {
            "wall_s": round(wall, 4),
            "nodes_per_s": round(nodes / wall) if wall > 0 else None,
            "speedup": round(serial_wall / wall, 3) if serial_wall and wall > 0 else 1.0,
            "itemsets": collector.count,
        }
    return entry


def measure_trace_overhead(
    database: list[list[int]], min_support: int, repeats: int = 5
) -> dict:
    """Cost of tracing on the serial mine phase, best-of-``repeats``.

    Times the identical mine (same prepared CFP-array, fresh collector)
    with no tracer installed and with a fresh :class:`repro.obs.Tracer`,
    interleaved, and reports the relative overhead of the traced runs.
    The observability contract (docs/observability.md) is <8% traced and
    ~0% disabled; ``repro bench --trace-overhead`` gates the former.
    The quick mine finishes in ~0.1s since the columnar kernels, so a
    single descheduled run skews a ratio of two timings — best-of-5
    keeps the estimate near the true (noise-free) overhead.
    """
    from repro import obs
    from repro.obs.tracer import Tracer

    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(tree)
    array.set_cache_budget(DEFAULT_CACHE_BUDGET)
    del tree

    def mine_once() -> float:
        collector = CountCollector()
        started = time.perf_counter()
        mine_array(array, min_support, collector)
        return time.perf_counter() - started

    mine_once()  # warm-up: decode caches, allocator, branch predictors
    plain: list[float] = []
    traced: list[float] = []
    for _ in range(max(1, repeats)):
        plain.append(mine_once())
        previous = obs.set_tracer(Tracer())
        try:
            traced.append(mine_once())
        finally:
            obs.set_tracer(previous)
    base = min(plain)
    overhead = (min(traced) - base) / base if base > 0 else 0.0
    return {
        "plain_s": round(base, 4),
        "traced_s": round(min(traced), 4),
        "overhead_pct": round(overhead * 100.0, 2),
    }


# ----------------------------------------------------------------------
# Out-of-core leg: partitioned mine at a >=10x memory ratio
# ----------------------------------------------------------------------

#: The out-of-core leg mines with at most ``array_bytes / OUTOFCORE_RATIO``
#: bytes of budget — the headline configuration the tiered store exists for.
OUTOFCORE_RATIO = 10


def _quest_ooc(quick: bool) -> tuple[list[list[int]], int]:
    """Dedicated out-of-core dataset: wide vocabulary, low sharing.

    Larger than the regular bench datasets on purpose — the leg needs the
    CFP-array to dwarf a multiple-page budget even in ``--quick`` runs
    (~130 KiB quick, ~700 KiB full), or the 10x ratio would shrink the
    pool below the two-page minimum.
    """
    scale = 4_000 if quick else 20_000
    generator = QuestGenerator(
        n_transactions=scale,
        avg_transaction_length=12.0,
        avg_pattern_length=4.0,
        n_items=900 if quick else 2_000,
        n_patterns=250 if quick else 500,
        seed=202,
    )
    return generator.generate(), max(2, scale // 400)


def bench_outofcore(database: list[list[int]], min_support: int) -> dict:
    """Mine one dataset in-core and partitioned-out-of-core; compare.

    The budget is ``array_bytes / OUTOFCORE_RATIO`` (floored at three
    pages) and splits the way :func:`repro.budget.mine_with_budget` does:
    a quarter pins the hot set, the rest backs the pool, partitions sized
    to half the pool. The leg is a correctness gate as much as a perf
    probe: the partitioned itemsets must be identical to the in-core
    mine's, and the prefetcher must actually hit (``prefetch_hits > 0``)
    or the read-ahead machinery has silently stopped earning its thread.
    """
    import tempfile

    from repro.fptree.growth import ListCollector
    from repro.storage import (
        PAGE_SIZE,
        PartitionedCfpArray,
        save_cfp_array_partitioned,
    )
    from repro.core.cfp_growth import mine_array_partitioned

    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    array = convert(tree)
    del tree
    array_bytes = array.memory_bytes
    nodes = array.node_count
    array.set_cache_budget(DEFAULT_CACHE_BUDGET)

    reference = ListCollector()
    started = time.perf_counter()
    mine_array(array, min_support, reference)
    incore_wall = time.perf_counter() - started

    budget = max(3 * PAGE_SIZE, array_bytes // OUTOFCORE_RATIO)
    hot_bytes = budget // 4
    pool_budget = budget - hot_bytes
    pool_pages = max(2, pool_budget // PAGE_SIZE)
    partition_bytes = max(PAGE_SIZE, pool_budget // 2)

    with tempfile.TemporaryDirectory(prefix="repro-bench-ooc-") as tmp:
        path = f"{tmp}/ooc.cfpa"
        save_cfp_array_partitioned(array, path, partition_bytes=partition_bytes)
        with PartitionedCfpArray(
            path, pool_pages=pool_pages, hot_bytes=hot_bytes
        ) as disk:
            got = ListCollector()
            started = time.perf_counter()
            mine_array_partitioned(disk, min_support, got)
            wall = time.perf_counter() - started
            disk.prefetch_drain()
            stats = disk.pool.stats
            entry = {
                "transactions": len(database),
                "min_support": min_support,
                "nodes": nodes,
                "array_bytes": array_bytes,
                "budget_bytes": budget,
                "ratio": round(array_bytes / budget, 2),
                "hot_bytes": disk.hot_bytes,
                "pool_pages": pool_pages,
                "partitions": len(disk.partitions),
                "incore_wall_s": round(incore_wall, 4),
                "wall_s": round(wall, 4),
                "nodes_per_s": round(nodes / wall) if wall > 0 else None,
                "slowdown": (
                    round(wall / incore_wall, 2) if incore_wall > 0 else None
                ),
                "faults": stats.faults,
                "bytes_read": stats.bytes_read,
                "prefetched": stats.prefetched,
                "prefetch_hits": stats.prefetch_hits,
                "prefetch_hit_rate": (
                    round(stats.prefetch_hits / stats.prefetched, 3)
                    if stats.prefetched
                    else 0.0
                ),
                "identical": got.itemsets == reference.itemsets,
                "itemsets": len(got.itemsets),
            }
    return entry


# ----------------------------------------------------------------------
# Incremental leg: delta merges vs from-scratch rebuilds
# ----------------------------------------------------------------------

#: Batches the incremental leg streams — the configuration the ISSUE's
#: acceptance gate names (delta-merge wall < 0.5x rebuild wall at 8).
INCREMENTAL_BATCHES = 8

#: Hard gate on ``incremental_wall_s / rebuild_wall_s``: above this the
#: incremental path has stopped paying for its complexity.
INCREMENTAL_MAX_RATIO = 0.5


def bench_incremental(
    database: list[list[int]],
    min_support: int,
    batches: int = INCREMENTAL_BATCHES,
) -> dict:
    """Stream one dataset in batches; compare against per-batch rebuilds.

    The incremental arm maintains the window forest across ``batches``
    appends (delta tree build + flatten + merge each) and converts once
    at the end — the `repro stream` maintenance shape. The baseline arm
    rebuilds the CFP-tree from scratch over each growing prefix and
    converts it every batch — what a non-incremental pipeline would do
    to keep a snapshot fresh. Both use the same frozen item table, so
    the final arrays must be **byte-identical** (the tripwire `repro
    bench` hard-gates) and the wall ratio must stay under
    :data:`INCREMENTAL_MAX_RATIO`.
    """
    from repro.streaming import CountingPhase, IncrementalMiner

    counting = CountingPhase()
    counting.add_batch(database)
    table = counting.finish(min_support)
    rank_of = table.rank_of
    size = max(1, (len(database) + batches - 1) // batches)
    chunks = [database[start : start + size] for start in range(0, len(database), size)]

    miner = IncrementalMiner(table)
    incremental_wall = 0.0
    for chunk in chunks:
        started = time.perf_counter()
        miner.append_batch(chunk)
        incremental_wall += time.perf_counter() - started
    started = time.perf_counter()
    incremental_array = miner.to_array()
    incremental_wall += time.perf_counter() - started

    rebuild_wall = 0.0
    rebuilt = None
    prefix: list[list[int]] = []
    for chunk in chunks:
        prefix.extend(chunk)
        started = time.perf_counter()
        ranked = [
            sorted({rank_of[item] for item in transaction if item in rank_of})
            for transaction in prefix
        ]
        tree = TernaryCfpTree.from_rank_transactions(ranked, len(table))
        rebuilt = convert(tree)
        rebuild_wall += time.perf_counter() - started
        del tree
    assert rebuilt is not None
    return {
        "batches": len(chunks),
        "transactions": len(database),
        "min_support": min_support,
        "nodes": incremental_array.node_count,
        "array_bytes": incremental_array.memory_bytes,
        "incremental_wall_s": round(incremental_wall, 4),
        "rebuild_wall_s": round(rebuild_wall, 4),
        "ratio": (
            round(incremental_wall / rebuild_wall, 3) if rebuild_wall > 0 else None
        ),
        "identical": (
            bytes(incremental_array.buffer) == bytes(rebuilt.buffer)
            and incremental_array.starts == rebuilt.starts
        ),
    }


# ----------------------------------------------------------------------
# Serving leg: query-server load + support-kernel comparison
# ----------------------------------------------------------------------

#: Concurrent clients the serving leg drives — the paper-repro target is
#: "one shared buffer pool serves 64 concurrent clients", so the bench
#: leg demonstrates exactly that number even in ``--quick`` runs.
SERVING_CLIENTS = 64


def _per_node_support(array, ranks: list[int]) -> int:
    """Reference per-node support walk (the pre-columnar query shape).

    One ``path_ranks`` decode per node of the least frequent rank's
    subarray — the loop shape INV008 bans from the mine/query hot path,
    kept here (bench-only) as the baseline
    :func:`repro.util.queries.support_in_cfp_array` is measured against.
    """
    wanted = sorted(set(ranks))
    least = wanted[-1]
    others = set(wanted[:-1])
    support = 0
    for local, __, ___, count in array.iter_subarray(least):
        if others <= set(array.path_ranks(least, local)):
            support += count
    return support


def _time_queries(run_one, querysets: list[list[int]], repeats: int) -> float:
    """Best-of-``repeats`` wall time of running every queryset once."""
    best: float | None = None
    for __ in range(max(1, repeats)):
        started = time.perf_counter()
        for ranks in querysets:
            run_one(ranks)
        wall = time.perf_counter() - started
        best = wall if best is None else min(best, wall)
    return best or 0.0


def _support_kernel_compare(store, n_queries: int = 32, repeats: int = 3) -> dict:
    """Columnar vs per-node support timing over the store's top itemsets.

    Queries are the store's ``n_queries`` highest-support itemsets of
    length >= 2 (singletons short-circuit to a column sum and would
    measure nothing). Both kernels answer every query once per repeat on
    the same pooled array; a disagreement raises — the comparison doubles
    as a parity check on the reference walk.
    """
    from repro.util.queries import support_in_cfp_array

    table = store.table
    querysets = [
        [table.rank_of[item] for item in itemset]
        for itemset, __ in store.top_k(n_queries, min_length=2)
    ]
    array = store.array
    for ranks in querysets:
        if support_in_cfp_array(array, ranks) != _per_node_support(array, ranks):
            raise ReproError(
                f"columnar and per-node support disagree on ranks {ranks}"
            )
    columnar_s = _time_queries(
        lambda ranks: support_in_cfp_array(array, ranks), querysets, repeats
    )
    per_node_s = _time_queries(
        lambda ranks: _per_node_support(array, ranks), querysets, repeats
    )
    return {
        "support_queries": len(querysets),
        "support_columnar_s": round(columnar_s, 4),
        "support_per_node_s": round(per_node_s, 4),
        "support_speedup": (
            round(per_node_s / columnar_s, 2) if columnar_s > 0 else None
        ),
    }


def bench_serving(
    database: list[list[int]],
    min_support: int,
    clients: int = SERVING_CLIENTS,
    requests_per_client: int = 8,
    workers: int = 8,
    seed: int = 17,
) -> dict:
    """Serve-path leg: build a store, load-test it, compare support kernels.

    Builds a CFP-array store in a temp directory, drives ``clients``
    concurrent NDJSON clients through :func:`repro.serving.loadgen.run_load`
    (every answer parity-checked against direct calls), and appends the
    columnar-vs-per-node support microbenchmark. The returned dict is the
    report's top-level ``serving`` entry.
    """
    import tempfile

    from repro.serving.loadgen import run_load
    from repro.serving.store import ServingStore, build_store

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        array_path = f"{tmp}/store.cfpa"
        build_store(database, min_support, array_path)
        with ServingStore(array_path) as store:
            load = run_load(
                store,
                clients=clients,
                requests_per_client=requests_per_client,
                seed=seed,
                workers=workers,
            )
            entry = load.to_dict()
            entry["requests_per_client"] = requests_per_client
            entry.update(_support_kernel_compare(store))
    return entry


def run_bench(
    dataset_names: Iterable[str] | None = None,
    jobs: Iterable[int] = DEFAULT_JOBS,
    quick: bool = False,
    datasets: dict[str, tuple[list[list[int]], int]] | None = None,
    build_jobs: Iterable[int] = DEFAULT_BUILD_JOBS,
    serving: bool = False,
    outofcore: bool = False,
    incremental: bool = False,
) -> dict:
    """Run the benchmark suite and return the report dict.

    ``datasets`` injects prepared ``{name: (database, min_support)}`` pairs
    directly (tests use this); otherwise ``dataset_names`` picks from the
    registry (default: all of it).
    """
    if datasets is None:
        names = list(dataset_names) if dataset_names else list(DATASETS)
        datasets = {}
        for name in names:
            try:
                loader = DATASETS[name]
            except KeyError:
                known = ", ".join(sorted(DATASETS))
                raise SystemExit(f"unknown bench dataset {name!r}; known: {known}")
            datasets[name] = loader(quick)
    report: dict = {
        "schema": SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            # Which varint decode kernel produced these numbers — a report
            # from a numpy machine is not comparable to a stdlib-only one.
            "kernel_backend": kernels.backend(),
        },
        "datasets": {},
    }
    for name, (database, min_support) in datasets.items():
        report["datasets"][name] = bench_dataset(
            database, min_support, jobs, build_jobs
        )
    if serving and datasets:
        # One serving leg per run, over the first dataset: the leg's point
        # is server-path latency on a shared pool, not dataset coverage.
        first = next(iter(datasets))
        database, min_support = datasets[first]
        report["serving"] = bench_serving(
            database,
            min_support,
            requests_per_client=4 if quick else 16,
        )
        report["serving"]["dataset"] = first
    if outofcore:
        # Dedicated dataset: the leg needs an array that dwarfs the
        # budget, which the regular bench datasets do not in --quick.
        database, min_support = _quest_ooc(quick)
        report["outofcore"] = bench_outofcore(database, min_support)
        report["outofcore"]["dataset"] = "quest-ooc"
    if incremental and datasets:
        # Same first-dataset policy as the serving leg: the incremental
        # leg measures the merge machinery, not dataset coverage.
        first = next(iter(datasets))
        database, min_support = datasets[first]
        report["incremental"] = bench_incremental(database, min_support)
        report["incremental"]["dataset"] = first
    report["peak_rss_kb"] = _peak_rss_kb()
    return report


# ----------------------------------------------------------------------
# Persistence and comparison
# ----------------------------------------------------------------------


def write_report(report: dict, out_dir: str | Path) -> Path:
    """Write ``BENCH_<timestamp>.json`` under ``out_dir``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    path = out / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def find_previous(out_dir: str | Path, exclude: Path | None = None) -> Path | None:
    """Newest ``BENCH_*.json`` in ``out_dir`` (timestamped runs only —
    the committed ``BENCH_baseline.json`` is never picked up implicitly)."""
    out = Path(out_dir)
    candidates = sorted(
        p
        for p in out.glob("BENCH_*.json")
        if p.stem != "BENCH_baseline" and (exclude is None or p != exclude)
    )
    return candidates[-1] if candidates else None


def compare_reports(current: dict, previous: dict, tolerance: float = 0.3) -> list[str]:
    """Flag phases that regressed more than ``tolerance`` vs ``previous``.

    Returns human-readable regression lines (empty = within tolerance).
    Only slowdowns count; getting faster never fails. Deltas below
    :data:`NOISE_FLOOR_SECONDS` are ignored.
    """
    regressions: list[str] = []

    def check(label: str, now: float | None, before: float | None) -> None:
        if not isinstance(now, (int, float)) or not isinstance(before, (int, float)):
            return
        if now - before <= NOISE_FLOOR_SECONDS:
            return
        if before > 0 and now > before * (1.0 + tolerance):
            regressions.append(
                f"{label}: {now:.3f}s vs {before:.3f}s "
                f"(+{(now / before - 1.0) * 100.0:.0f}%, tolerance {tolerance:.0%})"
            )

    for name, entry in current.get("datasets", {}).items():
        before_entry = previous.get("datasets", {}).get(name)
        if before_entry is None:
            continue
        for phase in ("build_s", "convert_s"):
            check(f"{name}/{phase[:-2]}", entry.get(phase), before_entry.get(phase))
        # Per-jobs build map (schema v2); a v1 report on either side simply
        # has no "build" key and this loop is skipped — the serial scalars
        # above still compare.
        for job_count, build in entry.get("build", {}).items():
            before_build = before_entry.get("build", {}).get(job_count)
            if before_build is None:
                continue
            check(
                f"{name}/build@{job_count}",
                build.get("wall_s"),
                before_build.get("wall_s"),
            )
        for job_count, mine in entry.get("mine", {}).items():
            before_mine = before_entry.get("mine", {}).get(job_count)
            if before_mine is None:
                continue
            check(
                f"{name}/mine@{job_count}",
                mine.get("wall_s"),
                before_mine.get("wall_s"),
            )
    # Serving leg (schema v3): gate tail latency. Milliseconds become
    # seconds so the shared noise floor applies unchanged — p99 jitter
    # under 50ms on a loopback load run is noise, not regression. A
    # report without the leg (older schema, --no-serving) is skipped.
    now_serving = current.get("serving") or {}
    before_serving = previous.get("serving") or {}

    def _ms_to_s(value: object) -> float | None:
        return value / 1000.0 if isinstance(value, (int, float)) else None

    for quantile in ("p50_ms", "p99_ms"):
        check(
            f"serving/{quantile[:-3]}",
            _ms_to_s(now_serving.get(quantile)),
            _ms_to_s(before_serving.get(quantile)),
        )
    # Out-of-core leg (schema v4): gate the partitioned mine wall and the
    # bytes pulled off disk. bytes_read is the access-pattern regression
    # detector the wall clock cannot see on a fast SSD — a prefetch or
    # partition-planning bug that re-reads partitions shows up here first.
    now_ooc = current.get("outofcore") or {}
    before_ooc = previous.get("outofcore") or {}
    check("outofcore/mine", now_ooc.get("wall_s"), before_ooc.get("wall_s"))
    # Incremental leg (schema v5): gate the delta-merge maintenance wall.
    # The rebuild arm is the baseline being beaten, not a product path,
    # so only the incremental wall is regression-gated.
    now_incremental = current.get("incremental") or {}
    before_incremental = previous.get("incremental") or {}
    check(
        "incremental/merge",
        now_incremental.get("incremental_wall_s"),
        before_incremental.get("incremental_wall_s"),
    )
    now_bytes = now_ooc.get("bytes_read")
    before_bytes = before_ooc.get("bytes_read")
    if (
        isinstance(now_bytes, (int, float))
        and isinstance(before_bytes, (int, float))
        and before_bytes > 0
        and now_bytes > before_bytes * (1.0 + tolerance)
    ):
        regressions.append(
            f"outofcore/bytes_read: {now_bytes:,.0f} vs {before_bytes:,.0f} "
            f"(+{(now_bytes / before_bytes - 1.0) * 100.0:.0f}%, "
            f"tolerance {tolerance:.0%})"
        )
    return regressions


def parse_mine_floors(specs: Iterable[str]) -> dict[str, float]:
    """Parse ``DATASET=RATE`` mine-throughput floors (comma-separable)."""
    floors: dict[str, float] = {}
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, rate = part.partition("=")
            if not sep or not name:
                raise ValueError(f"--mine-floor expects DATASET=RATE, got {part!r}")
            try:
                floors[name] = float(rate)
            except ValueError:
                raise ValueError(
                    f"--mine-floor rate must be a number, got {part!r}"
                ) from None
    return floors


def check_mine_floors(
    report: dict, floors: dict[str, float], tolerance: float = 0.3
) -> list[str]:
    """Gate single-thread mine throughput against per-dataset floors.

    A floor fails when the serial (``jobs=1``) mine leg's ``nodes_per_s``
    drops below ``RATE * (1 - tolerance)`` — the same tolerance
    philosophy as :func:`compare_reports`, but on throughput, which the
    wall-clock comparison cannot see if a dataset is resized. A dataset
    named by a floor but missing its serial mine leg fails too: a
    silently dropped leg must not pass the gate.
    """
    failures: list[str] = []
    for name, rate in sorted(floors.items()):
        entry = report.get("datasets", {}).get(name) or {}
        mine = entry.get("mine", {}).get("1")
        if mine is None:
            failures.append(
                f"{name}: no serial mine leg in this run "
                f"(floor {rate:,.0f} nodes/s)"
            )
            continue
        actual = mine.get("nodes_per_s") or 0
        allowed = rate * (1.0 - tolerance)
        if actual < allowed:
            failures.append(
                f"{name}/mine@1: {actual:,.0f} nodes/s under floor {rate:,.0f} "
                f"(tolerance {tolerance:.0%} -> allowed {allowed:,.0f})"
            )
    return failures


def format_summary(report: dict) -> str:
    """Paper-style fixed-width summary of one report."""
    lines = [
        f"repro bench — {report['created_utc']}  "
        f"({report['machine']['platform']}, {report['machine']['cpus']} cpus)",
        f"{'dataset':<14} {'tx':>7} {'nodes':>8} {'build':>8} {'convert':>8} "
        f"{'jobs':>4} {'mine':>8} {'speedup':>7} {'nodes/s':>9}",
    ]
    for name, entry in report["datasets"].items():
        first = True
        for job_count, mine in sorted(entry["mine"].items(), key=lambda kv: int(kv[0])):
            prefix = (
                f"{name:<14} {entry['transactions']:>7} {entry['nodes']:>8} "
                f"{entry['build_s']:>8.3f} {entry['convert_s']:>8.3f}"
                if first
                else f"{'':<14} {'':>7} {'':>8} {'':>8} {'':>8}"
            )
            lines.append(
                f"{prefix} {job_count:>4} {mine['wall_s']:>8.3f} "
                f"{mine['speedup']:>6.2f}x {mine['nodes_per_s'] or 0:>9}"
            )
            first = False
        for job_count, build in sorted(
            entry.get("build", {}).items(), key=lambda kv: int(kv[0])
        ):
            if job_count == "1":
                continue
            flag = "" if build.get("identical", True) else "  BYTE MISMATCH"
            lines.append(
                f"{'':<14} build@{job_count}: {build['wall_s']:.3f}s "
                f"{build['speedup']:.2f}x{flag}"
            )
    serving = report.get("serving")
    if serving:
        lines.append(
            f"serving[{serving.get('dataset', '?')}]: {serving['clients']} "
            f"clients x {serving.get('requests_per_client', '?')} req -> "
            f"{serving['rps']:,.0f} req/s  p50 {serving['p50_ms']:.2f}ms  "
            f"p99 {serving['p99_ms']:.2f}ms  "
            f"(pool {serving['pool_hits']} hits / {serving['pool_faults']} "
            f"faults; errors={serving['errors']} "
            f"mismatches={serving['mismatches']})"
        )
        speedup = serving.get("support_speedup")
        if speedup is not None:
            lines.append(
                f"  support kernel: columnar {serving['support_columnar_s']:.4f}s "
                f"vs per-node {serving['support_per_node_s']:.4f}s over "
                f"{serving['support_queries']} queries ({speedup:.1f}x)"
            )
    outofcore = report.get("outofcore")
    if outofcore:
        lines.append(
            f"outofcore[{outofcore.get('dataset', '?')}]: "
            f"{outofcore['array_bytes']:,}B array / "
            f"{outofcore['budget_bytes']:,}B budget "
            f"({outofcore['ratio']:.1f}x) -> mine {outofcore['wall_s']:.3f}s "
            f"({outofcore['slowdown'] or 0:.1f}x in-core, "
            f"{outofcore['nodes_per_s'] or 0:,} nodes/s)  "
            f"read {outofcore['bytes_read']:,}B in {outofcore['faults']} "
            f"faults + {outofcore['prefetched']} prefetched "
            f"(hit-rate {outofcore['prefetch_hit_rate']:.0%}); "
            f"identical={outofcore['identical']}"
        )
    incremental = report.get("incremental")
    if incremental:
        ratio = incremental.get("ratio")
        lines.append(
            f"incremental[{incremental.get('dataset', '?')}]: "
            f"{incremental['batches']} batches x "
            f"~{incremental['transactions'] // max(1, incremental['batches']):,} tx "
            f"-> merge {incremental['incremental_wall_s']:.3f}s vs rebuild "
            f"{incremental['rebuild_wall_s']:.3f}s "
            f"(ratio {ratio if ratio is not None else float('nan'):.2f}, "
            f"max {INCREMENTAL_MAX_RATIO:.2f}); "
            f"identical={incremental['identical']}"
        )
    lines.append(f"peak RSS: {report['peak_rss_kb']:,} KiB")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry point (shared by `repro bench` and benchmarks/regression.py)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """Run benchmarks, persist the report, compare, and gate.

    Exit codes: 0 ok, 1 regression beyond tolerance, 2 usage error.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="wall-clock perf benchmark with regression gate",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized datasets")
    parser.add_argument(
        "--datasets",
        default=None,
        help=f"comma-separated subset of: {', '.join(sorted(DATASETS))}",
    )
    parser.add_argument(
        "--jobs",
        default=",".join(str(j) for j in DEFAULT_JOBS),
        help="comma-separated worker counts for the mine phase (default 1,2,4)",
    )
    parser.add_argument(
        "--build-jobs",
        default=",".join(str(j) for j in DEFAULT_BUILD_JOBS),
        help="comma-separated worker counts for the build phase (default 1,2,4)",
    )
    parser.add_argument(
        "--output-dir", default="benchmarks", help="where BENCH_*.json lands"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="report to compare against (default: newest BENCH_*.json in output dir)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed slowdown fraction before failing (default 0.3 = 30%%)",
    )
    parser.add_argument(
        "--no-compare", action="store_true", help="measure and write only"
    )
    parser.add_argument(
        "--no-serving",
        action="store_true",
        help="skip the query-server load leg (docs/serving.md)",
    )
    parser.add_argument(
        "--no-outofcore",
        action="store_true",
        help="skip the partitioned out-of-core mine leg (docs/performance.md)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="skip the delta-merge vs rebuild leg (docs/streaming.md)",
    )
    parser.add_argument(
        "--mine-floor",
        action="append",
        default=[],
        metavar="DATASET=RATE",
        help="fail when DATASET's serial mine leg drops below RATE nodes/s "
        "(gated by --tolerance; repeatable, comma-separable)",
    )
    parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="record a JSONL span trace of the whole run (docs/observability.md)",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="measure tracing overhead on the serial mine phase and gate it",
    )
    parser.add_argument(
        "--trace-overhead-max",
        type=float,
        default=8.0,
        help="max allowed tracing overhead in percent (default 8.0)",
    )
    args = parser.parse_args(argv)

    try:
        jobs = [int(j) for j in args.jobs.split(",") if j.strip()]
    except ValueError:
        print(f"error: --jobs must be comma-separated ints: {args.jobs!r}", file=sys.stderr)
        return 2
    try:
        build_jobs = [int(j) for j in args.build_jobs.split(",") if j.strip()]
    except ValueError:
        print(
            f"error: --build-jobs must be comma-separated ints: {args.build_jobs!r}",
            file=sys.stderr,
        )
        return 2
    names = args.datasets.split(",") if args.datasets else None
    try:
        mine_floors = parse_mine_floors(args.mine_floor)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    previous_path: Path | None
    if args.baseline:
        previous_path = Path(args.baseline)
        if not previous_path.exists():
            print(f"error: baseline {previous_path} not found", file=sys.stderr)
            return 2
    else:
        previous_path = find_previous(args.output_dir)

    tracer = None
    if args.trace:
        from repro import obs
        from repro.obs.tracer import Tracer

        obs.metrics.reset()
        tracer = Tracer()
        obs.set_tracer(tracer)
    try:
        report = run_bench(
            names,
            jobs,
            quick=args.quick,
            build_jobs=build_jobs,
            serving=not args.no_serving,
            outofcore=not args.no_outofcore,
            incremental=not args.no_incremental,
        )
    finally:
        if tracer is not None:
            from repro import obs

            obs.set_tracer(None)
            lines = tracer.write_jsonl(args.trace, registry=obs.metrics)
            print(f"trace: {lines} lines -> {args.trace}")
    if args.trace_overhead:
        # Measured after the bench tracer is gone: the "plain" arm must
        # run with tracing fully disabled. Quick-sized probe regardless of
        # --quick so the gate's runtime stays bounded.
        sample_name = (names or list(DATASETS))[0]
        database, min_support = DATASETS[sample_name](True)
        report["trace_overhead"] = measure_trace_overhead(database, min_support)
    path = write_report(report, args.output_dir)
    print(format_summary(report))
    print(f"report: {path}")
    mismatches = [
        f"{name}/build@{job_count}"
        for name, entry in report["datasets"].items()
        for job_count, build in entry.get("build", {}).items()
        if not build.get("identical", True)
    ]
    if mismatches:
        print(
            f"error: parallel build produced a different CFP-array than the "
            f"serial build: {', '.join(sorted(mismatches))}",
            file=sys.stderr,
        )
        return 1
    outofcore = report.get("outofcore") or {}
    if outofcore:
        if not outofcore.get("identical", False):
            print(
                "error: out-of-core leg mined different itemsets than the "
                "in-core reference",
                file=sys.stderr,
            )
            return 1
        if not outofcore.get("prefetch_hits"):
            # The leg must demonstrate read-ahead actually working, not
            # just surviving: zero hits means the prefetcher died or the
            # partition schedule stopped feeding it.
            print(
                "error: out-of-core leg recorded no prefetch hits "
                "(read-ahead is not reaching the pool before demand does)",
                file=sys.stderr,
            )
            return 1
    incremental = report.get("incremental") or {}
    if incremental:
        if not incremental.get("identical", False):
            # The identity tripwire: the merged forest must encode to the
            # same bytes as a from-scratch rebuild, always.
            print(
                "error: incremental leg's merged CFP-array differs from the "
                "from-scratch rebuild (byte-identity tripwire)",
                file=sys.stderr,
            )
            return 1
        ratio = incremental.get("ratio")
        # The ratio gate is defined at the full INCREMENTAL_BATCHES
        # configuration; a dataset too small to fill it (toy datasets in
        # tests) cannot amortize per-merge overhead, so only the
        # byte-identity tripwire applies there.
        full_leg = incremental.get("batches") == INCREMENTAL_BATCHES
        if full_leg and ratio is not None and ratio >= INCREMENTAL_MAX_RATIO:
            print(
                f"error: incremental merge wall is {ratio:.2f}x the rebuild "
                f"wall (must stay under {INCREMENTAL_MAX_RATIO:.2f}x at "
                f"{incremental.get('batches', '?')} batches)",
                file=sys.stderr,
            )
            return 1
    serving = report.get("serving") or {}
    if serving.get("errors") or serving.get("mismatches"):
        # The load run is also a correctness run: every response was
        # compared against the direct library call.
        print(
            f"error: serving leg saw {serving.get('errors', 0)} errors and "
            f"{serving.get('mismatches', 0)} answers that differ from "
            f"direct calls",
            file=sys.stderr,
        )
        return 1
    if args.trace_overhead:
        oh = report["trace_overhead"]
        print(
            f"trace overhead: {oh['overhead_pct']:.2f}% "
            f"({oh['plain_s']:.3f}s plain vs {oh['traced_s']:.3f}s traced, "
            f"max {args.trace_overhead_max:.1f}%)"
        )
        if oh["overhead_pct"] > args.trace_overhead_max:
            print(
                f"error: tracing overhead {oh['overhead_pct']:.2f}% exceeds "
                f"the {args.trace_overhead_max:.1f}% budget",
                file=sys.stderr,
            )
            return 1

    if mine_floors:
        floor_failures = check_mine_floors(report, mine_floors, args.tolerance)
        if floor_failures:
            print("\nmine-throughput floor violations:", file=sys.stderr)
            for line in floor_failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"mine floors ok for {', '.join(sorted(mine_floors))} "
            f"(tolerance {args.tolerance:.0%})"
        )

    if args.no_compare or previous_path is None:
        if previous_path is None and not args.no_compare:
            print("no previous report found; this run becomes the baseline")
        return 0
    previous = json.loads(previous_path.read_text())
    regressions = compare_reports(report, previous, args.tolerance)
    if regressions:
        print(f"\nperf regressions vs {previous_path}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"no regressions vs {previous_path} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
