"""TopDown: largest-itemsets-first mining (paper §1, ref [32]).

Top-down algorithms construct the largest frequent itemsets first and work
downwards, re-scanning the database per level. This implementation captures
that cost profile directly: for ``k`` from the longest transaction down to
1, it gathers every k-subset occurring in the (prepared) database, counts
it, and reports the frequent ones.

The per-level subset enumeration is exponential in transaction length —
which is exactly why the paper's Figure-8 class of prefix-tree algorithms
superseded this family. The miner guards against pathological inputs with
``max_transaction_length``.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.algorithms.base import ItemsetResult, register
from repro.errors import ExperimentError
from repro.util.items import TransactionDatabase, prepare_transactions

#: Above this transaction length the level-wise subset enumeration is
#: hopeless; the miner refuses rather than appearing to hang.
DEFAULT_MAX_TRANSACTION_LENGTH = 24


def topdown_ranks(
    transactions: list[list[int]],
    min_support: int,
    max_transaction_length: int = DEFAULT_MAX_TRANSACTION_LENGTH,
) -> list[tuple[tuple[int, ...], int]]:
    """Top-down mining over prepared rank transactions."""
    longest = max((len(t) for t in transactions), default=0)
    if longest > max_transaction_length:
        raise ExperimentError(
            f"topdown cannot handle transactions of length {longest} "
            f"(limit {max_transaction_length})"
        )
    results: list[tuple[tuple[int, ...], int]] = []
    for size in range(longest, 0, -1):
        counts: Counter = Counter()
        for transaction in transactions:
            if len(transaction) >= size:
                counts.update(combinations(transaction, size))
        results.extend(
            (itemset, count)
            for itemset, count in counts.items()
            if count >= min_support
        )
    return results


@register
class TopDownMiner:
    """Largest-first levelwise miner."""

    name = "topdown"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in topdown_ranks(transactions, min_support)
        ]
