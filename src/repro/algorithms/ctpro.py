"""CT-PRO: compressed FP-tree via subtree sharing (paper §5, ref [27]).

Sucahyo & Gopalan's CT-ITL/CT-PRO work on a compressed FP-tree that "avoids
repeated storage of similar subtrees". This implementation realizes that
with hash-consing: after the prefix trie is built, structurally identical
subtrees (same item, count, and children identities) are shared, turning
the tree into a DAG. The compressed size — distinct subtrees times the node
record — is what the memory model reports; as the paper notes, the ratio is
below CFP-growth's because sharing requires *exact* subtree matches while
the CFP-tree compresses every node unconditionally.

Mining runs FP-growth-style over the trie (the DAG is a storage
optimization; conditional steps use prefix paths as usual).
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.fptree.growth import ListCollector, mine_tree
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions

#: Bytes per node record in the compressed tree (item, count, child ref).
CT_NODE_BYTES = 16


def hash_cons_size(tree: FPTree) -> tuple[int, int]:
    """Count distinct subtrees: ``(shared_nodes, total_nodes)``.

    A postorder pass assigns each subtree a signature ``(rank, count,
    sorted child signatures)``; equal signatures share storage.
    """
    signatures: dict[tuple, int] = {}

    def signature(node) -> int:
        children = tuple(
            sorted(signature(child) for child in node.children.values())
        )
        key = (node.rank, node.count, children)
        if key not in signatures:
            signatures[key] = len(signatures)
        return signatures[key]

    total = 0
    for child in tree.root.children.values():
        signature(child)
    for __ in tree.iter_nodes():
        total += 1
    return len(signatures), total


class CompressedTree:
    """An FP-tree plus its hash-consed size accounting."""

    def __init__(self, tree: FPTree):
        self.tree = tree
        self.shared_nodes, self.total_nodes = hash_cons_size(tree)

    @property
    def memory_bytes(self) -> int:
        return self.shared_nodes * CT_NODE_BYTES

    @property
    def compression_ratio(self) -> float:
        """Fraction of nodes remaining after sharing (1.0 = no sharing)."""
        if self.total_nodes == 0:
            return 1.0
        return self.shared_nodes / self.total_nodes


def ctpro_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int
) -> list[tuple[tuple[int, ...], int]]:
    compressed = CompressedTree(FPTree.from_rank_transactions(transactions, n_ranks))
    collector = ListCollector()
    mine_tree(compressed.tree, min_support, collector)
    return collector.itemsets


@register
class CtProMiner:
    """CT-PRO-style compressed-tree miner."""

    name = "ct-pro"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in ctpro_ranks(transactions, len(table), min_support)
        ]
