"""FP-array: cache-conscious path-unrolled FP-tree (paper §5, ref [16]).

The PARSEC-suite FP-array implementation (a) loads the *complete dataset*
into main memory during the first scan, (b) builds the FP-tree in-memory
during the second scan reusing the input's space, and (c) converts the tree
into an array in which each leaf-to-root path is stored contiguously —
improving cache locality at the price of memory ("the FP-array requires
roughly the same amount of memory as regular FP-growth", and the dataset
copy keeps it above the physical limit throughout the paper's Figure 8).

This implementation performs those steps: the dataset copy is retained for
the build, the tree is unrolled into a flat array of ``(rank, count,
parent_index)`` records in leaf-to-root path order, and mining runs over
that array (conditional steps rebuild small trees, as the original does for
its conditional structures).
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.fptree.growth import ListCollector
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions

#: Bytes per unrolled array record: rank + count + parent (3 x 4 B).
RECORD_BYTES = 12


class FpArrayStructure:
    """Path-unrolled array representation of an FP-tree."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self.ranks: list[int] = []
        self.counts: list[int] = []
        self.parents: list[int] = []
        #: node indices per rank (takes the role of the nodelinks).
        self.by_rank: dict[int, list[int]] = defaultdict(list)

    @classmethod
    def from_tree(cls, tree: FPTree) -> "FpArrayStructure":
        structure = cls(tree.n_ranks)
        index_of: dict[int, int] = {}
        # Unroll each leaf-to-root path: parents of a node are appended
        # right after it unless already placed (shared prefix).
        leaves = [n for n in tree.iter_nodes() if not n.children]
        for leaf in leaves:
            node = leaf
            chain = []
            while node is not None and node.rank != 0 and id(node) not in index_of:
                chain.append(node)
                node = node.parent
            parent_index = index_of.get(id(node), -1) if node is not None else -1
            for member in reversed(chain):
                index = len(structure.ranks)
                index_of[id(member)] = index
                structure.ranks.append(member.rank)
                structure.counts.append(member.count)
                structure.parents.append(parent_index)
                structure.by_rank[member.rank].append(index)
                parent_index = index
        return structure

    @property
    def node_count(self) -> int:
        return len(self.ranks)

    @property
    def memory_bytes(self) -> int:
        return self.node_count * RECORD_BYTES

    def path_ranks(self, index: int) -> list[int]:
        path = []
        index = self.parents[index]
        while index >= 0:
            path.append(self.ranks[index])
            index = self.parents[index]
        path.reverse()
        return path


def _mine(
    structure: FpArrayStructure, min_support: int, suffix, collector, meter=None
) -> None:
    for rank in range(structure.n_ranks, 0, -1):
        indices = structure.by_rank.get(rank)
        if not indices:
            continue
        support = sum(structure.counts[i] for i in indices)
        if support < min_support:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        paths = []
        item_counts: dict[int, int] = defaultdict(int)
        visits = 0
        for index in indices:
            path = structure.path_ranks(index)
            visits += len(path) + 1
            if path:
                count = structure.counts[index]
                paths.append((path, count))
                for path_rank in path:
                    item_counts[path_rank] += count
        if meter is not None:
            meter.add_ops(visits, visits * RECORD_BYTES)
        frequent = {r for r, c in item_counts.items() if c >= min_support}
        if not frequent:
            continue
        conditional = FPTree(structure.n_ranks)
        for path, count in paths:
            filtered = [r for r in path if r in frequent]
            if filtered:
                conditional.insert(filtered, count)
        if not conditional.is_empty():
            cond_structure = FpArrayStructure.from_tree(conditional)
            if meter is not None:
                meter.on_structure_built(cond_structure.memory_bytes)
            _mine(cond_structure, min_support, itemset, collector, meter)
            if meter is not None:
                meter.on_structure_freed(cond_structure.memory_bytes)


def dataset_bytes(transactions: list[list[int]]) -> int:
    """In-memory size of the loaded dataset copy (4 B per occurrence)."""
    return sum(len(t) for t in transactions) * 4


def fparray_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int, meter=None
) -> list[tuple[tuple[int, ...], int]]:
    # Step (a): the dataset copy stays alive for the whole build phase.
    in_memory_dataset = [list(t) for t in transactions]
    if meter is not None:
        meter.on_structure_built(dataset_bytes(in_memory_dataset))
    tree = FPTree.from_rank_transactions(in_memory_dataset, n_ranks)
    structure = FpArrayStructure.from_tree(tree)
    if meter is not None:
        # Tree and array coexist during the unroll; the dataset copy and
        # the tree are then released.
        meter.on_structure_built(tree.node_count * 40)
        meter.on_structure_built(structure.memory_bytes)
        meter.on_structure_freed(tree.node_count * 40)
        meter.on_structure_freed(dataset_bytes(in_memory_dataset))
    del in_memory_dataset
    collector = ListCollector()
    _mine(structure, min_support, (), collector, meter)
    return collector.itemsets


@register
class FpArrayMiner:
    """PARSEC-style FP-array miner."""

    name = "fp-array"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in fparray_ranks(transactions, len(table), min_support)
        ]
