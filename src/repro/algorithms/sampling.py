"""Sampling-based approximate mining (paper §5 class 3, Toivonen [28]).

When even compressed structures cannot fit, the paper's class (3) notes
that sampling trades exactness for memory: mine a random sample at a
*lowered* threshold, then verify on the full database. Toivonen's check
makes the result certifiable: if no itemset in the sample's *negative
border* (minimal non-frequent-in-sample itemsets) turns out frequent in
the full data, the verified output is provably complete.

The returned report states whether completeness was certified; callers
can retry with a larger sample or lower factor otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Hashable

from repro.algorithms.base import ItemsetResult, register
from repro.errors import ExperimentError
from repro.util.items import TransactionDatabase


@dataclass
class SampleReport:
    """Outcome of one sampling run."""

    sample_size: int
    lowered_support: int
    candidates_checked: int
    border_checked: int
    certified_complete: bool
    """True when the negative-border check proves no itemset was missed."""


def sample_mine(
    database: TransactionDatabase,
    min_support: int,
    sample_fraction: float = 0.5,
    lowering_factor: float = 0.8,
    seed: int = 0,
) -> tuple[list[ItemsetResult], SampleReport]:
    """Toivonen-style sampling miner.

    Returns exact-by-verification frequent itemsets of the *full* database
    (every reported support is a true full-database count) plus a report
    saying whether completeness is certified.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ExperimentError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    if not 0.0 < lowering_factor <= 1.0:
        raise ExperimentError(f"lowering_factor must be in (0, 1], got {lowering_factor}")
    # Imported here: repro.core.cfp_growth imports the algorithms package
    # for its registry, so a module-level import would be circular.
    from repro.core.cfp_growth import cfp_growth

    database = list(database)
    rng = random.Random(seed)
    sample_size = max(1, round(sample_fraction * len(database)))
    sample = rng.sample(database, sample_size) if database else []
    lowered = max(1, int(lowering_factor * min_support * sample_fraction))

    sample_frequent = cfp_growth(sample, lowered)
    candidates = {frozenset(itemset) for itemset, __ in sample_frequent}
    border = _negative_border(candidates)

    # One full-database pass verifies candidates and border together.
    to_check = candidates | border
    counts = dict.fromkeys(to_check, 0)
    for transaction in database:
        items = frozenset(transaction)
        for candidate in to_check:
            if candidate <= items:
                counts[candidate] += 1

    verified = [
        (tuple(sorted(itemset, key=repr)), counts[itemset])
        for itemset in candidates
        if counts[itemset] >= min_support
    ]
    missed = any(counts[itemset] >= min_support for itemset in border)
    report = SampleReport(
        sample_size=sample_size,
        lowered_support=lowered,
        candidates_checked=len(candidates),
        border_checked=len(border),
        certified_complete=not missed,
    )
    return verified, report


def _negative_border(frequent: set[frozenset]) -> set[frozenset]:
    """Minimal itemsets outside ``frequent`` whose subsets are all inside.

    Generated Apriori-style: join frequent (k-1)-sets, keep non-members
    with all subsets frequent; plus the non-frequent single items of pairs
    are not derivable here, so singletons outside ``frequent`` are added
    from the items that appear in it (the classic construction).
    """
    border: set[frozenset] = set()
    items = set()
    for itemset in frequent:
        items |= itemset
    by_size: dict[int, set[frozenset]] = {}
    for itemset in frequent:
        by_size.setdefault(len(itemset), set()).add(itemset)
    max_size = max(by_size, default=0)
    for size in range(1, max_size + 2):
        smaller = by_size.get(size - 1, set())
        for base in smaller or {frozenset()}:
            for item in items:
                if item in base:
                    continue
                candidate = base | {item}
                if len(candidate) != size or candidate in frequent:
                    continue
                if all(
                    frozenset(sub) in frequent
                    for sub in combinations(candidate, size - 1)
                ):
                    border.add(candidate)
    return border


@register
class SamplingMiner:
    """Miner-interface wrapper; reports only verified itemsets."""

    name = "sampling"

    def __init__(self, sample_fraction: float = 0.5, seed: int = 0):
        self.sample_fraction = sample_fraction
        self.seed = seed

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        results, __ = sample_mine(
            database, min_support, self.sample_fraction, seed=self.seed
        )
        return results
