"""Apriori: bottom-up candidate generation (paper §1, refs [1, 3]).

The classic levelwise algorithm: frequent 1-itemsets seed candidate
2-itemsets, counted with a full database scan; survivors seed level 3, and
so on. Its cost profile — one scan per level plus candidate storage — is
why the paper classes it below the prefix-tree algorithms.

Candidates are generated with the standard sorted-prefix join and pruned by
the downward-closure property before counting. Transactions are stored as
rank lists; counting enumerates each transaction's k-subsets only while the
candidate set is comparatively large, otherwise probes candidates directly.
"""

from __future__ import annotations

from itertools import combinations

from repro.algorithms.base import ItemsetResult, register
from repro.util.items import TransactionDatabase, prepare_transactions


def apriori_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int
) -> list[tuple[tuple[int, ...], int]]:
    """Apriori over prepared rank transactions; returns rank itemsets."""
    results: list[tuple[tuple[int, ...], int]] = [
        ((rank,), sum(1 for t in transactions if rank in set(t)))
        for rank in range(1, n_ranks + 1)
    ]
    results = [(itemset, s) for itemset, s in results if s >= min_support]
    frequent: list[tuple[int, ...]] = [itemset for itemset, __ in results]
    size = 1
    while frequent:
        size += 1
        candidates = _generate_candidates(frequent, size)
        if not candidates:
            break
        counts = dict.fromkeys(candidates, 0)
        for transaction in transactions:
            if len(transaction) < size:
                continue
            if len(candidates) > len(transaction) ** 2:
                # Few long transactions: enumerate the transaction's subsets.
                for subset in combinations(transaction, size):
                    if subset in counts:
                        counts[subset] += 1
            else:
                items = set(transaction)
                for candidate in candidates:
                    if items.issuperset(candidate):
                        counts[candidate] += 1
        frequent = sorted(c for c, n in counts.items() if n >= min_support)
        results.extend((c, counts[c]) for c in frequent)
    return results


def _generate_candidates(
    frequent: list[tuple[int, ...]], size: int
) -> set[tuple[int, ...]]:
    """Sorted-prefix join plus downward-closure pruning."""
    frequent_set = set(frequent)
    by_prefix: dict[tuple[int, ...], list[int]] = {}
    for itemset in frequent:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    candidates = set()
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                candidate = prefix + (a, b)
                if all(
                    candidate[:j] + candidate[j + 1 :] in frequent_set
                    for j in range(size)
                ):
                    candidates.add(candidate)
    return candidates


@register
class AprioriMiner:
    """Classic Apriori."""

    name = "apriori"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in apriori_ranks(
                transactions, len(table), min_support
            )
        ]
