"""Registry entry for the reference FP-growth miner (lives in repro.fptree)."""

from repro.algorithms.base import register
from repro.fptree.growth import FPGrowthMiner

register(FPGrowthMiner)

__all__ = ["FPGrowthMiner"]
