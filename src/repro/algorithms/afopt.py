"""AFOPT: ascending-frequency ordered prefix tree with push-right (ref [18]).

AFOPT inverts FP-growth's item order: transactions are sorted by *ascending*
item frequency, so the least frequent items sit at the top of the prefix
tree. Mining is top-down: the first item in order occurs only among the
root's children; its subtree *is* its conditional database. After a branch
is mined, its subtree is merged into the remaining siblings ("push right"),
which restores the invariant for the next item. No conditional trees are
rebuilt from prefix paths — subtrees are reused and merged instead.

Ranks are processed from ``n`` (least frequent) down to 1; along any path
ranks strictly decrease.
"""

from __future__ import annotations

from repro.algorithms.base import ItemsetResult, register
from repro.util.items import TransactionDatabase, prepare_transactions


class AfoptNode:
    """Prefix-tree node of the ascending-frequency tree."""

    __slots__ = ("count", "children")

    def __init__(self, count: int = 0):
        self.count = count
        self.children: dict[int, AfoptNode] = {}

    def copy(self) -> "AfoptNode":
        clone = AfoptNode(self.count)
        clone.children = {rank: child.copy() for rank, child in self.children.items()}
        return clone


def build_afopt_tree(transactions: list[list[int]]) -> AfoptNode:
    """Build the tree over transactions sorted by ascending frequency."""
    root = AfoptNode()
    for ranks in transactions:
        node = root
        # Prepared transactions are ascending-rank; AFOPT wants ascending
        # frequency, i.e. descending rank.
        for rank in reversed(ranks):
            child = node.children.get(rank)
            if child is None:
                child = AfoptNode()
                node.children[rank] = child
            child.count += 1
            node = child
    return root


def _merge(target: dict[int, AfoptNode], source: dict[int, AfoptNode]) -> None:
    """Push-right: fold ``source`` subtrees into ``target`` (consuming them)."""
    for rank, node in source.items():
        existing = target.get(rank)
        if existing is None:
            target[rank] = node
        else:
            existing.count += node.count
            _merge(existing.children, node.children)


#: Modeled bytes per AFOPT trie node (count + child-map overhead).
AFOPT_NODE_BYTES = 32


def subtree_size(children: dict[int, AfoptNode]) -> int:
    """Node count of a forest (for footprint accounting)."""
    total = 0
    stack = list(children.values())
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node.children.values())
    return total


def _mine(
    children: dict[int, AfoptNode],
    prefix: tuple[int, ...],
    min_support: int,
    results: list,
    meter=None,
) -> None:
    # Ascending frequency = descending rank. Push-right merges add new
    # (always smaller) ranks while the loop runs, so the next item is
    # re-selected dynamically instead of from a snapshot.
    while children:
        rank = max(children)
        node = children.pop(rank)
        if node.count >= min_support:
            results.append((prefix + (rank,), node.count))
            # The subtree is both the conditional database (mined on a copy,
            # since mining consumes it) and the push-right source.
            conditional = {r: c.copy() for r, c in node.children.items()}
            size = 0
            if meter is not None:
                size = subtree_size(conditional) * AFOPT_NODE_BYTES
                meter.on_structure_built(size)
                meter.add_ops(size // AFOPT_NODE_BYTES + 1, size)
            _mine(conditional, prefix + (rank,), min_support, results, meter)
            if meter is not None:
                meter.on_structure_freed(size)
        _merge(children, node.children)


def afopt_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int, meter=None
) -> list[tuple[tuple[int, ...], int]]:
    root = build_afopt_tree(transactions)
    if meter is not None:
        meter.on_structure_built(subtree_size(root.children) * AFOPT_NODE_BYTES)
    results: list[tuple[tuple[int, ...], int]] = []
    _mine(root.children, (), min_support, results, meter)
    # Normalize itemsets to ascending rank order for callers.
    return [(tuple(sorted(ranks)), support) for ranks, support in results]


@register
class AfoptMiner:
    """Ascending-frequency prefix-tree miner with push-right merging."""

    name = "afopt"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in afopt_ranks(transactions, len(table), min_support)
        ]
