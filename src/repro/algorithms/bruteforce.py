"""Levelwise brute-force miner — the correctness oracle for all others.

Intentionally simple: candidates of size ``k`` are counted by scanning every
transaction. Only suitable for the small databases used in tests.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Hashable

from repro.algorithms.base import ItemsetResult, register
from repro.util.items import TransactionDatabase, build_item_table


def brute_force(
    database: TransactionDatabase, min_support: int
) -> list[ItemsetResult]:
    """Enumerate every frequent itemset by direct counting."""
    table = build_item_table(database, min_support)
    frequent_items = set(table.supports)
    transactions = [frozenset(t) & frequent_items for t in database]
    results: list[ItemsetResult] = [
        ((item,), support) for item, support in table.supports.items()
    ]
    current = [frozenset([item]) for item in frequent_items]
    size = 1
    while current:
        size += 1
        candidates = _join(current, size)
        counts: Counter = Counter()
        for transaction in transactions:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = [c for c in candidates if counts[c] >= min_support]
        results.extend((tuple(sorted(c, key=repr)), counts[c]) for c in current)
    return results


def _join(previous: list[frozenset], size: int) -> list[frozenset]:
    """Generate size-``size`` candidates whose every subset was frequent."""
    previous_set = set(previous)
    items = sorted({item for itemset in previous for item in itemset}, key=repr)
    candidates = []
    seen = set()
    for itemset in previous:
        for item in items:
            if item in itemset:
                continue
            candidate = itemset | {item}
            if candidate in seen or len(candidate) != size:
                continue
            seen.add(candidate)
            if all(
                frozenset(sub) in previous_set
                for sub in combinations(candidate, size - 1)
            ):
                candidates.append(candidate)
    return candidates


@register
class BruteForceMiner:
    """Miner-interface wrapper around :func:`brute_force`."""

    name = "brute-force"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[tuple[tuple[Hashable, ...], int]]:
        return brute_force(database, min_support)
