"""FP-growth-Tiny: mining without conditional trees (paper §5, ref [20]).

Ozkural et al.'s variant never materializes conditional FP-trees: all work
happens on the initial (big) tree. This implementation realizes that idea
with *projected node weights*: a conditional pattern base is represented as
a mapping from nodes of the original tree to projected counts. For each
extension item, the weights are propagated up the parent pointers and
re-grouped by item — no new tree is ever built.

The consequence the paper highlights (§4.5): the initial tree must stay
resident for the whole run, so on large data the algorithm exhausts memory
before the conditional-tree algorithms do, even though it saves the
conditional trees themselves.
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.fptree.node import FPNode
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions


#: Modeled bytes per projection entry (node reference + weight).
PROJECTION_ENTRY_BYTES = 12


def _mine_projection(
    nodes: dict[FPNode, int],
    prefix: tuple[int, ...],
    min_support: int,
    results: list,
    meter=None,
) -> None:
    """Mine the conditional base given as node -> projected-count weights."""
    # Propagate weights to every ancestor, grouping by rank.
    by_rank: dict[int, dict[FPNode, int]] = defaultdict(lambda: defaultdict(int))
    hops = 0
    for node, weight in nodes.items():
        ancestor = node.parent
        while ancestor is not None and ancestor.rank != 0:
            hops += 1
            by_rank[ancestor.rank][ancestor] += weight
            ancestor = ancestor.parent
    if meter is not None:
        meter.add_ops(hops + len(nodes), hops * 40)  # walks the big tree
    for rank in sorted(by_rank, reverse=True):
        group = by_rank[rank]
        support = sum(group.values())
        if support < min_support:
            continue
        itemset = (rank,) + prefix
        results.append((itemset, support))
        size = len(group) * PROJECTION_ENTRY_BYTES
        if meter is not None:
            meter.on_structure_built(size)
        _mine_projection(group, itemset, min_support, results, meter)
        if meter is not None:
            meter.on_structure_freed(size)


def fpgrowth_tiny_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int, meter=None
) -> list[tuple[tuple[int, ...], int]]:
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    if meter is not None:
        # The initial 40 B/node tree stays resident for the whole run —
        # the limitation the paper highlights in §4.5.
        meter.on_structure_built(tree.node_count * 40)
    results: list[tuple[tuple[int, ...], int]] = []
    for rank in tree.active_ranks_descending():
        support = tree.rank_count(rank)
        if support < min_support:
            continue
        results.append(((rank,), support))
        projection = {node: node.count for node in tree.nodes_of(rank)}
        _mine_projection(projection, (rank,), min_support, results, meter)
    return results


@register
class FpGrowthTinyMiner:
    """Conditional-tree-free FP-growth on the initial tree."""

    name = "fp-growth-tiny"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in fpgrowth_tiny_ranks(
                transactions, len(table), min_support
            )
        ]
