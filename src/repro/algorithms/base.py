"""Common miner interface and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Protocol, runtime_checkable

from repro.errors import ExperimentError
from repro.util.items import TransactionDatabase

#: One mining result: itemset (original items) and its absolute support.
ItemsetResult = tuple[tuple[Hashable, ...], int]


@dataclass
class MinerStats:
    """Operation counts and footprint trace reported by instrumented miners.

    These feed the simulated machine (:mod:`repro.machine`): the *footprint
    samples* record (structure, live bytes, access pattern) over the run, the
    op counters are converted to time by the cost model.
    """

    node_allocations: int = 0
    """Prefix-tree (or equivalent) nodes created."""

    node_visits: int = 0
    """Nodes touched during build searches and mine traversals."""

    bytes_written: int = 0
    """Bytes materialized into long-lived data structures."""

    bytes_read: int = 0
    """Bytes re-read from long-lived data structures during mining."""

    peak_bytes: int = 0
    """Peak simultaneous footprint of all structures, in physical bytes."""

    avg_bytes: float = 0.0
    """Time-averaged footprint (weighted by op counts at sample times)."""

    itemset_count: int = 0
    """Number of frequent itemsets produced."""

    phase_ops: dict[str, int] = field(default_factory=dict)
    """Per-phase operation counts (scan/build/convert/mine)."""

    random_access_fraction: float = 0.5
    """Fraction of structure bytes touched with random (non-sequential)
    access during the phases that dominate when memory overflows."""


@runtime_checkable
class Miner(Protocol):
    """The interface every algorithm implements."""

    name: str

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        """Return all frequent itemsets with their supports."""


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator: register a miner under its ``name`` attribute."""
    name = getattr(cls, "name", None)
    if not name:
        raise ExperimentError(f"miner class {cls.__name__} has no name")
    _REGISTRY[name] = cls
    return cls


def get_miner(name: str) -> Miner:
    """Instantiate the registered miner called ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown miner {name!r}; known: {known}") from None
    return cls()


def iter_miners() -> list[str]:
    """Names of all registered miners, sorted."""
    return sorted(_REGISTRY)
