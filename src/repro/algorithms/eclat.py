"""Eclat: vertical tidset intersection (a standard FIMI baseline).

The database is pivoted into one transaction-id set per item; the support
of an itemset is the size of the intersection of its members' tidsets.
Depth-first search extends each prefix with larger ranks, intersecting the
running tidset — no prefix tree is built, but tidset memory is proportional
to the database's item occurrences and grows with recursion depth.
"""

from __future__ import annotations

from repro.algorithms.base import ItemsetResult, register
from repro.util.items import TransactionDatabase, prepare_transactions


def eclat_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int
) -> list[tuple[tuple[int, ...], int]]:
    """Eclat over prepared rank transactions."""
    tidsets: dict[int, set[int]] = {rank: set() for rank in range(1, n_ranks + 1)}
    for tid, ranks in enumerate(transactions):
        for rank in ranks:
            tidsets[rank].add(tid)
    items = [
        (rank, tids)
        for rank, tids in sorted(tidsets.items())
        if len(tids) >= min_support
    ]
    results: list[tuple[tuple[int, ...], int]] = []
    _extend((), items, min_support, results)
    return results


def _extend(
    prefix: tuple[int, ...],
    items: list[tuple[int, set[int]]],
    min_support: int,
    results: list,
) -> None:
    for i, (rank, tids) in enumerate(items):
        itemset = prefix + (rank,)
        results.append((itemset, len(tids)))
        extensions = []
        for other_rank, other_tids in items[i + 1 :]:
            joined = tids & other_tids
            if len(joined) >= min_support:
                extensions.append((other_rank, joined))
        if extensions:
            _extend(itemset, extensions, min_support, results)


@register
class EclatMiner:
    """Vertical-format Eclat."""

    name = "eclat"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in eclat_ranks(transactions, len(table), min_support)
        ]
