"""Frequent-itemset miners used in the paper's evaluation (§4.5, §5).

Every miner implements the same interface (:class:`repro.algorithms.Miner`):
``mine(database, min_support)`` returning ``(itemset, support)`` pairs, plus
an optional instrumented entry point used by the simulated-machine
experiments. The registry maps the paper's algorithm names to classes.

Implemented miners:

* ``brute-force`` — levelwise reference used only to validate the others.
* ``apriori`` — classic bottom-up candidate generation [1, 3].
* ``topdown`` — top-down largest-first mining [32].
* ``eclat`` — vertical tidset intersection (common FIMI baseline).
* ``fp-growth`` — the reference prefix-tree miner (§2.1).
* ``fp-growth-tiny`` — mines the one big initial tree without conditional
  trees [20].
* ``nonordfp`` — count/parent parallel-array representation [23].
* ``lcm`` — LCM v2-style occurrence-deliver backtracking [29].
* ``afopt`` — ascending-frequency adaptive prefix-tree mining [18].
* ``fp-array`` — PARSEC-style cache-conscious FP-array [16]; loads the whole
  dataset in memory first.
* ``ct-pro`` — compressed FP-tree (CT) with an item-index table [27].
* ``patricia`` — Patricia-trie representation of the base data [21].
* ``cfp-growth`` — the paper's contribution (re-exported from repro.core).
"""

from repro.algorithms.base import Miner, MinerStats, get_miner, iter_miners, register
from repro.algorithms.bruteforce import BruteForceMiner, brute_force

__all__ = [
    "Miner",
    "MinerStats",
    "register",
    "get_miner",
    "iter_miners",
    "BruteForceMiner",
    "brute_force",
]


def _register_builtin() -> None:
    """Import every miner module so registration side effects run."""
    import importlib

    # Modules are added here as they are implemented; each registers its
    # miner class on import.
    for module in (
        "afopt",
        "apriori",
        "ctpro",
        "eclat",
        "fparray",
        "fpgrowth_ref",
        "fpgrowth_tiny",
        "lcm",
        "nonordfp",
        "patricia",
        "sampling",
        "topdown",
    ):
        try:
            importlib.import_module(f"repro.algorithms.{module}")
        except ModuleNotFoundError as exc:
            # Only tolerate the module itself being absent (partial builds);
            # a missing dependency inside an existing module must propagate.
            if exc.name != f"repro.algorithms.{module}":
                raise
    # CFP-growth (the paper's contribution) registers from repro.core.
    importlib.import_module("repro.core.cfp_growth")


_register_builtin()
