"""LCM (ver. 2)-style backtracking with conditional databases (ref [29]).

LCM enumerates frequent itemsets depth-first, extending each prefix with
items larger than its tail. Two of LCM v2's signature techniques are
implemented:

* **occurrence deliver** — one sweep over the current conditional database
  buckets every extension item's support (instead of per-item scans);
* **database reduction** — the conditional database passed down a branch
  keeps only items greater than the extension and merges transactions that
  became identical, summing their weights.

The working set is the (repeatedly projected) transaction database itself —
no prefix tree — which is why the paper observes LCM's memory scaling with
the *number of transactions* and its early breakdown on Quest2 (§4.5).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.util.items import TransactionDatabase, prepare_transactions


def database_bytes(database: list[tuple[tuple[int, ...], int]]) -> int:
    """Modeled footprint of a (projected) transaction database.

    4 B per item occurrence plus 8 B per transaction record — this is the
    structure whose size scales with the *number of transactions*, LCM's
    limiting factor on Quest2 (§4.5).
    """
    return sum(len(ranks) * 4 + 8 for ranks, __ in database)


def lcm_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int, meter=None
) -> list[tuple[tuple[int, ...], int]]:
    """LCM-style mining over prepared rank transactions."""
    database = _reduce(
        (tuple(ranks), 1) for ranks in transactions
    )
    if meter is not None:
        meter.on_structure_built(database_bytes(database))
    results: list[tuple[tuple[int, ...], int]] = []
    _backtrack((), database, min_support, results, meter)
    return results


def _backtrack(
    prefix: tuple[int, ...],
    database: list[tuple[tuple[int, ...], int]],
    min_support: int,
    results: list,
    meter=None,
) -> None:
    # Occurrence deliver: one pass buckets supports of all extensions.
    supports: dict[int, int] = defaultdict(int)
    occurrences = 0
    for ranks, weight in database:
        occurrences += len(ranks)
        for rank in ranks:
            supports[rank] += weight
    if meter is not None:
        meter.add_ops(occurrences, occurrences * 4)
    for rank in sorted(supports):
        support = supports[rank]
        if support < min_support:
            continue
        itemset = prefix + (rank,)
        results.append((itemset, support))
        # Conditional database: transactions containing rank, reduced to
        # items beyond it, merged by identity.
        projected = _reduce(
            (tuple(r for r in ranks if r > rank), weight)
            for ranks, weight in database
            if rank in ranks
        )
        if projected:
            size = database_bytes(projected)
            if meter is not None:
                meter.on_structure_built(size)
            _backtrack(itemset, projected, min_support, results, meter)
            if meter is not None:
                meter.on_structure_freed(size)


def _reduce(entries) -> list[tuple[tuple[int, ...], int]]:
    """Database reduction: merge identical transactions, drop empties."""
    merged: Counter = Counter()
    for ranks, weight in entries:
        if ranks:
            merged[ranks] += weight
    return list(merged.items())


@register
class LcmMiner:
    """LCM v2-style conditional-database backtracking."""

    name = "lcm"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in lcm_ranks(transactions, len(table), min_support)
        ]
