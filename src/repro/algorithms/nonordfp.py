"""nonordfp: FP-growth over count/parent arrays (paper §5, ref [23]).

nonordfp keeps the FP-tree's build phase but replaces the mine-phase tree
with two parallel arrays holding each node's ``count`` and ``parent``, with
nodes grouped by item so that nodelinks become implicit — the idea the
paper credits as the inspiration for the CFP-array, minus the compression,
the delta encoding and the build-phase savings ("nonordfp does not reduce
memory in the build phase").

This implementation builds the logical FP-tree, flattens it into the
item-grouped parallel arrays (global parent indices, 32-bit-equivalent
fields), and mines recursively: each conditional pattern base becomes a new
(small) tree that is flattened the same way.
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.fptree.growth import ListCollector
from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions

#: Bytes per node of the mine-phase arrays: 4 (count) + 4 (parent) + 4 (item
#: boundaries amortized) — used by the memory model.
ARRAY_NODE_BYTES = 12


class NonordArrays:
    """The mine-phase representation: item-grouped parallel arrays."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self.counts: list[int] = []
        self.parents: list[int] = []  # global node index, -1 for root children
        self.ranks: list[int] = []
        self.starts: list[int] = [0] * (n_ranks + 2)

    @classmethod
    def from_tree(cls, tree: FPTree) -> "NonordArrays":
        arrays = cls(tree.n_ranks)
        per_rank = [0] * (tree.n_ranks + 1)
        for node in tree.iter_nodes():
            per_rank[node.rank] += 1
        total = 0
        for rank in range(1, tree.n_ranks + 1):
            arrays.starts[rank] = total
            total += per_rank[rank]
        arrays.starts[tree.n_ranks + 1] = total
        arrays.counts = [0] * total
        arrays.parents = [-1] * total
        arrays.ranks = [0] * total
        cursor = list(arrays.starts)
        index_of: dict[int, int] = {id(tree.root): -1}
        # Parents are assigned before children in this DFS.
        stack = list(tree.root.children.values())
        while stack:
            node = stack.pop()
            index = cursor[node.rank]
            cursor[node.rank] += 1
            index_of[id(node)] = index
            arrays.counts[index] = node.count
            arrays.parents[index] = index_of[id(node.parent)]
            arrays.ranks[index] = node.rank
            stack.extend(node.children.values())
        return arrays

    @property
    def node_count(self) -> int:
        return len(self.counts)

    @property
    def memory_bytes(self) -> int:
        return self.node_count * ARRAY_NODE_BYTES

    def rank_support(self, rank: int) -> int:
        return sum(
            self.counts[i] for i in range(self.starts[rank], self.starts[rank + 1])
        )

    def path_ranks(self, index: int) -> list[int]:
        """Ancestor ranks of a node, ascending."""
        path = []
        index = self.parents[index]
        while index >= 0:
            path.append(self.ranks[index])
            index = self.parents[index]
        path.reverse()
        return path


def _mine(
    arrays: NonordArrays, min_support: int, suffix, collector, meter=None
) -> None:
    for rank in range(arrays.n_ranks, 0, -1):
        start, end = arrays.starts[rank], arrays.starts[rank + 1]
        if start == end:
            continue
        support = arrays.rank_support(rank)
        if support < min_support:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        paths = []
        item_counts: dict[int, int] = defaultdict(int)
        visits = 0
        for index in range(start, end):
            path = arrays.path_ranks(index)
            visits += len(path) + 1
            if path:
                count = arrays.counts[index]
                paths.append((path, count))
                for path_rank in path:
                    item_counts[path_rank] += count
        if meter is not None:
            meter.add_ops(visits, visits * ARRAY_NODE_BYTES)
        frequent = {r for r, c in item_counts.items() if c >= min_support}
        if not frequent:
            continue
        conditional = FPTree(arrays.n_ranks)
        for path, count in paths:
            filtered = [r for r in path if r in frequent]
            if filtered:
                conditional.insert(filtered, count)
        if not conditional.is_empty():
            cond_arrays = NonordArrays.from_tree(conditional)
            if meter is not None:
                meter.on_structure_built(cond_arrays.memory_bytes)
            _mine(cond_arrays, min_support, itemset, collector, meter)
            if meter is not None:
                meter.on_structure_freed(cond_arrays.memory_bytes)


def nonordfp_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int, meter=None
) -> list[tuple[tuple[int, ...], int]]:
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    arrays = NonordArrays.from_tree(tree)
    if meter is not None:
        # nonordfp keeps the 40 B/node build tree plus the arrays alive
        # while flattening; the tree is discarded afterwards (§5).
        meter.on_structure_built(tree.node_count * 40)
        meter.on_structure_built(arrays.memory_bytes)
        meter.on_structure_freed(tree.node_count * 40)
    collector = ListCollector()
    _mine(arrays, min_support, (), collector, meter)
    return collector.itemsets


@register
class NonordFpMiner:
    """nonordfp-style array-based FP-growth."""

    name = "nonordfp"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in nonordfp_ranks(
                transactions, len(table), min_support
            )
        ]
