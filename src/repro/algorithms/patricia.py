"""Patricia-Mine: Patricia-trie representation of the base data (ref [21]).

Pietracaprina & Zandolin store the (rank-sorted) transactions in a Patricia
trie: maximal single-child chains collapse into one node carrying the whole
rank run as its label — the idea the paper credits for the CFP-tree's chain
nodes, minus the byte-level compression.

This module implements the Patricia trie with full insert-time splitting
(label divergence mid-run, label exhaustion, prefix termination) and mines
it directly: prefix paths per item are collected by walking the trie once,
then the usual conditional recursion applies.
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.base import ItemsetResult, register
from repro.fptree.growth import ListCollector
from repro.util.items import TransactionDatabase, prepare_transactions

#: Bytes per Patricia node header (count, child map ref, label ref/len).
PATRICIA_HEADER_BYTES = 16

#: Bytes per label element (one 4-byte rank).
PATRICIA_LABEL_BYTES = 4


class PatriciaNode:
    """A trie node holding a run of ranks as its edge label."""

    __slots__ = ("label", "pcount", "children")

    def __init__(self, label: tuple[int, ...], pcount: int = 0):
        self.label = label
        self.pcount = pcount  # transactions ending exactly at this node
        self.children: dict[int, PatriciaNode] = {}  # keyed by first label rank


class PatriciaTrie:
    """Patricia trie over rank-sorted transactions."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self.root = PatriciaNode(())
        self.node_count = 0

    @classmethod
    def from_rank_transactions(
        cls, transactions: list[list[int]], n_ranks: int
    ) -> "PatriciaTrie":
        trie = cls(n_ranks)
        for ranks in transactions:
            trie.insert(ranks)
        return trie

    def insert(self, ranks: list[int], count: int = 1) -> None:
        if not ranks:
            return
        node = self.root
        i = 0
        while True:
            child = node.children.get(ranks[i])
            if child is None:
                new = PatriciaNode(tuple(ranks[i:]), count)
                node.children[ranks[i]] = new
                self.node_count += 1
                return
            label = child.label
            j = 0
            while j < len(label) and i < len(ranks) and label[j] == ranks[i]:
                i += 1
                j += 1
            if j == len(label):
                if i == len(ranks):
                    child.pcount += count
                    return
                node = child
                continue
            # Split the child's label at position j.
            tail = PatriciaNode(label[j:], child.pcount)
            tail.children = child.children
            child.label = label[:j]
            child.children = {tail.label[0]: tail}
            self.node_count += 1
            if i == len(ranks):
                # The transaction ends exactly at the split point.
                child.pcount = count
                return
            child.pcount = 0
            new = PatriciaNode(tuple(ranks[i:]), count)
            child.children[ranks[i]] = new
            self.node_count += 1
            return

    @property
    def memory_bytes(self) -> int:
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += PATRICIA_HEADER_BYTES + len(node.label) * PATRICIA_LABEL_BYTES
            stack.extend(node.children.values())
        return total

    def prefix_paths(self) -> dict[int, list[tuple[tuple[int, ...], int]]]:
        """Per rank: ``(ancestor_ranks, count)`` of every occurrence.

        One DFS computes, for every rank position in every label, the path
        of ranks before it and the cumulative count of the node.
        """
        paths: dict[int, list[tuple[tuple[int, ...], int]]] = defaultdict(list)

        def count_of(node: PatriciaNode) -> int:
            return node.pcount + sum(count_of(c) for c in node.children.values())

        def walk(node: PatriciaNode, prefix: tuple[int, ...]) -> None:
            count = count_of(node)
            running = prefix
            for rank in node.label:
                paths[rank].append((running, count))
                running = running + (rank,)
            for child in node.children.values():
                walk(child, running)

        for child in self.root.children.values():
            walk(child, ())
        return paths


def _mine(paths_by_rank, n_ranks, min_support, suffix, collector) -> None:
    for rank in sorted(paths_by_rank, reverse=True):
        entries = paths_by_rank[rank]
        support = sum(count for __, count in entries)
        if support < min_support:
            continue
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        item_counts: dict[int, int] = defaultdict(int)
        for path, count in entries:
            for path_rank in path:
                item_counts[path_rank] += count
        frequent = {r for r, c in item_counts.items() if c >= min_support}
        if not frequent:
            continue
        conditional = PatriciaTrie(n_ranks)
        for path, count in entries:
            filtered = [r for r in path if r in frequent]
            if filtered:
                conditional.insert(filtered, count)
        if conditional.node_count:
            _mine(
                conditional.prefix_paths(), n_ranks, min_support, itemset, collector
            )


def patricia_ranks(
    transactions: list[list[int]], n_ranks: int, min_support: int
) -> list[tuple[tuple[int, ...], int]]:
    trie = PatriciaTrie.from_rank_transactions(transactions, n_ranks)
    collector = ListCollector()
    _mine(trie.prefix_paths(), n_ranks, min_support, (), collector)
    return collector.itemsets


@register
class PatriciaMiner:
    """Patricia-trie miner."""

    name = "patricia"

    def mine(
        self, database: TransactionDatabase, min_support: int
    ) -> list[ItemsetResult]:
        table, transactions = prepare_transactions(database, min_support)
        return [
            (table.ranks_to_items(ranks), support)
            for ranks, support in patricia_ranks(
                transactions, len(table), min_support
            )
        ]
