"""Shared utilities: item-rank preprocessing and small helpers."""

from repro.util.items import (
    ItemTable,
    Transaction,
    TransactionDatabase,
    prepare_transactions,
)

__all__ = [
    "ItemTable",
    "Transaction",
    "TransactionDatabase",
    "prepare_transactions",
]
