"""Item-frequency preprocessing shared by every miner (paper §2.1).

All prefix-tree miners start the same way: a first pass over the database
counts the support of each item; infrequent items are dropped; the items of
each transaction are then sorted in descending order of support. This module
factors that step out.

Internally every algorithm works on **ranks**: the most frequent item gets
rank 1, the second rank 2, and so on. Ranks have two properties the
compressed structures rely on:

* along any root-to-leaf path of a prefix tree built from rank-sorted
  transactions, ranks strictly increase — so ``delta_item`` (the rank delta
  to the parent) is always >= 1, which is why the 2-bit zero-suppression mask
  that always stores one byte is the right codec for it (§3.3);
* the smaller the rank, the closer the node sits to the root.

:class:`ItemTable` stores the rank <-> original-item mapping so results can
be reported in the caller's vocabulary.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.errors import DatasetError

#: One transaction in the caller's vocabulary: any iterable of hashable items.
Transaction = Sequence[Hashable]

#: A database is a sequence of transactions.
TransactionDatabase = Sequence[Transaction]


@dataclass
class ItemTable:
    """Frequent items of a database with their supports and ranks.

    Ranks are 1-based and assigned in descending order of support; ties are
    broken by the items' sorted order (falling back to ``repr`` for mixed
    types) so that preprocessing is deterministic.
    """

    min_support: int
    """The absolute minimum support the table was built with."""

    supports: dict[Hashable, int]
    """Support of each *frequent* item, keyed by original item."""

    rank_of: dict[Hashable, int] = field(init=False)
    """Original item -> rank (1 = most frequent)."""

    item_of: list[Hashable] = field(init=False)
    """Rank -> original item; index 0 is unused (ranks are 1-based)."""

    rank_supports: list[int] = field(init=False)
    """Rank -> support; index 0 is unused."""

    def __post_init__(self) -> None:
        def sort_key(entry):
            item, support = entry
            try:
                return (-support, item)
            except TypeError:  # pragma: no cover - mixed item types
                return (-support, repr(item))

        ordered = sorted(self.supports.items(), key=sort_key)
        self.rank_of = {item: rank for rank, (item, __) in enumerate(ordered, start=1)}
        self.item_of = [None] + [item for item, __ in ordered]
        self.rank_supports = [0] + [support for __, support in ordered]

    def __len__(self) -> int:
        return len(self.supports)

    def ranks_to_items(self, ranks: Iterable[int]) -> tuple:
        """Translate a rank itemset back to original items."""
        return tuple(self.item_of[rank] for rank in ranks)

    def fingerprint(self) -> str:
        """Content hash identifying the table's exact rank assignment.

        Covers ``min_support`` and every ``(item, support)`` pair in rank
        order, so two tables fingerprint equal iff they map the same items
        to the same ranks with the same supports — the property the
        checkpoint-resume path (:mod:`repro.streaming`) must verify.
        ``repr`` keys the items: it is what already disambiguates mixed
        item types in the rank sort above.
        """
        digest = hashlib.sha256()
        digest.update(f"min_support={self.min_support}".encode())
        for rank in range(1, len(self.item_of)):
            digest.update(
                f"\x00{rank}\x01{self.item_of[rank]!r}"
                f"\x02{self.rank_supports[rank]}".encode()
            )
        return digest.hexdigest()


def count_items(database: TransactionDatabase) -> Counter:
    """First database pass: support of every item.

    A transaction containing an item multiple times counts it once, per the
    set semantics of itemset mining.
    """
    counts: Counter = Counter()
    for transaction in database:
        counts.update(set(transaction))
    return counts


def build_item_table(database: TransactionDatabase, min_support: int) -> ItemTable:
    """Count supports and keep only frequent items."""
    if min_support < 1:
        raise DatasetError(f"min_support must be >= 1, got {min_support}")
    counts = count_items(database)
    frequent = {
        item: support for item, support in counts.items() if support >= min_support
    }
    return ItemTable(min_support=min_support, supports=frequent)


def prepare_transactions(
    database: TransactionDatabase, min_support: int
) -> tuple[ItemTable, list[list[int]]]:
    """Run both preprocessing passes.

    Returns the :class:`ItemTable` and the database as rank lists: each
    transaction reduced to its frequent items, deduplicated, translated to
    ranks and sorted ascending (i.e. descending item frequency). Empty
    transactions are dropped — they cannot contribute to any itemset.
    """
    table = build_item_table(database, min_support)
    rank_of = table.rank_of
    prepared = []
    for transaction in database:
        ranks = sorted({rank_of[item] for item in transaction if item in rank_of})
        if ranks:
            prepared.append(ranks)
    return table, prepared
