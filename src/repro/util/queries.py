"""Support queries against built structures (paper §2.1).

The paper's example: the support of itemset {3, 4} is obtained by summing
the counts of the prefixes that contain the itemset and end with its
least frequent item — a sideward traversal over that item's nodes plus a
backward traversal per node. These helpers run that query against an
FP-tree or a CFP-array without mining anything.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.cfp_array import CfpArray
from repro.errors import TreeError
from repro.fptree.tree import FPTree
from repro.util.items import ItemTable


def support_in_fp_tree(tree: FPTree, ranks: Iterable[int]) -> int:
    """Support of a rank itemset via nodelinks and parent walks."""
    wanted = sorted(set(ranks))
    if not wanted:
        raise TreeError("itemset must not be empty")
    if wanted[0] < 1 or wanted[-1] > tree.n_ranks:
        return 0
    least = wanted[-1]
    others = set(wanted[:-1])
    support = 0
    for path, count in tree.prefix_paths(least):
        if others <= set(path):
            support += count
    return support


def support_in_cfp_array(array: CfpArray, ranks: Iterable[int]) -> int:
    """Support of a rank itemset via the item index and backward walks.

    The nodelink-free equivalent: scan the least frequent rank's subarray
    (its item-index slice) and backward-traverse each node.
    """
    wanted = sorted(set(ranks))
    if not wanted:
        raise TreeError("itemset must not be empty")
    if wanted[0] < 1 or wanted[-1] > array.n_ranks:
        return 0
    least = wanted[-1]
    others = set(wanted[:-1])
    support = 0
    for local, __, __, count in array.iter_subarray(least):
        if not others:
            support += count
        elif others <= set(array.path_ranks(least, local)):
            support += count
    return support


def itemset_support(
    structure, table: ItemTable, items: Iterable[Hashable]
) -> int:
    """Support of an itemset in the caller's vocabulary.

    ``structure`` is an :class:`FPTree` or :class:`CfpArray` built from
    the database ``table`` was derived from. Items unknown to the table
    (infrequent or unseen) make the support 0 by definition.
    """
    ranks = []
    for item in items:
        rank = table.rank_of.get(item)
        if rank is None:
            return 0
        ranks.append(rank)
    if isinstance(structure, FPTree):
        return support_in_fp_tree(structure, ranks)
    return support_in_cfp_array(structure, ranks)
