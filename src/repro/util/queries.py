"""Support queries against built structures (paper §2.1).

The paper's example: the support of itemset {3, 4} is obtained by summing
the counts of the prefixes that contain the itemset and end with its
least frequent item — a sideward traversal over that item's nodes plus a
backward traversal per node. These helpers run that query against an
FP-tree or a CFP-array without mining anything.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.cfp_array import CfpArray
from repro.errors import TreeError
from repro.fptree.tree import FPTree
from repro.util.items import ItemTable


def support_in_fp_tree(tree: FPTree, ranks: Iterable[int]) -> int:
    """Support of a rank itemset via nodelinks and parent walks."""
    wanted = sorted(set(ranks))
    if not wanted:
        raise TreeError("itemset must not be empty")
    if wanted[0] < 1 or wanted[-1] > tree.n_ranks:
        return 0
    least = wanted[-1]
    others = set(wanted[:-1])
    support = 0
    for path, count in tree.prefix_paths(least):
        if others <= set(path):
            support += count
    return support


def support_in_cfp_array(array: CfpArray, ranks: Iterable[int]) -> int:
    """Support of a rank itemset via the item index and prefix paths.

    The nodelink-free equivalent of the FP-tree query: resolve the prefix
    path of every node in the least frequent rank's subarray and sum the
    counts of the paths containing the rest of the itemset. Paths come
    from :meth:`CfpArray.prefix_paths` — one columnar bulk decode per
    subarray plus the memoized ancestor walk — instead of the per-node
    ``path_ranks`` decode loop this used to run, which is the exact
    hot-loop shape INV008 forbids and was quadratic in shared-ancestor
    chains once this became the serving hot path.
    """
    wanted = sorted(set(ranks))
    if not wanted:
        raise TreeError("itemset must not be empty")
    if wanted[0] < 1 or wanted[-1] > array.n_ranks:
        return 0
    least = wanted[-1]
    others = set(wanted[:-1])
    if not others:
        # Singleton: one C-speed sum over the counts column, no walks.
        return array.rank_support(least)
    support = 0
    for path, count in array.prefix_paths(least):
        if others <= set(path):
            support += count
    return support


def itemset_support(
    structure, table: ItemTable, items: Iterable[Hashable]
) -> int:
    """Support of an itemset in the caller's vocabulary.

    ``structure`` is an :class:`FPTree` or :class:`CfpArray` built from
    the database ``table`` was derived from. Items unknown to the table
    (infrequent or unseen) make the support 0 by definition.
    """
    ranks = []
    for item in items:
        rank = table.rank_of.get(item)
        if rank is None:
            return 0
        ranks.append(rank)
    if isinstance(structure, FPTree):
        return support_in_fp_tree(structure, ranks)
    return support_in_cfp_array(structure, ranks)
