"""The reference FP-growth miner (paper §2.1).

FP-growth is divide-and-conquer: for each rank, taken least frequent first,
the prefixes ending in that rank form a *conditional pattern base*; a new
(conditional) FP-tree is built from it and mined recursively. When a tree
degenerates to a single path, every subset of the path is frequent and is
emitted directly — the classic single-path shortcut.

Results are reported through a collector so that callers can either
materialize all itemsets (:class:`ListCollector`) or just count them
combinatorially without enumerating the exponential single-path subsets
(:class:`CountCollector`), which is what the large benchmark sweeps use.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

from repro.fptree.tree import FPTree
from repro.util.items import TransactionDatabase, prepare_transactions


class ListCollector:
    """Materializes every frequent itemset as ``(ranks_tuple, support)``."""

    def __init__(self):
        self.itemsets: list[tuple[tuple[int, ...], int]] = []

    def emit(self, ranks: tuple[int, ...], support: int) -> None:
        self.itemsets.append((ranks, support))

    def emit_path_subsets(
        self, path: list[tuple[int, int]], suffix: tuple[int, ...]
    ) -> None:
        """Emit every non-empty subset of a single path combined with ``suffix``.

        ``path`` holds ``(rank, count)`` pairs with non-increasing counts, so
        a subset's support is the count of its deepest member.
        """
        emit = self.emit
        # subsets[i] enumerates the subsets of path[:i] as rank tuples.
        subsets: list[tuple[int, ...]] = [()]
        for rank, count in path:
            for subset in list(subsets):
                itemset = subset + (rank,) + suffix
                emit(itemset, count)
                subsets.append(subset + (rank,))


class CountCollector:
    """Counts frequent itemsets without materializing single-path subsets."""

    def __init__(self):
        self.count = 0

    def emit(self, ranks: tuple[int, ...], support: int) -> None:
        self.count += 1

    def emit_path_subsets(
        self, path: list[tuple[int, int]], suffix: tuple[int, ...]
    ) -> None:
        self.count += (1 << len(path)) - 1


def mine_tree(
    tree: FPTree,
    min_support: int,
    collector,
    suffix: tuple[int, ...] = (),
    meter=None,
    node_bytes: int = 40,
) -> None:
    """Recursively mine ``tree``; emit itemsets (as ascending rank tuples).

    ``meter``, when given, receives structure-built/freed events for every
    conditional tree (sized at ``node_bytes`` per node — 40 B for the
    state-of-the-art FP-growth baseline, §4.2) plus traversal op counts.
    """
    path = tree.single_path()
    if path is not None:
        if path:
            collector.emit_path_subsets(path, suffix)
        return
    for rank in tree.active_ranks_descending():
        support = tree.rank_count(rank)
        itemset = (rank,) + suffix
        collector.emit(itemset, support)
        conditional = _conditional_tree(tree, rank, min_support, meter)
        if conditional is not None:
            size = conditional.node_count * node_bytes
            if meter is not None:
                meter.on_structure_built(size)
            mine_tree(conditional, min_support, collector, itemset, meter, node_bytes)
            if meter is not None:
                meter.on_structure_freed(size)


def _conditional_tree(
    tree: FPTree, rank: int, min_support: int, meter=None
) -> FPTree | None:
    """Build the conditional FP-tree for ``rank``, or None if it is empty."""
    paths = []
    counts: dict[int, int] = defaultdict(int)
    visits = 0
    for path_ranks, count in tree.prefix_paths(rank):
        visits += len(path_ranks) + 1
        if path_ranks:
            paths.append((path_ranks, count))
            for path_rank in path_ranks:
                counts[path_rank] += count
    if meter is not None:
        meter.add_ops(visits, visits * 12)  # parent hops touch node records
    frequent = {r for r, c in counts.items() if c >= min_support}
    if not frequent:
        return None
    conditional = FPTree(tree.n_ranks)
    for path_ranks, count in paths:
        filtered = [r for r in path_ranks if r in frequent]
        if filtered:
            conditional.insert(filtered, count)
    if conditional.is_empty():
        return None
    return conditional


def mine_ranks(
    transactions: Iterable[list[int]],
    n_ranks: int,
    min_support: int,
    collector=None,
):
    """Mine prepared rank transactions; returns the collector used."""
    if collector is None:
        collector = ListCollector()
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    mine_tree(tree, min_support, collector)
    return collector


def fp_growth(
    database: TransactionDatabase, min_support: int
) -> list[tuple[tuple[Hashable, ...], int]]:
    """End-to-end FP-growth over an item-level database.

    Returns ``(itemset, support)`` pairs with itemsets in the caller's item
    vocabulary (ordered by descending item frequency).
    """
    table, transactions = prepare_transactions(database, min_support)
    collector = ListCollector()
    mine_ranks(transactions, len(table), min_support, collector)
    return [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.itemsets
    ]


class FPGrowthMiner:
    """Miner-interface wrapper around :func:`fp_growth` (see algorithms)."""

    name = "fp-growth"

    def mine(self, database: TransactionDatabase, min_support: int):
        return fp_growth(database, min_support)
