"""Field-level byte accounting for the ternary FP-tree (paper §3.1, Table 1).

The paper motivates compression by showing that roughly half the bytes of an
FP-tree are (leading) zero bytes. This module reproduces that analysis: for
every field of every node it counts leading zero bytes in the 4-byte
representation and aggregates per-field distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compress.zero_suppression import WIDTH, leading_zero_bytes
from repro.fptree.ternary import TERNARY_FIELDS, TernaryFPTree


@dataclass
class FieldDistribution:
    """Distribution of leading-zero-byte counts for one field."""

    counts: list[int] = field(default_factory=lambda: [0] * (WIDTH + 1))
    """``counts[k]`` = number of values with exactly ``k`` leading zero bytes."""

    def add(self, value: int) -> None:
        self.counts[leading_zero_bytes(value)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fractions(self) -> list[float]:
        """Per-bucket fractions, the percentages shown in Tables 1 and 2."""
        total = self.total
        if total == 0:
            return [0.0] * (WIDTH + 1)
        return [count / total for count in self.counts]

    @property
    def zero_bytes(self) -> int:
        """Total leading zero bytes across all values."""
        return sum(k * count for k, count in enumerate(self.counts))


def ternary_field_distributions(
    tree: TernaryFPTree,
) -> dict[str, FieldDistribution]:
    """Leading-zero distribution of every field of a ternary FP-tree."""
    distributions = {}
    for name in TERNARY_FIELDS:
        dist = FieldDistribution()
        for value in tree.field_values(name):
            dist.add(value)
        distributions[name] = dist
    return distributions


def zero_byte_fraction(distributions: dict[str, FieldDistribution]) -> float:
    """Fraction of all stored bytes that are leading zero bytes.

    The paper reports ~53% for the webdocs FP-tree.
    """
    zero = sum(dist.zero_bytes for dist in distributions.values())
    total = sum(dist.total * WIDTH for dist in distributions.values())
    if total == 0:
        return 0.0
    return zero / total
