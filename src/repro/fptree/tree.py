"""The logical FP-tree with header table and nodelinks (paper §2.1)."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TreeError
from repro.fptree.node import FPNode
from repro.util.items import ItemTable, TransactionDatabase, prepare_transactions

#: Rank used for the (virtual) root node; real ranks start at 1.
ROOT_RANK = 0


class FPTree:
    """A prefix tree over rank-sorted transactions.

    The tree is the build-phase product of FP-growth: each inserted
    transaction increments the count of every node on its path. A header
    table gives, per rank, the head of the nodelink chain and the aggregate
    count of that rank in the tree.

    Parameters
    ----------
    n_ranks:
        Number of distinct frequent items (ranks run from 1 to ``n_ranks``).
    """

    def __init__(self, n_ranks: int):
        if n_ranks < 0:
            raise TreeError(f"n_ranks must be non-negative, got {n_ranks}")
        self.n_ranks = n_ranks
        self.root = FPNode(ROOT_RANK)
        self._heads: list[FPNode | None] = [None] * (n_ranks + 1)
        self._tails: list[FPNode | None] = [None] * (n_ranks + 1)
        self._rank_counts: list[int] = [0] * (n_ranks + 1)
        self._node_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_database(
        cls, database: TransactionDatabase, min_support: int
    ) -> tuple[ItemTable, "FPTree"]:
        """Run both passes of the build phase on an item-level database."""
        table, transactions = prepare_transactions(database, min_support)
        tree = cls.from_rank_transactions(transactions, len(table))
        return table, tree

    @classmethod
    def from_rank_transactions(
        cls, transactions: Iterable[list[int]], n_ranks: int
    ) -> "FPTree":
        """Build from already-prepared rank lists (strictly ascending each)."""
        tree = cls(n_ranks)
        for ranks in transactions:
            tree.insert(ranks)
        return tree

    def insert(self, ranks: list[int], count: int = 1) -> None:
        """Insert one rank-sorted transaction, adding ``count`` to its path."""
        node = self.root
        rank_counts = self._rank_counts
        for rank in ranks:
            child = node.children.get(rank)
            if child is None:
                child = FPNode(rank, parent=node)
                node.children[rank] = child
                self._node_count += 1
                self._link(child)
            child.count += count
            rank_counts[rank] += count
            node = child

    def _link(self, node: FPNode) -> None:
        tail = self._tails[node.rank]
        if tail is None:
            self._heads[node.rank] = node
        else:
            tail.nodelink = node
        self._tails[node.rank] = node

    # ------------------------------------------------------------------
    # Mine-phase access paths
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes, excluding the virtual root."""
        return self._node_count

    def rank_count(self, rank: int) -> int:
        """Aggregate count (support within this tree) of ``rank``."""
        return self._rank_counts[rank]

    def nodes_of(self, rank: int) -> Iterator[FPNode]:
        """Sideward traversal: every node of ``rank`` via nodelinks."""
        node = self._heads[rank]
        while node is not None:
            yield node
            node = node.nodelink

    def active_ranks_descending(self) -> Iterator[int]:
        """Ranks present in the tree, least frequent (highest rank) first.

        This is the processing order of the mine phase (§2.1, step 1).
        """
        for rank in range(self.n_ranks, 0, -1):
            if self._rank_counts[rank] > 0:
                yield rank

    def prefix_paths(self, rank: int) -> Iterator[tuple[list[int], int]]:
        """All prefixes ending in ``rank``: ``(path_ranks, count)`` pairs.

        ``path_ranks`` excludes ``rank`` itself and is in ascending order.
        """
        for node in self.nodes_of(rank):
            yield node.path_to_root(), node.count

    def single_path(self) -> list[tuple[int, int]] | None:
        """Return the tree's single path as ``(rank, count)`` pairs, or None.

        A tree is a single path when no node has more than one child; the
        counts along the path are then non-increasing.
        """
        path = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (child,) = node.children.values()
            path.append((child.rank, child.count))
            node = child
        return path

    def is_empty(self) -> bool:
        """True when the tree holds no transactions."""
        return not self.root.children

    def iter_nodes(self) -> Iterator[FPNode]:
        """Depth-first iteration over all nodes (excluding the root)."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPTree(n_ranks={self.n_ranks}, nodes={self._node_count})"
