"""A node of the logical FP-tree (paper §2.1)."""

from __future__ import annotations


class FPNode:
    """One prefix-tree node: an item (rank), its count, and links.

    ``children`` maps a child's rank to the child node — the logical
    equivalent of the direct-suffix search structure of §2.2. ``nodelink``
    chains all nodes of the same rank for sideward traversal in the mine
    phase; ``parent`` supports backward traversal.
    """

    __slots__ = ("rank", "count", "parent", "children", "nodelink")

    def __init__(self, rank: int, count: int = 0, parent: "FPNode | None" = None):
        self.rank = rank
        self.count = count
        self.parent = parent
        self.children: dict[int, FPNode] = {}
        self.nodelink: FPNode | None = None

    def path_to_root(self) -> list[int]:
        """Ranks on the path from this node's parent up to (excluding) the root.

        Returned in root-to-parent order, i.e. ascending rank.
        """
        path = []
        node = self.parent
        while node is not None and node.rank != 0:
            path.append(node.rank)
            node = node.parent
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPNode(rank={self.rank}, count={self.count})"
