"""Ternary-search-tree physical representation of the FP-tree (paper §2.2).

Each node stores seven fields — ``item``, ``count``, ``parent``,
``nodelink``, ``left``, ``right``, ``suffix``. The direct suffixes
(children) of a node form a binary search tree threaded through ``left`` and
``right``; ``suffix`` points one level down. With 32-bit fields a node is
28 bytes (the paper's webdocs example: 50.4M nodes -> 1.4 GB); the
state-of-the-art FP-growth implementations the paper baselines against spend
40 bytes per node, which is the constant the experiments use.

Pointer fields hold 1-based node indices (chunk numbers of the simple memory
manager), with 0 as null — this reproduces the leading-zero-byte statistics
of Table 1.

The class is used for physical accounting and for the build-phase cost
model; mining uses the logical :class:`repro.fptree.FPTree`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TreeError

#: Field names of a ternary FP-tree node, in the paper's order.
TERNARY_FIELDS = ("item", "count", "parent", "nodelink", "left", "right", "suffix")

#: Bytes per node with seven 4-byte fields (32-bit pointers).
TERNARY_NODE_SIZE = 4 * len(TERNARY_FIELDS)

#: Bytes per node in the FIMI state-of-the-art implementations (§4.2).
PAPER_BASELINE_NODE_SIZE = 40


class TernaryFPTree:
    """FP-tree stored as a ternary search tree over parallel field arrays.

    Index 0 is the virtual root (its ``suffix`` is the top-level BST); real
    nodes start at index 1, and pointers are node indices with 0 as null.
    """

    def __init__(self, n_ranks: int):
        if n_ranks < 0:
            raise TreeError(f"n_ranks must be non-negative, got {n_ranks}")
        self.n_ranks = n_ranks
        self.item = [0]
        self.count = [0]
        self.parent = [0]
        self.nodelink = [0]
        self.left = [0]
        self.right = [0]
        self.suffix = [0]
        self._link_tails = [0] * (n_ranks + 1)
        self._link_heads = [0] * (n_ranks + 1)
        #: BST comparisons performed during inserts (cost-model input).
        self.comparisons = 0

    @classmethod
    def from_rank_transactions(
        cls, transactions: Iterable[list[int]], n_ranks: int
    ) -> "TernaryFPTree":
        tree = cls(n_ranks)
        for ranks in transactions:
            tree.insert(ranks)
        return tree

    # ------------------------------------------------------------------
    # Build phase
    # ------------------------------------------------------------------

    def insert(self, ranks: list[int], count: int = 1) -> None:
        """Insert one rank-sorted transaction (§2.2's search-or-create walk)."""
        node = 0
        for rank in ranks:
            node = self._find_or_create_child(node, rank)
            self.count[node] += count

    def _find_or_create_child(self, node: int, rank: int) -> int:
        """Search ``node``'s direct-suffix BST for ``rank``; create if absent."""
        item = self.item
        child = self.suffix[node]
        if child == 0:
            new = self._new_node(rank, node)
            self.suffix[node] = new
            return new
        while True:
            self.comparisons += 1
            child_rank = item[child]
            if rank == child_rank:
                return child
            if rank < child_rank:
                nxt = self.left[child]
                if nxt == 0:
                    new = self._new_node(rank, node)
                    self.left[child] = new
                    return new
            else:
                nxt = self.right[child]
                if nxt == 0:
                    new = self._new_node(rank, node)
                    self.right[child] = new
                    return new
            child = nxt

    def _new_node(self, rank: int, parent: int) -> int:
        index = len(self.item)
        self.item.append(rank)
        self.count.append(0)
        self.parent.append(parent)
        self.nodelink.append(0)
        self.left.append(0)
        self.right.append(0)
        self.suffix.append(0)
        tail = self._link_tails[rank]
        if tail == 0:
            self._link_heads[rank] = index
        else:
            self.nodelink[tail] = index
        self._link_tails[rank] = index
        return index

    # ------------------------------------------------------------------
    # Size and traversal
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of real nodes (excluding the virtual root)."""
        return len(self.item) - 1

    @property
    def memory_bytes(self) -> int:
        """Physical size with 32-bit fields (§3.1's analysis)."""
        return self.node_count * TERNARY_NODE_SIZE

    @property
    def baseline_memory_bytes(self) -> int:
        """Physical size at the paper's 40-byte state-of-the-art baseline."""
        return self.node_count * PAPER_BASELINE_NODE_SIZE

    def nodes_of(self, rank: int):
        """Sideward traversal over the nodelink chain of ``rank``."""
        node = self._link_heads[rank]
        nodelink = self.nodelink
        while node != 0:
            yield node
            node = nodelink[node]

    def path_to_root(self, node: int) -> list[int]:
        """Ranks strictly above ``node`` on its root path, ascending."""
        path = []
        parent = self.parent
        item = self.item
        node = parent[node]
        while node != 0:
            path.append(item[node])
            node = parent[node]
        path.reverse()
        return path

    def find(self, ranks: list[int]) -> int:
        """Locate the node for a full prefix, counting BST comparisons.

        Returns the node index, or 0 when the prefix is absent. Used to
        measure search cost before/after :meth:`rebuild_weight_balanced`.
        """
        node = 0
        item = self.item
        for rank in ranks:
            child = self.suffix[node]
            found = 0
            while child != 0:
                self.comparisons += 1
                child_rank = item[child]
                if rank == child_rank:
                    found = child
                    break
                child = self.left[child] if rank < child_rank else self.right[child]
            if not found:
                return 0
            node = found
        return node

    def rebuild_weight_balanced(self) -> None:
        """Reorganize every sibling BST using count values (§2.2).

        The paper notes that "knowledge of count values can be used to
        construct near optimal search trees": frequently traversed
        children should sit near their BST's root. Each sibling group is
        rebuilt with the weight-balanced construction — the root is the
        child whose split best balances the subtree count mass — giving
        expected search depth within a constant of the entropy bound.
        """
        # Collect sibling groups (parent -> children) from suffix roots.
        for parent in range(len(self.item)):
            root = self.suffix[parent]
            if root == 0:
                continue
            siblings = []
            stack = [root]
            while stack:
                node = stack.pop()
                siblings.append(node)
                if self.left[node]:
                    stack.append(self.left[node])
                if self.right[node]:
                    stack.append(self.right[node])
            if len(siblings) > 1:
                siblings.sort(key=lambda n: self.item[n])
                weights = [self.count[n] for n in siblings]
                prefix = [0]
                for weight in weights:
                    prefix.append(prefix[-1] + weight)
                self.suffix[parent] = self._build_balanced(siblings, prefix, 0, len(siblings))

    def _build_balanced(self, siblings: list[int], prefix: list[int], lo: int, hi: int) -> int:
        """Weight-balanced BST over ``siblings[lo:hi]`` (sorted by rank)."""
        if lo >= hi:
            return 0
        total_lo, total_hi = prefix[lo], prefix[hi]
        best = lo
        best_gap = None
        for split in range(lo, hi):
            left_mass = prefix[split] - total_lo
            right_mass = total_hi - prefix[split + 1]
            gap = abs(left_mass - right_mass)
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best = split
        root = siblings[best]
        self.left[root] = self._build_balanced(siblings, prefix, lo, best)
        self.right[root] = self._build_balanced(siblings, prefix, best + 1, hi)
        return root

    def field_values(self, field: str) -> list[int]:
        """All values of one field across real nodes (accounting input)."""
        if field not in TERNARY_FIELDS:
            raise TreeError(f"unknown ternary field: {field}")
        return getattr(self, field)[1:]
