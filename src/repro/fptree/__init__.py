"""The classic FP-tree, its ternary physical design, and FP-growth (paper §2).

This subpackage is the reproduction's *baseline*: the uncompressed structures
that CFP-growth improves upon.

* :class:`repro.fptree.FPTree` — the logical frequent-pattern tree with
  header table and nodelinks (§2.1), used by the reference miner.
* :class:`repro.fptree.TernaryFPTree` — the ternary-search-tree physical
  representation (§2.2): seven 4-byte fields per node
  (``item``, ``count``, ``parent``, ``nodelink``, ``left``, ``right``,
  ``suffix``), 28 bytes with 32-bit pointers, 40 bytes in the
  state-of-the-art implementations the paper baselines against.
* :func:`repro.fptree.fp_growth` — the reference FP-growth miner with the
  single-path shortcut.
* :mod:`repro.fptree.accounting` — per-field leading-zero-byte statistics
  reproducing Table 1.
"""

from repro.fptree.growth import FPGrowthMiner, fp_growth, mine_ranks
from repro.fptree.node import FPNode
from repro.fptree.ternary import (
    PAPER_BASELINE_NODE_SIZE,
    TERNARY_FIELDS,
    TERNARY_NODE_SIZE,
    TernaryFPTree,
)
from repro.fptree.tree import FPTree

__all__ = [
    "FPNode",
    "FPTree",
    "TernaryFPTree",
    "TERNARY_FIELDS",
    "TERNARY_NODE_SIZE",
    "PAPER_BASELINE_NODE_SIZE",
    "fp_growth",
    "mine_ranks",
    "FPGrowthMiner",
]
