"""Simulated machine: the substitute for the paper's 6 GB testbed (§4.1).

The paper's headline experiments (Figures 7-8) hinge on *when each
algorithm's working set crosses the physical-memory limit* and *how
sequential its overflow accesses are* — an i7-920 with 6 GB RAM and a
108 MB/s disk. This package reproduces that setting at laptop scale:

* :class:`repro.machine.Meter` instruments a run: live structure bytes
  (peak and time-weighted average), per-phase operation counts, bytes
  touched, and access-pattern hints. The structures themselves are built
  for real, byte for byte — only wall-clock time is modeled.
* :class:`repro.machine.MachineSpec` / :class:`repro.machine.SimulatedMachine`
  convert a metered run into estimated seconds with a page-granular
  fault model: phases whose footprint fits physical memory run at CPU/DRAM
  speed; overflowing phases pay disk costs proportional to the overflow
  fraction — latency-bound for random access, bandwidth-bound for
  sequential access (which is why CFP conversion degrades gently while
  FP-tree construction collapses, §4.3).

The default spec scales the paper's 6 GB down by 1024 (6 MiB) so the same
regime transitions happen on megabyte-size test datasets.
"""

from repro.machine.meter import Meter, Phase
from repro.machine.model import MachineSpec, SimulatedMachine, TimeEstimate

__all__ = [
    "Meter",
    "Phase",
    "MachineSpec",
    "SimulatedMachine",
    "TimeEstimate",
]
