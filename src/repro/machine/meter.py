"""Run instrumentation: live-byte tracking and per-phase operation counts.

A :class:`Meter` is threaded through an algorithm run (every miner driver
in :mod:`repro.experiments` accepts one). It records *what the algorithm
did* — structures built and freed (in exact bytes), abstract operations,
bytes touched per phase, access patterns — without affecting results. The
simulated machine turns the record into estimated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Phase:
    """One phase of a run (scan / build / convert / mine)."""

    name: str
    sequential_fraction: float = 0.5
    """Fraction of touched bytes accessed sequentially; the rest random."""

    ops: int = 0
    """Abstract CPU operations (node visits, comparisons, decodes)."""

    bytes_touched: int = 0
    """Structure bytes read or written during the phase."""

    footprint_bytes: int = 0
    """Peak live bytes while the phase ran — what must fit in memory."""

    io_bytes: int = 0
    """File bytes streamed from disk (data input)."""


@dataclass
class Meter:
    """Collects phases plus global live/peak/average byte accounting."""

    live_bytes: int = 0
    peak_bytes: int = 0
    phases: list[Phase] = field(default_factory=list)
    _integral: float = 0.0  # ∫ live_bytes d(ops), for the time-weighted avg
    _total_ops: int = 0
    _scan_ops: int = 0  # mine-scan ops batched inline; see flush_mine_scans
    _scan_bytes: int = 0

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------

    def begin_phase(self, name: str, sequential_fraction: float = 0.5) -> Phase:
        """Open a new phase; subsequent ops/bytes accrue to it."""
        phase = Phase(name, sequential_fraction, footprint_bytes=self.live_bytes)
        self.phases.append(phase)
        return phase

    @property
    def _phase(self) -> Phase:
        if not self.phases:
            self.begin_phase("run")
        return self.phases[-1]

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------

    def add_ops(self, ops: int, bytes_touched: int = 0) -> None:
        """Record abstract operations and the structure bytes they touch."""
        phase = self._phase
        phase.ops += ops
        phase.bytes_touched += bytes_touched
        self._integral += ops * self.live_bytes
        self._total_ops += ops

    def add_io(self, io_bytes: int) -> None:
        """Record streamed file input (the scan passes)."""
        self._phase.io_bytes += io_bytes

    def on_structure_built(self, size_bytes: int) -> None:
        """A long-lived structure of ``size_bytes`` came alive."""
        self.live_bytes += size_bytes
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes
        # _phase inlined: this runs once per conditional array on the
        # traced mine path, where the property indirection shows up.
        phase = self.phases[-1] if self.phases else self.begin_phase("run")
        if self.live_bytes > phase.footprint_bytes:
            phase.footprint_bytes = self.live_bytes
        phase.bytes_touched += size_bytes  # it was written once

    def on_structure_freed(self, size_bytes: int) -> None:
        """A structure was discarded."""
        self.live_bytes -= size_bytes

    # ------------------------------------------------------------------
    # Cross-worker aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "Meter", rename_to: str | None = None) -> None:
        """Fold another meter's record into this one.

        The parallel mine phase gives every worker its own ``Meter`` and
        merges them back, in deterministic task order, instead of silently
        dropping instrumentation when ``jobs > 1``. Phases are matched by
        name — or all mapped onto ``rename_to`` when given, which is how a
        worker's default ``"run"`` phase lands in the parent's current
        ``"mine"`` phase. Counters (ops, bytes touched, I/O) are summed;
        a phase's footprint takes the maximum.

        Workers run concurrently, so exact peak accounting is unknowable
        from the pieces; ``peak_bytes`` takes the conservative stacking
        estimate ``max(self.peak, self.live + other.peak)`` — exact when
        the merged work actually ran on top of this meter's live bytes.
        """
        self.flush_mine_scans()
        other.flush_mine_scans()
        for phase in other.phases:
            name = rename_to if rename_to is not None else phase.name
            target = next((p for p in self.phases if p.name == name), None)
            if target is None:
                target = self.begin_phase(name, phase.sequential_fraction)
            target.ops += phase.ops
            target.bytes_touched += phase.bytes_touched
            target.io_bytes += phase.io_bytes
            if phase.footprint_bytes > target.footprint_bytes:
                target.footprint_bytes = phase.footprint_bytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes + other.peak_bytes)
        self.live_bytes += other.live_bytes
        self._integral += other._integral
        self._total_ops += other._total_ops

    # ------------------------------------------------------------------
    # Span-stream serialization (repro.obs)
    # ------------------------------------------------------------------

    def to_record(self) -> dict:
        """The meter's full state as a JSON-able dict.

        The parallel miner attaches this to a worker's span instead of
        pickling the Meter object, so the span stream is the single
        channel instrumentation travels through; :meth:`from_record`
        rebuilds an equivalent meter on the parent side.
        """
        self.flush_mine_scans()
        return {
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "integral": self._integral,
            "total_ops": self._total_ops,
            "phases": [
                {
                    "name": p.name,
                    "sequential_fraction": p.sequential_fraction,
                    "ops": p.ops,
                    "bytes_touched": p.bytes_touched,
                    "footprint_bytes": p.footprint_bytes,
                    "io_bytes": p.io_bytes,
                }
                for p in self.phases
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "Meter":
        """Inverse of :meth:`to_record` — merge-equivalent to the original."""
        meter = cls(
            live_bytes=record["live_bytes"], peak_bytes=record["peak_bytes"]
        )
        meter._integral = record["integral"]
        meter._total_ops = record["total_ops"]
        for entry in record["phases"]:
            phase = Phase(
                entry["name"],
                entry["sequential_fraction"],
                ops=entry["ops"],
                bytes_touched=entry["bytes_touched"],
                footprint_bytes=entry["footprint_bytes"],
                io_bytes=entry["io_bytes"],
            )
            meter.phases.append(phase)
        return meter

    # ------------------------------------------------------------------
    # Algorithm-specific hooks used by the CFP-growth driver
    # ------------------------------------------------------------------

    def on_build(self, tree) -> None:
        """A prefix tree finished building (initial build phase)."""
        stats = tree.arena.stats()
        self.add_ops(stats.alloc_count, 0)
        self.on_structure_built(tree.memory_bytes)

    def on_conversion(self, tree, array) -> None:
        """A CFP-tree was converted; tree and array briefly coexist (§3.5)."""
        self.add_ops(array.node_count * 3, tree.memory_bytes + len(array.buffer))
        self.on_structure_built(array.memory_bytes)
        self.on_structure_freed(tree.memory_bytes)

    def on_mine_scan(self, subarray_bytes: int, path_items: int) -> None:
        """One item's sideward scan plus its backward traversals."""
        self.add_ops(path_items + 1, subarray_bytes + path_items * 3)

    def flush_mine_scans(self) -> None:
        """Fold inline-batched mine-scan accounting into the current phase.

        The columnar mine loop records each conditional's scan cost as
        two plain integer adds on ``_scan_ops`` / ``_scan_bytes`` (the
        :meth:`on_mine_scan` quantities, pre-summed) instead of a method
        call per conditional — at ~3k conditionals per quick-bench mine
        the call chain was the single largest traced-run overhead. Every
        reader of meter state flushes first, so the batching is invisible
        except that ``_integral`` weights a flush's ops by the live bytes
        at flush time rather than per scan.
        """
        ops = self._scan_ops
        if ops:
            self._scan_ops = 0
            bytes_touched = self._scan_bytes
            self._scan_bytes = 0
            self.add_ops(ops, bytes_touched)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def avg_bytes(self) -> float:
        """Time-weighted (by ops) average of live bytes."""
        self.flush_mine_scans()
        if self._total_ops == 0:
            return float(self.live_bytes)
        return self._integral / self._total_ops

    @property
    def total_ops(self) -> int:
        self.flush_mine_scans()
        return self._total_ops
