"""Calibrate the cost model against measured wall-clock time.

The simulated machine's ``op_seconds`` defaults to a C++-grade constant
(the paper's implementation). When the *absolute* numbers should instead
reflect this Python implementation — e.g. to sanity-check the model
against real runs — :func:`calibrate_op_seconds` measures a small
reference workload and solves for the per-op constant, returning a spec
whose in-core estimates match local reality.

Paging parameters (latency, bandwidth) are hardware properties, not
interpreter properties, and are left untouched.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.cfp_growth import mine_rank_transactions
from repro.datasets.quest import QuestGenerator
from repro.fptree.growth import CountCollector
from repro.machine.meter import Meter
from repro.machine.model import MachineSpec
from repro.util.items import prepare_transactions


def measure_reference_run(
    n_transactions: int = 600, seed: int = 7
) -> tuple[float, int]:
    """Run the reference workload; returns (wall_seconds, abstract_ops)."""
    database = QuestGenerator(
        n_transactions=n_transactions,
        avg_transaction_length=12,
        n_items=300,
        seed=seed,
    ).generate()
    table, transactions = prepare_transactions(database, max(2, n_transactions // 50))
    meter = Meter()
    meter.begin_phase("run")
    started = time.perf_counter()
    mine_rank_transactions(
        transactions, len(table), max(2, n_transactions // 50), CountCollector(), meter
    )
    wall = time.perf_counter() - started
    return wall, max(1, meter.total_ops)


def calibrate_op_seconds(
    base: MachineSpec | None = None,
    n_transactions: int = 600,
    seed: int = 7,
) -> MachineSpec:
    """Return ``base`` with ``op_seconds`` fitted to this interpreter.

    The DRAM term is folded into the fitted op constant (Python's
    per-operation overhead dwarfs memory latency), so the returned spec
    zeroes ``dram_seconds_per_byte``.
    """
    spec = base if base is not None else MachineSpec()
    wall, ops = measure_reference_run(n_transactions, seed)
    return replace(spec, op_seconds=wall / ops, dram_seconds_per_byte=0.0)
