"""Page-granular cost model: metered run -> estimated seconds.

Per phase, the model charges:

* CPU time — ``ops * op_seconds``;
* DRAM time — ``bytes_touched * dram_seconds_per_byte``;
* input I/O — ``io_bytes / scan_bandwidth`` (the paper measured their disk
  at 108 MB/s and found the initial build I/O bound, §4.1);
* paging — when the phase's footprint exceeds physical memory, a fraction
  ``overflow = 1 - physical/footprint`` of touched pages miss. Random
  misses pay the full disk latency each; sequential misses stream at disk
  bandwidth. The phase's ``sequential_fraction`` splits its traffic.

This reproduces the paper's three regimes (§4.4): fully in-core, working
set in core (gentle degradation), working set overflowing (collapse) — and
why conversion's sequential writes barely hurt while random tree accesses
are catastrophic (§4.3: the OS needs only n resident pages for the n
subarrays being filled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.machine.meter import Meter, Phase


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters of the simulated machine.

    The defaults scale the paper's testbed by 1/1024: 6 GB physical memory
    becomes 6 MiB, so megabyte-scale structures exercise the same
    transitions the paper's gigabyte-scale structures did.
    """

    physical_memory: int = 6 * 1024 * 1024
    page_size: int = 4096
    op_seconds: float = 20e-9
    dram_seconds_per_byte: float = 0.5e-9
    disk_latency: float = 5e-3
    disk_bandwidth: float = 108e6
    scan_bandwidth: float = 108e6

    def __post_init__(self) -> None:
        if self.physical_memory <= 0 or self.page_size <= 0:
            raise ExperimentError("memory and page size must be positive")
        if min(self.disk_bandwidth, self.scan_bandwidth) <= 0:
            raise ExperimentError("bandwidths must be positive")

    @classmethod
    def paper_testbed(cls) -> "MachineSpec":
        """The unscaled i7-920 / 6 GB / 108 MB/s machine of §4.1."""
        return cls(physical_memory=6 * 1024**3)


@dataclass
class TimeEstimate:
    """Estimated run time with a per-phase breakdown."""

    total_seconds: float
    cpu_seconds: float
    io_seconds: float
    paging_seconds: float
    per_phase: dict[str, float] = field(default_factory=dict)
    thrashed: bool = False
    """True when any phase overflowed physical memory."""


class SimulatedMachine:
    """Applies the cost model to a metered run."""

    def __init__(self, spec: MachineSpec | None = None):
        self.spec = spec if spec is not None else MachineSpec()

    def phase_seconds(self, phase: Phase) -> tuple[float, float, float]:
        """``(cpu, io, paging)`` seconds for one phase."""
        spec = self.spec
        cpu = phase.ops * spec.op_seconds + (
            phase.bytes_touched * spec.dram_seconds_per_byte
        )
        io = phase.io_bytes / spec.scan_bandwidth
        paging = 0.0
        footprint = phase.footprint_bytes
        if footprint > spec.physical_memory and phase.bytes_touched > 0:
            overflow = 1.0 - spec.physical_memory / footprint
            sequential = phase.bytes_touched * phase.sequential_fraction
            random = phase.bytes_touched - sequential
            # Sequential overflow streams at disk bandwidth.
            paging += overflow * sequential / spec.disk_bandwidth
            # Random overflow pays a seek per missed page.
            missed_pages = overflow * random / spec.page_size
            paging += missed_pages * spec.disk_latency
        return cpu, io, paging

    def estimate(self, meter: Meter) -> TimeEstimate:
        """Total estimated time for a metered run."""
        cpu_total = io_total = paging_total = 0.0
        per_phase: dict[str, float] = {}
        thrashed = False
        for phase in meter.phases:
            cpu, io, paging = self.phase_seconds(phase)
            cpu_total += cpu
            io_total += io
            paging_total += paging
            per_phase[phase.name] = per_phase.get(phase.name, 0.0) + cpu + io + paging
            if phase.footprint_bytes > self.spec.physical_memory:
                thrashed = True
        return TimeEstimate(
            total_seconds=cpu_total + io_total + paging_total,
            cpu_seconds=cpu_total,
            io_seconds=io_total,
            paging_seconds=paging_total,
            per_phase=per_phase,
            thrashed=thrashed,
        )
