"""Memory-budgeted mining: pick in-core or out-of-core automatically.

The paper's conclusion: stay in core when the compressed structures fit,
fall back to disk with CFP-friendly access patterns when they do not.
:func:`mine_with_budget` operationalizes that decision — it builds the
CFP-tree, converts it, and then either mines the in-memory CFP-array
(when tree + array stayed within the budget) or spills the array to disk
and mines through a buffer pool sized to the remaining budget.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Hashable

from repro.core.cfp_growth import mine_array, mine_array_partitioned
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.errors import ExperimentError
from repro.fptree.growth import ListCollector
from repro.storage import DiskCfpArray, save_cfp_array
from repro.storage.cfp_store import save_cfp_array_partitioned
from repro.storage.pagefile import PAGE_SIZE
from repro.storage.partitioned import PartitionedCfpArray
from repro.util.items import TransactionDatabase, prepare_transactions

#: Below this many pool pages out-of-core mining cannot make progress
#: sensibly; the budget must at least cover them.
MIN_POOL_PAGES = 2

#: Conservative per-request working-set estimate for serving admission
#: control: a support/top-k query bulk-decodes a handful of subarrays and
#: holds their columns (plus response buffers) while it runs. Four pages
#: of transient memory per in-flight request is deliberately generous —
#: admission control exists to bound memory, not to maximize packing.
DEFAULT_REQUEST_BYTES = 4 * PAGE_SIZE


def admission_limit(
    memory_budget: int,
    resident_bytes: int,
    per_request_bytes: int = DEFAULT_REQUEST_BYTES,
) -> int:
    """Concurrent requests a serving memory budget admits.

    The same budget philosophy as :func:`mine_with_budget`, applied to the
    query server: the budget first covers the long-lived resident
    structures (buffer pool, item index, decoded-subarray cache), and
    whatever remains divides into per-request working-set slots. The
    result is the server's max in-flight request count; requests beyond it
    are rejected with an ``overloaded`` error instead of silently growing
    the process (see docs/serving.md).
    """
    if per_request_bytes < 1:
        raise ExperimentError(
            f"per_request_bytes must be >= 1, got {per_request_bytes}"
        )
    if resident_bytes < 0:
        raise ExperimentError(f"resident_bytes must be >= 0, got {resident_bytes}")
    headroom = memory_budget - resident_bytes
    if headroom < per_request_bytes:
        raise ExperimentError(
            f"budget {memory_budget} leaves {max(0, headroom)} bytes after "
            f"the {resident_bytes}-byte resident structures — not enough "
            f"for one {per_request_bytes}-byte request slot"
        )
    return headroom // per_request_bytes


def snapshot_plan(
    memory_budget: int | None, array_bytes: int
) -> tuple[int | None, int]:
    """Partitioning for a published snapshot under a serving budget.

    Returns ``(partition_bytes, hot_bytes)`` for
    :meth:`repro.streaming.snapshots.SnapshotManager.publish` and the
    store that will open the result. ``memory_budget=None`` (or a budget
    the whole array fits in) keeps the monolithic v2 format —
    ``(None, 0)``; otherwise the same quarter-hot/rest-pool split as
    :func:`mine_with_budget` applies, with partitions sized to half the
    pool so the active partition and its read-ahead co-reside.
    """
    if memory_budget is None or array_bytes <= memory_budget:
        return None, 0
    if memory_budget < MIN_POOL_PAGES * PAGE_SIZE:
        raise ExperimentError(
            f"budget {memory_budget} below the minimum of "
            f"{MIN_POOL_PAGES * PAGE_SIZE} bytes"
        )
    hot_bytes = memory_budget // 4
    pool_budget = memory_budget - hot_bytes
    partition_bytes = max(PAGE_SIZE, pool_budget // 2)
    return partition_bytes, hot_bytes


@dataclass
class BudgetReport:
    """How the budget decision played out."""

    budget_bytes: int
    tree_bytes: int
    array_bytes: int
    went_out_of_core: bool
    pool_pages: int = 0
    page_faults: int = 0
    partitions: int = 0
    hot_bytes: int = 0
    prefetch_hits: int = 0
    bytes_read: int = 0


def mine_with_budget(
    database: TransactionDatabase,
    min_support: int,
    memory_budget: int,
    spill_dir: str | os.PathLike | None = None,
    *,
    partitioned: bool = True,
) -> tuple[list[tuple[tuple[Hashable, ...], int]], BudgetReport]:
    """Mine within ``memory_budget`` bytes for the *initial* structures.

    Conditional structures during mining are not charged against the
    budget (they are transient and small relative to the initial array;
    §3.5). Returns the itemsets and a report of the decision.

    Out-of-core spills default to the partitioned tiered store (format
    v3): the budget splits into a pinned hot set of the most frequent
    ranks (a quarter), with the rest backing the buffer pool; partitions
    are sized to half the pool so the active partition and its read-ahead
    co-reside, and the mine proceeds partition-at-a-time with background
    sequential prefetch. ``partitioned=False`` keeps the legacy
    monolithic spill (:class:`DiskCfpArray`, random pool reads) — the
    §4.3 access-pattern baseline the experiments still measure.
    """
    if memory_budget < MIN_POOL_PAGES * PAGE_SIZE:
        raise ExperimentError(
            f"budget {memory_budget} below the minimum of "
            f"{MIN_POOL_PAGES * PAGE_SIZE} bytes"
        )
    table, transactions = prepare_transactions(database, min_support)
    tree = TernaryCfpTree.from_rank_transactions(transactions, len(table))
    tree_bytes = tree.memory_bytes
    array = convert(tree)
    array_bytes = array.memory_bytes
    del tree
    collector = ListCollector()
    if array_bytes <= memory_budget:
        mine_array(array, min_support, collector)
        report = BudgetReport(
            budget_bytes=memory_budget,
            tree_bytes=tree_bytes,
            array_bytes=array_bytes,
            went_out_of_core=False,
        )
    elif partitioned:
        # Tiered split: a quarter of the budget pins the hot set (the
        # most frequent ranks, which every ancestor walk lands in), the
        # rest backs the buffer pool. Partitions at half the pool let the
        # active partition and its read-ahead co-reside.
        hot_bytes = memory_budget // 4
        pool_budget = memory_budget - hot_bytes
        pool_pages = max(MIN_POOL_PAGES, pool_budget // PAGE_SIZE)
        partition_bytes = max(PAGE_SIZE, pool_budget // 2)
        handle, path = tempfile.mkstemp(
            suffix=".cfpa", dir=os.fspath(spill_dir) if spill_dir else None
        )
        os.close(handle)
        try:
            save_cfp_array_partitioned(
                array, path, partition_bytes=partition_bytes
            )
            del array
            with PartitionedCfpArray(
                path, pool_pages=pool_pages, hot_bytes=hot_bytes
            ) as disk:
                mine_array_partitioned(disk, min_support, collector)
                stats = disk.pool.stats
                report = BudgetReport(
                    budget_bytes=memory_budget,
                    tree_bytes=tree_bytes,
                    array_bytes=array_bytes,
                    went_out_of_core=True,
                    pool_pages=pool_pages,
                    page_faults=stats.faults,
                    partitions=len(disk.partitions),
                    hot_bytes=disk.hot_bytes,
                    prefetch_hits=stats.prefetch_hits,
                    bytes_read=stats.bytes_read,
                )
        finally:
            os.unlink(path)
    else:
        pool_pages = max(MIN_POOL_PAGES, memory_budget // PAGE_SIZE)
        handle, path = tempfile.mkstemp(
            suffix=".cfpa", dir=os.fspath(spill_dir) if spill_dir else None
        )
        os.close(handle)
        try:
            save_cfp_array(array, path)
            del array
            with DiskCfpArray(path, pool_pages=pool_pages) as disk:
                mine_array(disk, min_support, collector)
                faults = disk.pool.stats.faults
        finally:
            os.unlink(path)
        report = BudgetReport(
            budget_bytes=memory_budget,
            tree_bytes=tree_bytes,
            array_bytes=array_bytes,
            went_out_of_core=True,
            pool_pages=pool_pages,
            page_faults=faults,
        )
    itemsets = [
        (table.ranks_to_items(ranks), support)
        for ranks, support in collector.itemsets
    ]
    return itemsets, report
