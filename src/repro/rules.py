"""Association-rule generation from frequent itemsets (§1's motivation).

The "customers who bought this also bought ..." application: a rule
``antecedent -> consequent`` is generated from each frequent itemset
``Z = antecedent ∪ consequent`` with

* ``support``    = support(Z) (absolute count),
* ``confidence`` = support(Z) / support(antecedent),
* ``lift``       = confidence / (support(consequent) / n_transactions).

Rule generation uses the classic Agrawal-Srikant levelwise scheme over
consequents: confidence is anti-monotone in the consequent (moving an
item from antecedent to consequent can only lower it), so consequents
that fail the threshold prune all their supersets.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable

from repro.api import MiningResult
from repro.core.cfp_growth import cfp_growth
from repro.errors import ExperimentError
from repro.util.items import TransactionDatabase


@dataclass(frozen=True)
class Rule:
    """One association rule with its quality measures."""

    antecedent: tuple[Hashable, ...]
    consequent: tuple[Hashable, ...]
    support: int
    confidence: float
    lift: float

    def __str__(self) -> str:  # pragma: no cover - presentation only
        lhs = ", ".join(map(str, self.antecedent))
        rhs = ", ".join(map(str, self.consequent))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(support={self.support}, confidence={self.confidence:.2f}, "
            f"lift={self.lift:.2f})"
        )


def generate_rules(
    itemsets: Iterable[tuple[tuple[Hashable, ...], int]] | MiningResult,
    n_transactions: int,
    min_confidence: float = 0.5,
    max_consequent_size: int | None = None,
) -> list[Rule]:
    """Derive all rules meeting ``min_confidence`` from mined itemsets.

    ``itemsets`` must be downward-closed (the complete output of a miner),
    since antecedent/consequent supports are looked up in it.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ExperimentError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if n_transactions < 1:
        raise ExperimentError("n_transactions must be positive")
    supports = {frozenset(itemset): s for itemset, s in itemsets}
    rules: list[Rule] = []
    for itemset, support in list(supports.items()):
        if len(itemset) < 2:
            continue
        limit = max_consequent_size or (len(itemset) - 1)
        # Levelwise over consequents with confidence pruning.
        consequents: list[frozenset] = [
            frozenset([item])
            for item in itemset
            if _confident(supports, itemset, frozenset([item]), min_confidence)
        ]
        _emit(rules, supports, itemset, support, consequents, n_transactions)
        size = 1
        while consequents and size < min(limit, len(itemset) - 1):
            size += 1
            merged = set()
            for a, b in combinations(consequents, 2):
                candidate = a | b
                if len(candidate) == size and _confident(
                    supports, itemset, candidate, min_confidence
                ):
                    merged.add(candidate)
            consequents = list(merged)
            _emit(rules, supports, itemset, support, consequents, n_transactions)
    rules.sort(key=lambda r: (-r.confidence, -r.support, repr(r.antecedent)))
    return rules


def also_bought(
    rules: Iterable[Rule],
    basket: Iterable[Hashable],
    limit: int = 10,
) -> list[Rule]:
    """The "customers who bought this also bought ..." query.

    Filters a rule set down to the rules a basket *triggers*: the whole
    antecedent is in the basket and the consequent recommends only items
    not already in it. Output order is deterministic — strongest rules
    first (confidence, then support, then the antecedent/consequent reprs
    as the final tie-break), truncated to ``limit`` — because the serving
    layer promises byte-identical answers to direct library calls.
    """
    if limit < 1:
        raise ExperimentError(f"limit must be >= 1, got {limit}")
    basket_set = set(basket)
    triggered = [
        rule
        for rule in rules
        if set(rule.antecedent) <= basket_set
        and not basket_set & set(rule.consequent)
    ]
    triggered.sort(
        key=lambda r: (
            -r.confidence,
            -r.support,
            repr(r.antecedent),
            repr(r.consequent),
        )
    )
    return triggered[:limit]


def mine_rules(
    database: TransactionDatabase,
    min_support: int,
    min_confidence: float = 0.5,
    max_consequent_size: int | None = None,
) -> list[Rule]:
    """Mine and derive rules in one call."""
    itemsets = cfp_growth(database, min_support)
    return generate_rules(
        itemsets, len(database), min_confidence, max_consequent_size
    )


def _confident(supports, itemset, consequent, min_confidence) -> bool:
    antecedent = frozenset(itemset) - consequent
    if not antecedent:
        return False
    return supports[frozenset(itemset)] / supports[antecedent] >= min_confidence


def _emit(rules, supports, itemset, support, consequents, n_transactions) -> None:
    for consequent in consequents:
        antecedent = frozenset(itemset) - consequent
        confidence = support / supports[antecedent]
        base_rate = supports[consequent] / n_transactions
        rules.append(
            Rule(
                antecedent=tuple(sorted(antecedent, key=repr)),
                consequent=tuple(sorted(consequent, key=repr)),
                support=support,
                confidence=confidence,
                lift=confidence / base_rate if base_rate else 0.0,
            )
        )
