"""Run every experiment and write all reports in one shot.

``python -m repro.experiments.summary [output_dir]`` regenerates the full
evaluation — every table, figure, ablation and extension sweep — printing
each report and persisting it as ``<output_dir>/<name>.txt`` (default:
``benchmarks/reports``). This is the one-command reproduction of the
paper's §4.
"""

from __future__ import annotations

import importlib
import pathlib
import sys
import time

#: (experiment module, report name, run kwargs) in execution order.
EXPERIMENTS: tuple[tuple[str, str, dict], ...] = (
    ("table1", "table1", {}),
    ("table2", "table2", {}),
    ("table3", "table3", {}),
    ("fig6", "fig6", {}),
    ("compression_curve", "compression_curve", {}),
    ("fig7", "fig7", {}),
    ("fig8", "fig8ab", {}),
    ("ablations", "ablations_webdocs", {}),
    ("outofcore", "outofcore", {}),
    ("distributed", "distributed", {}),
)


def run_all(
    output_dir: str | None = None, only: tuple[str, ...] | None = None
) -> dict[str, str]:
    """Execute every experiment (or the ``only`` subset); name -> report."""
    directory = pathlib.Path(
        output_dir
        if output_dir is not None
        else pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "reports"
    )
    directory.mkdir(parents=True, exist_ok=True)
    reports: dict[str, str] = {}
    selected = [
        entry for entry in EXPERIMENTS if only is None or entry[0] in only
    ]
    for module_name, report_name, kwargs in selected:
        module = importlib.import_module(f"repro.experiments.{module_name}")
        started = time.perf_counter()
        report = module.format_report(module.run(**kwargs))
        elapsed = time.perf_counter() - started
        reports[report_name] = report
        (directory / f"{report_name}.txt").write_text(report + "\n")
        print(report)
        print(f"[{module_name}: {elapsed:.1f}s]\n", file=sys.stderr)
    return reports


if __name__ == "__main__":
    run_all(sys.argv[1] if len(sys.argv) > 1 else None)
