"""Formatting helpers shared by the experiment reports."""

from __future__ import annotations


def percent(fraction: float) -> str:
    """Table 1/2-style percentage cell: '<1%', '0%', '98%', '>99%'."""
    value = fraction * 100
    if value == 0:
        return "0%"
    if value < 1:
        return "<1%"
    if value > 99 and value < 100:
        return ">99%"
    return f"{value:.0f}%"


def human_bytes(size: float) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if abs(size) < 1024:
            return f"{size:.0f}{unit}" if unit == "B" else f"{size:.2f}{unit}"
        size /= 1024
    return f"{size:.2f}TB"


def seconds(value: float) -> str:
    if value >= 3600:
        return f"{value / 3600:.2f}h"
    if value >= 60:
        return f"{value / 60:.1f}min"
    if value >= 1:
        return f"{value:.1f}s"
    return f"{value * 1000:.1f}ms"


def table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
