"""ASCII plotting for the figure reports.

The paper's figures are log-scale line charts; these helpers render the
same series as terminal charts so the regenerated reports read like the
originals. Pure text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Marker characters assigned to series in order.
MARKERS = "ox*+#@%&"


def _log_position(value: float, low: float, high: float, size: int) -> int:
    """Map a value to a 0..size-1 cell on a log scale."""
    if value <= 0:
        return 0
    if high <= low:
        return 0
    fraction = (math.log10(value) - math.log10(low)) / (
        math.log10(high) - math.log10(low)
    )
    return min(size - 1, max(0, round(fraction * (size - 1))))


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """Render named (x, y) series as a log-log ASCII chart.

    Non-positive values are clamped to the axis edge. Overlapping points
    keep the marker drawn last (series order).
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, __ in points if x > 0] or [1.0]
    ys = [y for __, y in points if y > 0] or [1.0]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for __ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in values:
            column = _log_position(x, x_low, x_high, width)
            row = height - 1 - _log_position(y, y_low, y_high, height)
            grid[row][column] = marker
    lines = []
    if title:
        lines.append(title)
    top_label = _format_value(y_high)
    bottom_label = _format_value(y_low)
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width
        + "  "
        + _format_value(x_low)
        + _format_value(x_high).rjust(width - len(_format_value(x_low)))
    )
    lines.append(x_axis)
    if x_label:
        lines.append(" " * label_width + "  " + x_label.center(width))
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def _format_value(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if value >= 1_000:
        return f"{value / 1_000:.3g}k"
    if value >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"
