"""Experiment drivers: one module per table/figure of the paper (§4).

Each module exposes ``run(...)`` returning a result dataclass and
``format_report(result)`` producing the paper-style rows/series as text.
The benchmark suite (``benchmarks/``) wraps these, and the modules are
runnable directly::

    python -m repro.experiments.fig7

Index (see DESIGN.md for the full mapping):

===========  ===============================================================
table1       leading-zero bytes per FP-tree field (webdocs proxy)
table2       leading-zero bytes per CFP-tree field
table3       synthetic dataset summary (Quest1/Quest2)
fig6         average node size: ternary CFP-tree (a) and CFP-array (b)
fig7         build/convert time and memory vs tree size, FP vs CFP
fig8         time and peak memory vs support against the FIMI algorithms
ablations    each CFP design choice isolated (DESIGN.md §5)
outofcore    real page faults vs buffer-pool size (§4.3, class 3)
distributed  PFP group-count sweep (§5, class 4)
===========  ===============================================================
"""

from repro.experiments.drivers import RunResult, run_metered

__all__ = ["RunResult", "run_metered"]
