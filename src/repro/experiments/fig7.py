"""Figure 7: FP-growth vs CFP-growth under memory pressure (paper §4.3-4.4).

A minimum-support sweep over the Quest1 proxy, priced on the simulated
machine whose physical memory is scaled with the data. Per sweep point the
experiment reports the paper's four panels:

(a) build(+conversion) time vs initial tree size, with the scan-time floor,
(b) build-phase memory vs tree size,
(c) total execution time vs tree size,
(d) peak (and CFP average) memory vs tree size.

Expected shapes: FP-growth's build time explodes once 40 B/node crosses
physical memory; CFP-growth crosses ~7.5x later and degrades gently
(conversion is sequential); at FP-growth's knee the total-time gap is
an order of magnitude or more (the paper measures 20x at 135M nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import workloads
from repro.experiments.drivers import RunResult, initial_tree_size, run_metered
from repro.experiments.plot import ascii_chart
from repro.experiments.report import human_bytes, seconds, table
from repro.machine import MachineSpec


@dataclass
class Fig7Point:
    relative_support: float
    min_support: int
    tree_nodes: int
    scan_seconds: float
    runs: dict[str, RunResult]


@dataclass
class Fig7Result:
    dataset: str
    spec: MachineSpec
    points: list[Fig7Point]

    def series(self, algorithm: str, metric) -> list[tuple[int, float]]:
        """(tree_nodes, metric(run)) pairs for one algorithm."""
        return [
            (point.tree_nodes, metric(point.runs[algorithm]))
            for point in self.points
        ]


def run(
    dataset: str = "quest1",
    supports: tuple[float, ...] = workloads.FIG7_SUPPORTS,
    spec: MachineSpec = workloads.SWEEP_SPEC,
    algorithms: tuple[str, ...] = ("fp-growth", "cfp-growth"),
) -> Fig7Result:
    fimi_bytes = workloads.fimi_size(dataset)
    points = []
    for relative in supports:
        min_support = workloads.absolute_support(dataset, relative)
        n_ranks, transactions = workloads.prepared(dataset, min_support)
        transactions = list(transactions)
        tree_nodes = initial_tree_size(transactions, n_ranks)
        runs = {}
        for algorithm in algorithms:
            runs[algorithm] = run_metered(
                algorithm,
                transactions,
                n_ranks,
                min_support,
                fimi_bytes,
                spec,
                tree_nodes,
            )
        scan = next(iter(runs.values())).phase_seconds("scan")
        points.append(
            Fig7Point(relative, min_support, tree_nodes, scan, runs)
        )
    return Fig7Result(dataset, spec, points)


def build_seconds(run: RunResult) -> float:
    """Panel (a): scan + build (+ conversion for CFP)."""
    return run.phase_seconds("scan", "build", "convert")


def build_memory(run: RunResult) -> int:
    """Panel (b): peak bytes across scan/build/convert phases."""
    return max(
        (
            phase.footprint_bytes
            for phase in run.meter.phases
            if phase.name in ("scan", "build", "convert")
        ),
        default=0,
    )


def format_report(result: Fig7Result) -> str:
    algorithms = list(result.points[0].runs)
    parts = [
        f"Figure 7 — {result.dataset} proxy sweep, physical memory "
        f"{human_bytes(result.spec.physical_memory)} "
        f"(the paper's 6 GB, scaled with the data)"
    ]
    # (a) build time
    rows = []
    for point in result.points:
        row = [f"{point.tree_nodes:,}", seconds(point.scan_seconds)]
        row += [
            seconds(build_seconds(point.runs[a])) for a in algorithms
        ]
        rows.append(row)
    parts.append(
        table(
            ["tree nodes", "scan floor"] + [f"{a} build" for a in algorithms],
            rows,
            title="(a) build(+conversion) time vs initial tree size",
        )
    )
    # (b) build memory
    rows = [
        [f"{p.tree_nodes:,}"]
        + [human_bytes(build_memory(p.runs[a])) for a in algorithms]
        for p in result.points
    ]
    parts.append(
        table(
            ["tree nodes"] + [f"{a} build mem" for a in algorithms],
            rows,
            title="(b) build-phase memory vs tree size",
        )
    )
    # (c) total time
    rows = []
    for point in result.points:
        row = [f"{point.tree_nodes:,}"]
        row += [seconds(point.runs[a].total_seconds) for a in algorithms]
        if len(algorithms) == 2:
            first, second = algorithms
            ratio = (
                point.runs[first].total_seconds
                / max(point.runs[second].total_seconds, 1e-12)
            )
            row.append(f"{ratio:.1f}x")
        rows.append(row)
    headers = ["tree nodes"] + [f"{a} total" for a in algorithms]
    if len(algorithms) == 2:
        headers.append("speedup")
    parts.append(table(headers, rows, title="(c) total execution time"))
    # (d) memory consumption
    rows = []
    for point in result.points:
        row = [f"{point.tree_nodes:,}"]
        for a in algorithms:
            row.append(human_bytes(point.runs[a].peak_bytes))
        cfp = point.runs.get("cfp-growth")
        row.append(human_bytes(cfp.avg_bytes) if cfp else "-")
        rows.append(row)
    parts.append(
        table(
            ["tree nodes"]
            + [f"{a} peak" for a in algorithms]
            + ["cfp avg"],
            rows,
            title="(d) peak (and CFP average) memory consumption",
        )
    )
    parts.append(
        ascii_chart(
            {
                a: result.series(a, lambda r: r.total_seconds)
                for a in algorithms
            },
            title="(c) as a chart — total time vs tree size (log-log)",
            x_label="initial tree nodes",
            y_label="seconds",
        )
    )
    parts.append(
        ascii_chart(
            {
                a: result.series(a, lambda r: float(r.peak_bytes))
                for a in algorithms
            },
            title="(d) as a chart — peak memory vs tree size (log-log)",
            x_label="initial tree nodes",
            y_label="bytes",
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(format_report(run()))
