"""Table 1: leading zero bytes per FP-tree field (paper §3.1).

The paper builds the ternary FP-tree for webdocs at 10% minimum support
and reports, per field, the distribution of leading zero bytes — showing
that ~53% of all stored bytes are zeros. This experiment reproduces the
analysis on the webdocs proxy (or any named dataset).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import workloads
from repro.experiments.report import percent, table
from repro.fptree.accounting import (
    FieldDistribution,
    ternary_field_distributions,
    zero_byte_fraction,
)
from repro.fptree.ternary import TERNARY_FIELDS, TernaryFPTree


@dataclass
class Table1Result:
    dataset: str
    min_support: int
    node_count: int
    distributions: dict[str, FieldDistribution]
    zero_fraction: float


def run(dataset: str = "webdocs", relative_support: float = 0.10) -> Table1Result:
    """Build the ternary FP-tree and account its fields."""
    min_support = workloads.absolute_support(dataset, relative_support)
    n_ranks, transactions = workloads.prepared(dataset, min_support)
    tree = TernaryFPTree.from_rank_transactions(transactions, n_ranks)
    distributions = ternary_field_distributions(tree)
    return Table1Result(
        dataset=dataset,
        min_support=min_support,
        node_count=tree.node_count,
        distributions=distributions,
        zero_fraction=zero_byte_fraction(distributions),
    )


def format_report(result: Table1Result) -> str:
    rows = []
    for field in TERNARY_FIELDS:
        fractions = result.distributions[field].fractions()
        rows.append([field] + [percent(f) for f in fractions])
    body = table(
        ["field", "0", "1", "2", "3", "4"],
        rows,
        title=(
            f"Table 1 — leading zero bytes per FP-tree field "
            f"({result.dataset} proxy, xi={result.min_support}, "
            f"{result.node_count:,} nodes)"
        ),
    )
    return (
        f"{body}\n"
        f"zero bytes overall: {result.zero_fraction * 100:.1f}% "
        f"(paper: ~53% on webdocs)"
    )


if __name__ == "__main__":
    print(format_report(run()))
