"""Table 2: leading zero bytes per CFP-tree field (paper §3.2).

Same analysis as Table 1 but on the CFP-tree's ``delta_item``/``pcount``
fields — showing pcount ≈97% full-zero and delta_item ≈100% one-byte,
the distributions that make the §3.3 static encodings effective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accounting import CFP_FIELDS, cfp_field_distributions
from repro.core.ternary import TernaryCfpTree
from repro.experiments import workloads
from repro.experiments.report import percent, table
from repro.fptree.accounting import FieldDistribution


@dataclass
class Table2Result:
    dataset: str
    min_support: int
    node_count: int
    transaction_count: int
    distributions: dict[str, FieldDistribution]


def run(dataset: str = "webdocs", relative_support: float = 0.10) -> Table2Result:
    min_support = workloads.absolute_support(dataset, relative_support)
    n_ranks, transactions = workloads.prepared(dataset, min_support)
    tree = TernaryCfpTree.from_rank_transactions(list(transactions), n_ranks)
    return Table2Result(
        dataset=dataset,
        min_support=min_support,
        node_count=tree.node_count,
        transaction_count=tree.transaction_count,
        distributions=cfp_field_distributions(tree),
    )


def format_report(result: Table2Result) -> str:
    rows = []
    for field in CFP_FIELDS:
        fractions = result.distributions[field].fractions()
        rows.append([field] + [percent(f) for f in fractions])
    body = table(
        ["field", "0", "1", "2", "3", "4"],
        rows,
        title=(
            f"Table 2 — leading zero bytes per CFP-tree field "
            f"({result.dataset} proxy, xi={result.min_support}, "
            f"{result.node_count:,} nodes)"
        ),
    )
    zero_pcount = result.distributions["pcount"].fractions()[4]
    return (
        f"{body}\n"
        f"pcount fully zero: {zero_pcount * 100:.1f}% (paper: 97%); "
        f"sum of pcounts = {result.transaction_count:,} transactions (§3.2)"
    )


if __name__ == "__main__":
    print(format_report(run()))
