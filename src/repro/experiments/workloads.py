"""Shared experiment workloads: datasets, support grids, machine specs.

Sizes are tuned so the full benchmark suite runs in minutes of pure
Python while landing in the same structural regimes as the paper's
gigabyte-scale runs: the simulated machine's physical memory is scaled
along with the data (§4.1's 6 GB becomes 256 KiB for the Figure 7/8
sweeps), so the in-core -> thrashing transitions happen *within* each
sweep exactly as they do in the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.stats import dataset_stats
from repro.datasets.synthetic import make_dataset
from repro.machine import MachineSpec
from repro.util.items import prepare_transactions

#: Per-dataset generation parameters for the Figure 6 grid.
FIG6_DATASET_ARGS: dict[str, dict] = {
    "retail": {"n_transactions": 2_000},
    "connect": {"n_transactions": 1_500},
    "kosarak": {"n_transactions": 3_000},
    "accidents": {"n_transactions": 1_200},
    "webdocs": {"n_transactions": 700},
    "quest1": {"scale": 0.08},
    "quest2": {"scale": 0.08},
}

#: Relative minimum supports for Figure 6 (fractions of the transaction
#: count; the paper uses dataset-specific absolute values).
FIG6_SUPPORT_LEVELS: dict[str, float] = {
    "high": 0.05,
    "medium": 0.01,
    "low": 0.002,
}

#: Machine for the Figure 7/8 sweeps: 6 GB scaled down with the data.
SWEEP_SPEC = MachineSpec(physical_memory=256 * 1024)

#: Relative support grid for the Figure 7 sweep (decreasing support ->
#: growing initial tree, the paper's x-axis).
FIG7_SUPPORTS = (0.10, 0.05, 0.03, 0.02, 0.01, 0.007, 0.005)

#: Relative support grid for the Figure 8 sweeps (the paper sweeps
#: ξ = 4.0% downwards).
FIG8_SUPPORTS = (0.10, 0.05, 0.03, 0.02, 0.012)


@lru_cache(maxsize=None)
def dataset(name: str) -> tuple:
    """Generate (and cache) one experiment dataset."""
    args = FIG6_DATASET_ARGS.get(name, {})
    return tuple(tuple(t) for t in make_dataset(name, **args))


@lru_cache(maxsize=None)
def fimi_size(name: str) -> int:
    """FIMI text size of a dataset — the scans' I/O volume."""
    return dataset_stats(name, dataset(name)).fimi_bytes


@lru_cache(maxsize=None)
def prepared(name: str, min_support: int) -> tuple[int, tuple]:
    """Prepared rank transactions for (dataset, support); cached.

    Returns ``(n_ranks, transactions)``.
    """
    table, transactions = prepare_transactions(dataset(name), min_support)
    return len(table), tuple(tuple(t) for t in transactions)


def absolute_support(name: str, relative: float) -> int:
    """Relative support -> absolute transaction count (minimum 2)."""
    return max(2, int(round(relative * len(dataset(name)))))
