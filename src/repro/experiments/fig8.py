"""Figure 8: CFP-growth vs the FIMI/PARSEC algorithms (paper §4.5).

Support sweeps on the Quest proxies, priced on the scaled machine:

(a) runtime vs support — CFP-growth, CT-PRO, FP-growth-Tiny, FP-array
    (Quest1),
(b) peak memory for the same grid,
(c) runtime vs support — CFP-growth, nonordfp, LCM, AFOPT (Quest1),
(d) the (c) grid on Quest2 (twice the transactions).

Expected shapes: CFP-growth lowest memory everywhere; Tiny/CT-PRO hit the
limit first; FP-array sits above the limit from the start (in-memory
dataset copy); nonordfp degrades early; LCM's footprint scales with the
transaction count, so it breaks down earlier on Quest2 while CFP-growth's
cost grows only modestly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import workloads
from repro.experiments.drivers import RunResult, initial_tree_size, run_metered
from repro.experiments.plot import ascii_chart
from repro.experiments.report import human_bytes, seconds, table
from repro.machine import MachineSpec

#: Panel (a)/(b) contenders (§4.5 first experiment set).
PANEL_A_ALGORITHMS = ("cfp-growth", "ct-pro", "fp-growth-tiny", "fp-array")

#: Panel (c)/(d) contenders (best-performing FIMI algorithms).
PANEL_C_ALGORITHMS = ("cfp-growth", "nonordfp", "lcm", "afopt")


@dataclass
class Fig8Point:
    relative_support: float
    min_support: int
    tree_nodes: int
    runs: dict[str, RunResult]


@dataclass
class Fig8Result:
    dataset: str
    algorithms: tuple[str, ...]
    spec: MachineSpec
    points: list[Fig8Point]


def run(
    dataset: str = "quest1",
    algorithms: tuple[str, ...] = PANEL_A_ALGORITHMS,
    supports: tuple[float, ...] = workloads.FIG8_SUPPORTS,
    spec: MachineSpec = workloads.SWEEP_SPEC,
) -> Fig8Result:
    fimi_bytes = workloads.fimi_size(dataset)
    points = []
    for relative in supports:
        min_support = workloads.absolute_support(dataset, relative)
        n_ranks, transactions = workloads.prepared(dataset, min_support)
        transactions = list(transactions)
        tree_nodes = initial_tree_size(transactions, n_ranks)
        runs = {
            algorithm: run_metered(
                algorithm,
                transactions,
                n_ranks,
                min_support,
                fimi_bytes,
                spec,
                tree_nodes,
            )
            for algorithm in algorithms
        }
        points.append(Fig8Point(relative, min_support, tree_nodes, runs))
    return Fig8Result(dataset, algorithms, spec, points)


def format_report(result: Fig8Result, panel: str = "") -> str:
    title = (
        f"Figure 8{panel} — {result.dataset} proxy, physical memory "
        f"{human_bytes(result.spec.physical_memory)}"
    )
    time_rows = []
    memory_rows = []
    for point in result.points:
        label = f"{point.relative_support * 100:.1f}%"
        time_rows.append(
            [label, f"{point.tree_nodes:,}"]
            + [seconds(point.runs[a].total_seconds) for a in result.algorithms]
        )
        memory_rows.append(
            [label, f"{point.tree_nodes:,}"]
            + [human_bytes(point.runs[a].peak_bytes) for a in result.algorithms]
        )
    time_table = table(
        ["xi", "tree nodes"] + list(result.algorithms),
        time_rows,
        title=f"{title}\nruntime vs minimum support",
    )
    memory_table = table(
        ["xi", "tree nodes"] + list(result.algorithms),
        memory_rows,
        title="peak memory vs minimum support",
    )
    chart = ascii_chart(
        {
            a: [
                (p.relative_support * 100, p.runs[a].total_seconds)
                for p in result.points
            ]
            for a in result.algorithms
        },
        title="runtime chart (log-log; x = minimum support %)",
        x_label="minimum support (%)",
        y_label="seconds",
    )
    return f"{time_table}\n\n{memory_table}\n\n{chart}"


if __name__ == "__main__":
    print(format_report(run(algorithms=PANEL_A_ALGORITHMS), "(a,b)"))
    print()
    print(format_report(run(algorithms=PANEL_C_ALGORITHMS), "(c)"))
    print()
    print(
        format_report(
            run(dataset="quest2", algorithms=PANEL_C_ALGORITHMS), "(d)"
        )
    )
