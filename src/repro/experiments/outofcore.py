"""Out-of-core CFP-growth: real page faults (paper §4.3-4.4, class 3).

The Figure 7/8 sweeps *model* paging; this experiment performs it: the
initial CFP-array is written to disk and the entire mine phase runs
through an LRU buffer pool of varying size. Reported per pool size:

* page faults and hit ratio for the full mine phase (random backward
  traversals — the expensive pattern §4.3 warns about),
* page faults for one sequential sweep over all subarrays (the access
  pattern of conversion/sideward scans — near one fault per page),
* estimated seconds when each fault costs a disk seek.

Expected shape: sequential faults stay at ~(array size / page size)
regardless of pool size, while mine-phase faults fall steeply as the pool
approaches the array size — the asymmetry that makes the CFP conversion
cheap and tree thrashing catastrophic in the paper.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.experiments import workloads
from repro.experiments.report import human_bytes, seconds, table
from repro.fptree.growth import CountCollector
from repro.machine import MachineSpec
from repro.storage import DiskCfpArray, save_cfp_array
from repro.storage.pagefile import PAGE_SIZE


@dataclass
class PoolPoint:
    pool_pages: int
    mine_faults: int
    mine_hit_ratio: float
    sequential_faults: int
    itemsets: int
    estimated_seconds: float


@dataclass
class OutOfCoreResult:
    dataset: str
    min_support: int
    array_bytes: int
    array_pages: int
    points: list[PoolPoint]


def run(
    dataset: str = "quest1",
    relative_support: float = 0.05,
    pool_sizes: tuple[int, ...] = (2, 8, 32, 128, 512),
    spec: MachineSpec | None = None,
) -> OutOfCoreResult:
    spec = spec if spec is not None else MachineSpec()
    min_support = workloads.absolute_support(dataset, relative_support)
    n_ranks, transactions = workloads.prepared(dataset, min_support)
    tree = TernaryCfpTree.from_rank_transactions(list(transactions), n_ranks)
    array = convert(tree)
    del tree

    handle, path = tempfile.mkstemp(suffix=".cfpa")
    os.close(handle)
    try:
        save_cfp_array(array, path)
        points = []
        for pool_pages in pool_sizes:
            with DiskCfpArray(path, pool_pages=pool_pages) as disk:
                collector = CountCollector()
                mine_array(disk, min_support, collector)
                mine_faults = disk.pool.stats.faults
                mine_hits = disk.pool.stats.hit_ratio
            with DiskCfpArray(path, pool_pages=pool_pages) as disk:
                for rank in disk.active_ranks_descending():
                    for __ in disk.iter_subarray(rank):
                        pass
                sequential_faults = disk.pool.stats.faults
            points.append(
                PoolPoint(
                    pool_pages=pool_pages,
                    mine_faults=mine_faults,
                    mine_hit_ratio=mine_hits,
                    sequential_faults=sequential_faults,
                    itemsets=collector.count,
                    estimated_seconds=mine_faults * spec.disk_latency,
                )
            )
    finally:
        os.unlink(path)
    return OutOfCoreResult(
        dataset=dataset,
        min_support=min_support,
        array_bytes=len(array.buffer),
        array_pages=-(-len(array.buffer) // PAGE_SIZE),
        points=points,
    )


def format_report(result: OutOfCoreResult) -> str:
    rows = [
        [
            str(p.pool_pages),
            human_bytes(p.pool_pages * PAGE_SIZE),
            f"{p.mine_faults:,}",
            f"{p.mine_hit_ratio * 100:.1f}%",
            f"{p.sequential_faults:,}",
            seconds(p.estimated_seconds),
        ]
        for p in result.points
    ]
    body = table(
        ["pool pages", "pool size", "mine faults", "hit ratio", "seq faults", "est. paging"],
        rows,
        title=(
            f"Out-of-core mining — {result.dataset} proxy, "
            f"xi={result.min_support}, CFP-array "
            f"{human_bytes(result.array_bytes)} ({result.array_pages} pages)"
        ),
    )
    return (
        f"{body}\n"
        f"itemsets found: {result.points[0].itemsets:,} "
        f"(identical at every pool size)"
    )


if __name__ == "__main__":
    print(format_report(run()))
