"""Ablations of the CFP design choices (DESIGN.md §5, paper §3.2-3.4).

Each ablation isolates one decision the paper argues for:

1. ``delta_item`` vs the raw item id (§3.2's delta coding),
2. ``pcount`` vs the cumulative count (§3.2: partial counts compress
   dramatically; the paper also notes delta-coded *counts* would be worse),
3. embedded leaves on/off (§3.3),
4. chain nodes on/off and the maximum chain length (§3.3, §4.1 fixes 15),
5. varint vs zero-suppression encoding for the CFP-array triples (§3.4),
6. item-clustered CFP-array order vs naive DFS order with explicit
   nodelinks (§3.4's nodelink elimination).

Structural ablations (3, 4) rebuild the tree with features disabled; field
encodings (1, 2, 5, 6) are measured analytically over the real tree/array
contents — the alternative layout's exact byte count on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.varint import encoded_size, zigzag
from repro.compress.zero_suppression import payload_size_2bit, payload_size_3bit
from repro.core.conversion import convert, cumulative_counts
from repro.core.ternary import TernaryCfpTree
from repro.experiments import workloads
from repro.experiments.report import human_bytes, table
from repro.memman.pointers import POINTER_SIZE


@dataclass
class AblationResult:
    dataset: str
    min_support: int
    nodes: int
    # 1. item encoding payload bytes
    delta_item_bytes: int
    raw_item_bytes: int
    # 2. count encoding payload bytes
    pcount_bytes: int
    cumulative_count_bytes: int
    # 3./4. structural variants: total tree bytes
    tree_full: int
    tree_no_embedding: int
    tree_no_chains: int
    tree_plain: int
    tree_by_chain_length: dict[int, int]
    # 5./6. array encodings: total bytes
    array_varint: int
    array_zero_suppression: int
    array_with_nodelinks: int


def run(dataset: str = "webdocs", relative_support: float = 0.01) -> AblationResult:
    min_support = workloads.absolute_support(dataset, relative_support)
    n_ranks, prepared = workloads.prepared(dataset, min_support)
    transactions = list(prepared)

    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)

    # --- field encodings (1, 2) over the real node contents ------------
    delta_item_bytes = raw_item_bytes = 0
    pcount_bytes = 0
    pcounts = []
    for rank, pcount, parent_rank in tree.iter_nodes_with_parent():
        delta_item_bytes += payload_size_2bit(rank - parent_rank)
        raw_item_bytes += payload_size_2bit(rank)
        pcount_bytes += payload_size_3bit(pcount)
        pcounts.append(pcount)
    counts = cumulative_counts(tree)
    cumulative_count_bytes = sum(payload_size_3bit(c) for c in counts)

    # --- structural variants (3, 4) ------------------------------------
    def build(**options) -> int:
        return TernaryCfpTree.from_rank_transactions(
            transactions, n_ranks, **options
        ).memory_bytes

    tree_by_chain_length = {
        length: build(max_chain_length=length) for length in (2, 4, 8, 15)
    }

    # --- array encodings (5, 6) ----------------------------------------
    array = convert(tree)
    array_varint = array.memory_bytes
    zero_suppressed = 0
    for rank in range(1, n_ranks + 1):
        for __, delta_item, dpos, count in array.iter_subarray(rank):
            # One mask byte (2+3+3 bits) plus zero-suppressed payloads.
            zero_suppressed += (
                1
                + payload_size_2bit(delta_item)
                + payload_size_3bit(zigzag(dpos))
                + payload_size_3bit(count)
            )
    zero_suppressed += (n_ranks + 1) * POINTER_SIZE  # same item index
    # Naive DFS order keeps the varint triples but needs an explicit
    # nodelink per node (40-bit) to connect same-item nodes, and a
    # varint item field is unchanged.
    array_with_nodelinks = array_varint + array.node_count * POINTER_SIZE

    return AblationResult(
        dataset=dataset,
        min_support=min_support,
        nodes=tree.node_count,
        delta_item_bytes=delta_item_bytes,
        raw_item_bytes=raw_item_bytes,
        pcount_bytes=pcount_bytes,
        cumulative_count_bytes=cumulative_count_bytes,
        tree_full=tree.memory_bytes,
        tree_no_embedding=build(enable_embedding=False),
        tree_no_chains=build(enable_chains=False),
        tree_plain=build(enable_chains=False, enable_embedding=False),
        tree_by_chain_length=tree_by_chain_length,
        array_varint=array_varint,
        array_zero_suppression=zero_suppressed,
        array_with_nodelinks=array_with_nodelinks,
    )


def format_report(result: AblationResult) -> str:
    rows = [
        [
            "1. item field",
            f"delta: {human_bytes(result.delta_item_bytes)}",
            f"raw: {human_bytes(result.raw_item_bytes)}",
            f"{result.raw_item_bytes / max(result.delta_item_bytes, 1):.2f}x",
        ],
        [
            "2. count field",
            f"pcount: {human_bytes(result.pcount_bytes)}",
            f"cumulative: {human_bytes(result.cumulative_count_bytes)}",
            f"{result.cumulative_count_bytes / max(result.pcount_bytes, 1):.2f}x",
        ],
        [
            "3. embedding",
            f"on: {human_bytes(result.tree_full)}",
            f"off: {human_bytes(result.tree_no_embedding)}",
            f"{result.tree_no_embedding / max(result.tree_full, 1):.2f}x",
        ],
        [
            "4. chains",
            f"on: {human_bytes(result.tree_full)}",
            f"off: {human_bytes(result.tree_no_chains)}",
            f"{result.tree_no_chains / max(result.tree_full, 1):.2f}x",
        ],
        [
            "   both off",
            f"full: {human_bytes(result.tree_full)}",
            f"plain: {human_bytes(result.tree_plain)}",
            f"{result.tree_plain / max(result.tree_full, 1):.2f}x",
        ],
        [
            "5. array codec",
            f"varint: {human_bytes(result.array_varint)}",
            f"zero-sup.: {human_bytes(result.array_zero_suppression)}",
            f"{result.array_zero_suppression / max(result.array_varint, 1):.2f}x",
        ],
        [
            "6. node order",
            f"clustered: {human_bytes(result.array_varint)}",
            f"DFS+links: {human_bytes(result.array_with_nodelinks)}",
            f"{result.array_with_nodelinks / max(result.array_varint, 1):.2f}x",
        ],
    ]
    chain_rows = [
        [str(length), human_bytes(size), f"{size / result.nodes:.2f} B/node"]
        for length, size in sorted(result.tree_by_chain_length.items())
    ]
    head = table(
        ["ablation", "chosen design", "alternative", "alt/chosen"],
        rows,
        title=(
            f"Design ablations ({result.dataset} proxy, "
            f"xi={result.min_support}, {result.nodes:,} nodes)"
        ),
    )
    chains = table(
        ["max chain length", "tree bytes", "avg"],
        chain_rows,
        title="chain-length sweep (paper fixes 15, §4.1)",
    )
    return f"{head}\n\n{chains}"


if __name__ == "__main__":
    print(format_report(run()))
