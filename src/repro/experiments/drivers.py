"""Metered end-to-end runs of every compared algorithm (§4.4-4.5).

A driver executes the real algorithm on real (prepared) transactions while
a :class:`repro.machine.Meter` tracks phases, structure bytes and operation
counts; the simulated machine then prices the run. Frequent itemsets are
*counted*, not materialized (``CountCollector``), since the sweeps reach
supports where the output itself is huge.

Phase access-pattern constants reflect each phase's dominant behaviour:
scans stream (1.0), prefix-tree construction chases pointers (0.2), the
CFP conversion writes subarrays sequentially (0.9, §3.5), mining mixes
sideward scans with backward pointer chases (0.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.afopt import AFOPT_NODE_BYTES, _mine as afopt_mine
from repro.algorithms.afopt import build_afopt_tree, subtree_size
from repro.algorithms.ctpro import CT_NODE_BYTES, CompressedTree
from repro.algorithms.fparray import FpArrayStructure, dataset_bytes
from repro.algorithms.fparray import _mine as fparray_mine
from repro.algorithms.fpgrowth_tiny import fpgrowth_tiny_ranks
from repro.algorithms.lcm import lcm_ranks
from repro.algorithms.nonordfp import NonordArrays
from repro.algorithms.nonordfp import _mine as nonordfp_mine
from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.parallel import mine_array_parallel
from repro.core.ternary import TernaryCfpTree
from repro.errors import ExperimentError
from repro.fptree.growth import CountCollector, mine_tree
from repro.fptree.tree import FPTree
from repro.machine import MachineSpec, Meter, SimulatedMachine, TimeEstimate

#: Sequential fractions per phase kind.
SEQ_SCAN = 1.0
SEQ_BUILD = 0.2
SEQ_CONVERT = 0.9
SEQ_MINE = 0.4

#: Baseline node size of the state-of-the-art FP-growth (§4.2).
FP_NODE_BYTES = 40


@dataclass
class RunResult:
    """Everything an experiment needs from one metered run."""

    algorithm: str
    min_support: int
    meter: Meter
    estimate: TimeEstimate
    itemset_count: int
    initial_tree_nodes: int
    peak_bytes: int
    avg_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.estimate.total_seconds

    def phase_seconds(self, *names: str) -> float:
        return sum(self.estimate.per_phase.get(name, 0.0) for name in names)


class _CountingResults:
    """List stand-in that counts appends (for list-appending miners)."""

    def __init__(self):
        self.count = 0

    def append(self, item) -> None:
        self.count += 1


def _scan_phase(meter: Meter, transactions, fimi_bytes: int) -> int:
    """The two database passes of every prefix-tree algorithm (§2.1)."""
    occurrences = sum(len(t) for t in transactions)
    meter.begin_phase("scan", SEQ_SCAN)
    meter.add_io(2 * fimi_bytes)
    meter.add_ops(2 * occurrences)
    return occurrences


def _drive_cfp_growth(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    tree = TernaryCfpTree.from_rank_transactions(transactions, n_ranks)
    meter.add_ops(occurrences, occurrences * 8)
    meter.on_build(tree)
    meter.begin_phase("convert", SEQ_CONVERT)
    array = convert(tree)
    meter.on_conversion(tree, array)
    del tree
    meter.begin_phase("mine", SEQ_MINE)
    collector = CountCollector()
    if jobs > 1:
        mine_array_parallel(array, min_support, collector, (), meter, jobs=jobs)
    else:
        mine_array(array, min_support, collector, (), meter)
    return collector.count


def _drive_fp_growth(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    meter.add_ops(occurrences, occurrences * FP_NODE_BYTES)
    meter.on_structure_built(tree.node_count * FP_NODE_BYTES)
    meter.begin_phase("mine", SEQ_MINE)
    collector = CountCollector()
    mine_tree(tree, min_support, collector, (), meter, FP_NODE_BYTES)
    return collector.count


def _drive_nonordfp(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    meter.add_ops(occurrences, occurrences * FP_NODE_BYTES)
    meter.on_structure_built(tree.node_count * FP_NODE_BYTES)
    nodes = tree.node_count
    meter.begin_phase("convert", SEQ_CONVERT)
    arrays = NonordArrays.from_tree(tree)
    meter.add_ops(nodes, arrays.memory_bytes)
    meter.on_structure_built(arrays.memory_bytes)
    meter.on_structure_freed(nodes * FP_NODE_BYTES)
    del tree
    meter.begin_phase("mine", SEQ_MINE)
    collector = CountCollector()
    nonordfp_mine(arrays, min_support, (), collector, meter)
    return collector.count


def _drive_fp_array(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    meter.on_structure_built(dataset_bytes(transactions))
    tree = FPTree.from_rank_transactions(transactions, n_ranks)
    meter.add_ops(occurrences, occurrences * FP_NODE_BYTES)
    meter.on_structure_built(tree.node_count * FP_NODE_BYTES)
    nodes = tree.node_count
    meter.begin_phase("convert", SEQ_CONVERT)
    structure = FpArrayStructure.from_tree(tree)
    meter.add_ops(nodes, structure.memory_bytes)
    meter.on_structure_built(structure.memory_bytes)
    meter.on_structure_freed(nodes * FP_NODE_BYTES)
    meter.on_structure_freed(dataset_bytes(transactions))
    del tree
    meter.begin_phase("mine", SEQ_MINE)
    collector = CountCollector()
    fparray_mine(structure, min_support, (), collector, meter)
    return collector.count


def _drive_fp_growth_tiny(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    # fpgrowth_tiny_ranks builds and mines in one sweep over the big tree;
    # charge the build before it runs so the phases split correctly.
    meter.begin_phase("build", SEQ_BUILD)
    meter.add_ops(occurrences, occurrences * FP_NODE_BYTES)
    meter.begin_phase("mine", SEQ_MINE)
    results = fpgrowth_tiny_ranks(transactions, n_ranks, min_support, meter)
    return len(results)


def _drive_lcm(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    meter.add_ops(occurrences, occurrences * 4)
    meter.begin_phase("mine", SEQ_MINE)
    results = lcm_ranks(transactions, n_ranks, min_support, meter)
    return len(results)


def _drive_afopt(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    root = build_afopt_tree(transactions)
    meter.add_ops(occurrences, occurrences * AFOPT_NODE_BYTES)
    meter.on_structure_built(subtree_size(root.children) * AFOPT_NODE_BYTES)
    meter.begin_phase("mine", SEQ_MINE)
    results = _CountingResults()
    afopt_mine(root.children, (), min_support, results, meter)
    return results.count


def _drive_ct_pro(meter, transactions, n_ranks, min_support, occurrences, jobs=1):
    meter.begin_phase("build", SEQ_BUILD)
    compressed = CompressedTree(FPTree.from_rank_transactions(transactions, n_ranks))
    meter.add_ops(occurrences + compressed.total_nodes, occurrences * CT_NODE_BYTES)
    meter.on_structure_built(compressed.memory_bytes)
    meter.begin_phase("mine", SEQ_MINE)
    collector = CountCollector()
    mine_tree(compressed.tree, min_support, collector, (), meter, CT_NODE_BYTES)
    return collector.count


_DRIVERS = {
    "cfp-growth": _drive_cfp_growth,
    "fp-growth": _drive_fp_growth,
    "nonordfp": _drive_nonordfp,
    "fp-array": _drive_fp_array,
    "fp-growth-tiny": _drive_fp_growth_tiny,
    "lcm": _drive_lcm,
    "afopt": _drive_afopt,
    "ct-pro": _drive_ct_pro,
}


def initial_tree_size(transactions: list[list[int]], n_ranks: int) -> int:
    """Node count of the initial FP-tree — the sweeps' shared x-axis."""
    return FPTree.from_rank_transactions(transactions, n_ranks).node_count


def run_metered(
    algorithm: str,
    transactions: list[list[int]],
    n_ranks: int,
    min_support: int,
    fimi_bytes: int,
    spec: MachineSpec | None = None,
    tree_nodes: int | None = None,
    jobs: int = 1,
) -> RunResult:
    """Execute one algorithm with full instrumentation and price the run.

    ``tree_nodes`` (the initial FP-tree size, shared across algorithms at a
    sweep point) can be precomputed with :func:`initial_tree_size` to avoid
    rebuilding it per algorithm.

    ``jobs`` (default 1, serial — which keeps every paper-figure experiment
    comparable) fans the cfp-growth mine phase out to that many workers;
    per-worker meters are merged back into the run's meter, so the record
    stays complete. Other algorithms ignore it.
    """
    try:
        driver = _DRIVERS[algorithm]
    except KeyError:
        known = ", ".join(sorted(_DRIVERS))
        raise ExperimentError(
            f"no metered driver for {algorithm!r}; known: {known}"
        ) from None
    if tree_nodes is None:
        tree_nodes = initial_tree_size(transactions, n_ranks)
    meter = Meter()
    occurrences = _scan_phase(meter, transactions, fimi_bytes)
    itemsets = driver(meter, transactions, n_ranks, min_support, occurrences, jobs=jobs)
    estimate = SimulatedMachine(spec).estimate(meter)
    return RunResult(
        algorithm=algorithm,
        min_support=min_support,
        meter=meter,
        estimate=estimate,
        itemset_count=itemsets,
        initial_tree_nodes=tree_nodes,
        peak_bytes=meter.peak_bytes,
        avg_bytes=meter.avg_bytes,
    )
