"""Table 3: summary of the synthetic datasets (paper §4.1).

The paper's Quest1 (25M transactions, avg. 100 items, 20k distinct,
13 GB FIMI) and Quest2 (50M, twice the transactions) are reproduced at
scale; the table reports the same columns for the scaled instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.stats import DatasetStats, dataset_stats
from repro.experiments import workloads
from repro.experiments.report import human_bytes, table


@dataclass
class Table3Result:
    stats: list[DatasetStats]


def run(names: tuple[str, ...] = ("quest1", "quest2")) -> Table3Result:
    return Table3Result(
        stats=[dataset_stats(name, workloads.dataset(name)) for name in names]
    )


def format_report(result: Table3Result) -> str:
    rows = [
        [
            s.name,
            f"{s.n_transactions:,}",
            f"{s.avg_item_cardinality:.1f}",
            f"{s.distinct_items:,}",
            human_bytes(s.fimi_bytes),
        ]
        for s in result.stats
    ]
    body = table(
        ["dataset", "transactions", "avg. itemcard.", "distinct items", "size"],
        rows,
        title="Table 3 — synthetic dataset summary (scaled Quest instances)",
    )
    ratio = ""
    if len(result.stats) == 2 and result.stats[0].n_transactions:
        factor = result.stats[1].n_transactions / result.stats[0].n_transactions
        ratio = f"\nQuest2 / Quest1 transactions = {factor:.1f}x (paper: 2x)"
    return body + ratio


if __name__ == "__main__":
    print(format_report(run()))
