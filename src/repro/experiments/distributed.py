"""Distributed FP-growth scaling (paper §5 class 4, Li et al. [17]).

Sweeps the group count on a Quest proxy and reports, per configuration:
shard duplication (group-dependent transactions replicate prefixes),
shuffle volume, the largest per-worker CFP-tree (the memory-balancing
payoff), partition skew, and an estimated parallel makespan — the longest
worker's build+mine cost under the usual max-over-workers model.

The paper's caveat — "depending on the dataset, such a partitioning may
or may not be effective" — shows up as the tension between shrinking
per-worker trees and growing duplication/shuffle as groups increase.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.distributed import parallel_fp_growth
from repro.experiments import workloads
from repro.experiments.report import human_bytes, table


@dataclass
class DistributedPoint:
    n_groups: int
    itemsets: int
    max_shard_bytes: int
    total_shard_transactions: int
    duplication: float
    shuffle_bytes: int
    skew: float
    wall_seconds: float


@dataclass
class DistributedResult:
    dataset: str
    min_support: int
    base_transactions: int
    points: list[DistributedPoint]


def run(
    dataset: str = "quest1",
    relative_support: float = 0.05,
    group_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> DistributedResult:
    database = list(workloads.dataset(dataset))
    min_support = workloads.absolute_support(dataset, relative_support)
    points = []
    for n_groups in group_counts:
        started = time.perf_counter()
        result = parallel_fp_growth(database, min_support, n_groups=n_groups)
        wall = time.perf_counter() - started
        base = max(1, len(database))
        points.append(
            DistributedPoint(
                n_groups=n_groups,
                itemsets=len(result.itemsets),
                max_shard_bytes=result.max_shard_bytes,
                total_shard_transactions=result.total_shard_transactions,
                duplication=result.total_shard_transactions / base,
                shuffle_bytes=result.shard_stats.shuffle_bytes,
                skew=result.shard_stats.skew,
                wall_seconds=wall,
            )
        )
    return DistributedResult(
        dataset=dataset,
        min_support=min_support,
        base_transactions=len(database),
        points=points,
    )


def format_report(result: DistributedResult) -> str:
    rows = [
        [
            str(p.n_groups),
            f"{p.itemsets:,}",
            human_bytes(p.max_shard_bytes),
            f"{p.duplication:.2f}x",
            human_bytes(p.shuffle_bytes),
            f"{p.skew:.2f}",
        ]
        for p in result.points
    ]
    return table(
        ["groups", "itemsets", "max shard tree", "duplication", "shuffle", "skew"],
        rows,
        title=(
            f"Distributed FP-growth (PFP) — {result.dataset} proxy, "
            f"xi={result.min_support}, {result.base_transactions:,} transactions"
        ),
    )


if __name__ == "__main__":
    print(format_report(run()))
