"""Figure 6: average node size of the compressed structures (paper §4.2).

For every dataset and support level the paper reports bytes per (FP-tree)
node for (a) the ternary CFP-tree and (b) the CFP-array, against the
40-byte state-of-the-art baseline. Expected regime: ~1.5-6 B/node for the
tree (7x-25x reduction, best on webdocs thanks to chains) and < 5 B/node
for the array (8x-10x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.experiments import workloads
from repro.experiments.report import table
from repro.fptree.ternary import PAPER_BASELINE_NODE_SIZE


@dataclass
class Fig6Cell:
    dataset: str
    level: str
    min_support: int
    nodes: int
    tree_bytes_per_node: float
    array_bytes_per_node: float

    @property
    def tree_reduction(self) -> float:
        if self.tree_bytes_per_node == 0:
            return 0.0
        return PAPER_BASELINE_NODE_SIZE / self.tree_bytes_per_node

    @property
    def array_reduction(self) -> float:
        if self.array_bytes_per_node == 0:
            return 0.0
        return PAPER_BASELINE_NODE_SIZE / self.array_bytes_per_node


@dataclass
class Fig6Result:
    cells: list[Fig6Cell]

    def cell(self, dataset: str, level: str) -> Fig6Cell:
        for cell in self.cells:
            if cell.dataset == dataset and cell.level == level:
                return cell
        raise KeyError((dataset, level))


def run(
    datasets: tuple[str, ...] = tuple(workloads.FIG6_DATASET_ARGS),
    levels: dict[str, float] | None = None,
) -> Fig6Result:
    levels = levels if levels is not None else workloads.FIG6_SUPPORT_LEVELS
    cells = []
    for name in datasets:
        for level, relative in levels.items():
            min_support = workloads.absolute_support(name, relative)
            n_ranks, transactions = workloads.prepared(name, min_support)
            tree = TernaryCfpTree.from_rank_transactions(
                list(transactions), n_ranks
            )
            array = convert(tree)
            cells.append(
                Fig6Cell(
                    dataset=name,
                    level=level,
                    min_support=min_support,
                    nodes=tree.node_count,
                    tree_bytes_per_node=tree.average_node_size(),
                    array_bytes_per_node=array.average_node_size(),
                )
            )
    return Fig6Result(cells)


def format_report(result: Fig6Result) -> str:
    rows_a = []
    rows_b = []
    for cell in result.cells:
        base = [cell.dataset, cell.level, str(cell.min_support), f"{cell.nodes:,}"]
        rows_a.append(
            base
            + [f"{cell.tree_bytes_per_node:.2f}", f"{cell.tree_reduction:.1f}x"]
        )
        rows_b.append(
            base
            + [f"{cell.array_bytes_per_node:.2f}", f"{cell.array_reduction:.1f}x"]
        )
    part_a = table(
        ["dataset", "xi", "abs", "nodes", "B/node", "vs 40B"],
        rows_a,
        title="Figure 6(a) — ternary CFP-tree average node size "
        "(paper: 1.5-6 B, 7x-25x)",
    )
    part_b = table(
        ["dataset", "xi", "abs", "nodes", "B/node", "vs 40B"],
        rows_b,
        title="Figure 6(b) — CFP-array average node size (paper: <5 B, 8x-10x)",
    )
    return f"{part_a}\n\n{part_b}"


if __name__ == "__main__":
    print(format_report(run()))
