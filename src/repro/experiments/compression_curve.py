"""Compression-ratio curves vs minimum support (extends Figure 6).

Figure 6 samples three support levels per dataset; this experiment traces
the full curve for one dataset: as support falls, the tree grows, the
ternary CFP-tree's chain/branching mix shifts, and the average node size
moves within the paper's 1.5-6 B band. Reported per support level:

* nodes, average node size of the ternary CFP-tree and the CFP-array,
* compression factors against the 40 B/node baseline,
* the structural census (standard/chain/embedded) explaining the size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.experiments import workloads
from repro.experiments.plot import ascii_chart
from repro.experiments.report import table
from repro.fptree.ternary import PAPER_BASELINE_NODE_SIZE


@dataclass
class CurvePoint:
    relative_support: float
    min_support: int
    nodes: int
    tree_bytes_per_node: float
    array_bytes_per_node: float
    standard_nodes: int
    chain_entries: int
    embedded_leaves: int


@dataclass
class CurveResult:
    dataset: str
    points: list[CurvePoint]


def run(
    dataset: str = "webdocs",
    supports: tuple[float, ...] = (0.20, 0.10, 0.05, 0.02, 0.01, 0.005, 0.002),
) -> CurveResult:
    points = []
    for relative in supports:
        min_support = workloads.absolute_support(dataset, relative)
        n_ranks, transactions = workloads.prepared(dataset, min_support)
        tree = TernaryCfpTree.from_rank_transactions(list(transactions), n_ranks)
        if tree.node_count == 0:
            continue
        array = convert(tree)
        census = tree.physical_stats()
        points.append(
            CurvePoint(
                relative_support=relative,
                min_support=min_support,
                nodes=tree.node_count,
                tree_bytes_per_node=tree.average_node_size(),
                array_bytes_per_node=array.average_node_size(),
                standard_nodes=census.standard_nodes,
                chain_entries=census.chain_entries,
                embedded_leaves=census.embedded_leaves,
            )
        )
    return CurveResult(dataset, points)


def format_report(result: CurveResult) -> str:
    rows = []
    for p in result.points:
        rows.append(
            [
                f"{p.relative_support * 100:.1f}%",
                f"{p.nodes:,}",
                f"{p.tree_bytes_per_node:.2f}",
                f"{PAPER_BASELINE_NODE_SIZE / p.tree_bytes_per_node:.1f}x",
                f"{p.array_bytes_per_node:.2f}",
                f"{p.standard_nodes:,}",
                f"{p.chain_entries:,}",
                f"{p.embedded_leaves:,}",
            ]
        )
    body = table(
        ["xi", "nodes", "tree B/n", "vs 40B", "array B/n", "standard", "chained", "embedded"],
        rows,
        title=f"Compression curve — {result.dataset} proxy",
    )
    chart = ascii_chart(
        {
            "cfp-tree": [
                (p.nodes, p.tree_bytes_per_node) for p in result.points
            ],
            "cfp-array": [
                (p.nodes, p.array_bytes_per_node) for p in result.points
            ],
        },
        title="bytes per node vs tree size (log-log)",
        x_label="tree nodes",
        y_label="B/node",
        height=12,
    )
    return f"{body}\n\n{chart}"


if __name__ == "__main__":
    print(format_report(run()))
