"""Two-phase streaming build with checkpointing.

FP-growth's build is inherently two-pass (§2.1): pass one counts item
supports, pass two inserts rank-sorted transactions. For data that arrives
in batches (or files larger than memory), this module splits the passes
into explicit phases that can each be suspended to disk:

* :class:`CountingPhase` accumulates item supports across batches and is
  finalized into an :class:`repro.util.items.ItemTable`;
* :class:`StreamingBuilder` consumes batches into a ternary CFP-tree,
  checkpointing via :mod:`repro.storage` between batches, and hands the
  finished tree to the normal convert/mine pipeline.

The result is always byte-identical to a one-shot build over the
concatenated batches.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Hashable, Iterable

from repro import obs
from repro.core.cfp_growth import mine_array
from repro.core.conversion import convert
from repro.core.ternary import TernaryCfpTree
from repro.errors import DatasetError, ReproError
from repro.fptree.growth import ListCollector
from repro.storage import load_cfp_tree_checkpoint, save_cfp_tree
from repro.util.items import ItemTable, Transaction


class CountingPhase:
    """Pass 1: accumulate item supports over arbitrarily many batches."""

    def __init__(self):
        self._counts: Counter = Counter()
        self._transactions = 0

    def add_batch(self, batch: Iterable[Transaction]) -> None:
        for transaction in batch:
            self._counts.update(set(transaction))
            self._transactions += 1

    @property
    def transactions_seen(self) -> int:
        return self._transactions

    def finish(self, min_support: int) -> ItemTable:
        """Freeze the counts into the rank table for pass 2."""
        if min_support < 1:
            raise DatasetError(f"min_support must be >= 1, got {min_support}")
        frequent = {
            item: support
            for item, support in self._counts.items()
            if support >= min_support
        }
        return ItemTable(min_support=min_support, supports=frequent)


class StreamingBuilder:
    """Pass 2: insert batches into a CFP-tree, checkpointable at any time."""

    def __init__(self, table: ItemTable, **tree_options):
        self.table = table
        self.tree = TernaryCfpTree(len(table), **tree_options)
        self.batches_consumed = 0

    def add_batch(self, batch: Iterable[Transaction]) -> int:
        """Insert one batch; returns transactions actually inserted.

        The batch goes through :meth:`TernaryCfpTree.insert_batch`, which
        sorts it lexicographically to enable the shared-prefix fast path —
        the logical tree (and any checkpoint of it) is identical to
        per-transaction inserts in arrival order.
        """
        rank_of = self.table.rank_of
        with obs.maybe_span("stream_batch", batch=self.batches_consumed) as span:
            ranked = [
                sorted({rank_of[item] for item in transaction if item in rank_of})
                for transaction in batch
            ]
            inserted = self.tree.insert_batch(ranked)
            self.batches_consumed += 1
            span.set("inserted", inserted)
            span.set("tree_bytes", self.tree.memory_bytes)
        return inserted

    def checkpoint(self, path: str | os.PathLike) -> int:
        """Persist the build state; returns bytes written.

        Alongside the tree, the checkpoint records the batch cursor and
        the ItemTable's content fingerprint so :meth:`resume` can verify
        it was handed the *original* table, not merely one of the same
        size.
        """
        return save_cfp_tree(
            self.tree,
            path,
            extra_meta={
                "batches_consumed": self.batches_consumed,
                "table_fingerprint": self.table.fingerprint(),
            },
        )

    @classmethod
    def resume(cls, table: ItemTable, path: str | os.PathLike) -> "StreamingBuilder":
        """Continue a checkpointed build (the table must be the original).

        The checkpoint's table fingerprint is checked against ``table``;
        a mismatch raises :class:`DatasetError`. (Validating only the
        rank *count*, as this method once did, let a different table of
        the same length silently remap every rank — yielding wrong
        itemsets with no error.) ``batches_consumed`` is restored from
        the checkpoint rather than reset to zero, so the batch cursor
        survives a suspend/resume cycle.
        """
        builder = cls.__new__(cls)
        builder.table = table
        builder.tree, extra = load_cfp_tree_checkpoint(path)
        if builder.tree.n_ranks != len(table):
            raise DatasetError(
                f"checkpoint has {builder.tree.n_ranks} ranks, table has "
                f"{len(table)}"
            )
        recorded = extra.get("table_fingerprint")
        if recorded is not None and recorded != table.fingerprint():
            raise DatasetError(
                "checkpoint was built with a different ItemTable "
                f"(fingerprint {recorded[:12]}… != {table.fingerprint()[:12]}…); "
                "resuming would silently yield wrong itemsets"
            )
        builder.batches_consumed = int(extra.get("batches_consumed", 0))
        return builder

    @classmethod
    def resume_or_restart(
        cls, table: ItemTable, path: str | os.PathLike
    ) -> tuple["StreamingBuilder", bool]:
        """Resume from ``path`` if possible, else start a fresh build.

        Returns ``(builder, resumed)``. This is the crash-recovery
        entrypoint: a checkpoint that is missing (the build died before
        its first checkpoint) or unreadable (torn write — truncated
        file, bad page checksum, mangled metadata) is *discarded* and
        the build restarts from batch zero, which is always correct
        because the caller replays batches from ``batches_consumed``.
        A fingerprint/shape mismatch (a checkpoint from a different
        table) is also treated as unusable rather than fatal — counted
        separately, since it usually means a stale file, not a crash.
        Discards are counted in ``streaming.checkpoint_discarded``.
        """
        try:
            return cls.resume(table, path), True
        except FileNotFoundError:
            return cls(table), False
        except ReproError:
            # Torn or foreign checkpoint: recovery means starting over,
            # not crashing the resumed build a second time.
            obs.metrics.add("streaming.checkpoint_discarded")
            return cls(table), False

    def finish(self) -> list[tuple[tuple[Hashable, ...], int]]:
        """Convert and mine; the builder must not be reused afterwards."""
        array = convert(self.tree)
        collector = ListCollector()
        mine_array(array, self.table.min_support, collector)
        return [
            (self.table.ranks_to_items(ranks), support)
            for ranks, support in collector.itemsets
        ]


def mine_in_batches(
    batches: list[list[Transaction]], min_support: int
) -> list[tuple[tuple[Hashable, ...], int]]:
    """Convenience: the full two-phase pipeline over a batch list."""
    counting = CountingPhase()
    for batch in batches:
        counting.add_batch(batch)
    table = counting.finish(min_support)
    builder = StreamingBuilder(table)
    for batch in batches:
        builder.add_batch(batch)
    return builder.finish()


def mine_in_batches_resilient(
    batches: list[list[Transaction]],
    min_support: int,
    checkpoint_path: str | os.PathLike,
) -> list[tuple[tuple[Hashable, ...], int]]:
    """The two-phase pipeline, checkpointed after every batch.

    Identical output to :func:`mine_in_batches`, but the pass-2 build
    survives a crash: each consumed batch is followed by a checkpoint to
    ``checkpoint_path``, and a re-invocation resumes from the last
    *loadable* checkpoint's batch cursor — replaying only the batches
    after it. A checkpoint torn by the crash itself is detected
    (checksums/geometry) and discarded, restarting from batch zero;
    either way the result is byte-identical to an uninterrupted run,
    because the CFP-tree is insertion-order independent and batches are
    replayed from the cursor in their original order.
    """
    counting = CountingPhase()
    for batch in batches:
        counting.add_batch(batch)
    table = counting.finish(min_support)
    builder, __ = StreamingBuilder.resume_or_restart(table, checkpoint_path)
    if builder.batches_consumed > len(batches):
        raise DatasetError(
            f"checkpoint consumed {builder.batches_consumed} batches but only "
            f"{len(batches)} were provided; wrong checkpoint for this stream?"
        )
    for batch in batches[builder.batches_consumed :]:
        builder.add_batch(batch)
        builder.checkpoint(checkpoint_path)
    return builder.finish()
