"""Generation-numbered serving snapshots with an atomic manifest flip.

The incremental miner produces a new CFP-array per window advance; the
serving layer must pick each one up **without dropping a query**. The
protocol (docs/streaming.md) is the classic immutable-generations one:

* every published window becomes a fresh, never-rewritten pair
  ``gen-NNNNNN.cfpa`` + ``gen-NNNNNN.cfpa.items.json`` in the snapshot
  directory;
* a single ``MANIFEST.json`` names the current generation, and is
  replaced atomically (private tmp file, fsync, ``os.replace``,
  directory fsync) — a reader sees the old manifest or the new one,
  never a torn one;
* superseded generations are retired (unlinked) only once no in-process
  reader holds a reference. Cross-process readers are safe regardless:
  they hold an open file handle, and POSIX keeps the data alive until
  the last handle closes — the unlink only removes the name.

The ``snapshot.flip`` fault-injection site fires between writing the
manifest tmp file and the ``os.replace`` that installs it: ``kill``
models a crash mid-flip (the old manifest must survive intact), and
``truncate`` tears the *incoming* manifest, which followers must reject
and ride out on their current generation
(:meth:`repro.serving.follow.FollowingStore.refresh`).

Counters: ``snapshot.published``, ``snapshot.retired``.
"""

from __future__ import annotations

import json
import os
import threading
from typing import TYPE_CHECKING

from repro import faultinject, obs
from repro.errors import StreamingError
from repro.storage import save_cfp_array, save_cfp_array_partitioned
from repro.storage.pagefile import fsync_dir

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cfp_array import CfpArray
    from repro.storage.placement import PlacementPolicy
    from repro.util.items import ItemTable

#: The manifest naming the current generation, atomically replaced.
MANIFEST_NAME = "MANIFEST.json"

#: Array file name per generation (sidecar hangs off it as usual).
_GEN_TEMPLATE = "gen-{:06d}.cfpa"


class SnapshotError(StreamingError):
    """A snapshot directory or manifest is missing or malformed."""


class SnapshotManager:
    """Publish and track CFP-array generations in one directory.

    One manager owns the *writer* side (``publish``); any number of
    readers — in this process via :meth:`acquire`/:meth:`release`, or in
    other processes via :meth:`current` and open file handles — follow
    the manifest. In-process references pin a generation against
    retirement; the writer only ever unlinks generations older than the
    current one with a zero reference count.
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._refs: dict[int, int] = {}

    # -- paths ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def array_path(self, generation: int) -> str:
        """Array file path of ``generation`` (existing or to-be-written)."""
        return os.path.join(self.directory, _GEN_TEMPLATE.format(generation))

    # -- reader side ----------------------------------------------------

    def current(self) -> tuple[int, str] | None:
        """The manifest's ``(generation, array_path)``; None before any flip.

        A manifest that exists but cannot be parsed (torn by an injected
        ``snapshot.flip`` truncation, or by a non-atomic writer) raises
        :class:`SnapshotError` — followers catch it and keep serving
        their pinned generation.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"{self.manifest_path}: manifest is not valid JSON ({exc}); "
                "torn flip?"
            ) from None
        generation = manifest.get("generation")
        array = manifest.get("array")
        if not isinstance(generation, int) or not isinstance(array, str):
            raise SnapshotError(
                f"{self.manifest_path}: manifest must carry an integer "
                "'generation' and an 'array' file name"
            )
        return generation, os.path.join(self.directory, array)

    def acquire(self) -> tuple[int, str]:
        """Pin the current generation; returns ``(generation, array_path)``.

        Must be paired with :meth:`release` — a pinned generation is
        never retired, which is what lets a reader open the array and
        sidecar without racing the writer's cleanup.
        """
        state = self.current()
        if state is None:
            raise SnapshotError(
                f"{self.directory}: no snapshot published yet (no manifest)"
            )
        generation, path = state
        with self._lock:
            self._refs[generation] = self._refs.get(generation, 0) + 1
        return generation, path

    def release(self, generation: int) -> None:
        """Unpin ``generation``; retires it if superseded and unreferenced."""
        with self._lock:
            count = self._refs.get(generation, 0) - 1
            if count <= 0:
                self._refs.pop(generation, None)
            else:
                self._refs[generation] = count
        self._retire_stale()

    # -- writer side ----------------------------------------------------

    def publish(
        self,
        array: "CfpArray",
        table: "ItemTable",
        n_transactions: int,
        *,
        partition_bytes: int | None = None,
        placement: "PlacementPolicy | None" = None,
    ) -> int:
        """Write one generation and flip the manifest to it atomically.

        The array (partitioned v3 when ``partition_bytes`` is given, else
        monolithic v2) and its item sidecar land fully — on freshly
        numbered, never-reused names — before the manifest mentions them,
        so a crash at any point leaves the previous generation intact and
        openable. Returns the new generation number.
        """
        from repro.serving.store import write_sidecar

        state = self.current()
        generation = (state[0] if state is not None else 0) + 1
        path = self.array_path(generation)
        with obs.maybe_span("snapshot_publish", generation=generation) as span:
            if partition_bytes is not None:
                size = save_cfp_array_partitioned(
                    array, path, partition_bytes=partition_bytes, placement=placement
                )
            else:
                size = save_cfp_array(array, path)
            write_sidecar(path, table, n_transactions)
            self._flip(generation, os.path.basename(path))
            span.set("bytes", size)
        obs.metrics.add("snapshot.published")
        self._retire_stale()
        return generation

    def _flip(self, generation: int, array_name: str) -> None:
        """Install the manifest for ``generation`` via tmp + ``os.replace``."""
        final = self.manifest_path
        tmp = f"{final}.tmp.{os.getpid()}"
        payload = json.dumps({"generation": generation, "array": array_name})
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        try:
            try:
                os.write(fd, payload.encode("utf-8") + b"\n")
                os.fsync(fd)
            finally:
                os.close(fd)
            faultinject.fire("snapshot.flip", path=tmp, generation=generation)
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        fsync_dir(self.directory)

    def _retire_stale(self) -> None:
        """Unlink superseded, unreferenced generations (best-effort).

        Best-effort includes the manifest itself: a torn manifest means
        we cannot know the current generation, so retire nothing —
        readers riding out the tear must keep their files.
        """
        try:
            state = self.current()
        except SnapshotError:
            return
        if state is None:
            return
        current_generation = state[0]
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        retired = 0
        with self._lock:
            pinned = set(self._refs)
        for name in names:
            if not (name.startswith("gen-") and name.endswith(".cfpa")):
                continue
            try:
                generation = int(name[len("gen-") : -len(".cfpa")])
            except ValueError:
                continue
            if generation >= current_generation or generation in pinned:
                continue
            for victim in (
                os.path.join(self.directory, name),
                os.path.join(self.directory, name) + ".items.json",
            ):
                try:
                    os.unlink(victim)
                except FileNotFoundError:
                    pass
                except OSError:
                    continue
            retired += 1
        if retired:
            obs.metrics.add("snapshot.retired", retired)


__all__ = ["MANIFEST_NAME", "SnapshotError", "SnapshotManager"]
