"""Incremental mining: delta CFP-trees merged into a persistent forest.

The batch builder (:mod:`repro.streaming.builder`) grows one big ternary
CFP-tree and converts it once at the end. That shape cannot *forget*:
a sliding window over a stream would need per-node reference counts the
pointer tree does not keep. This module keeps the window state in a
different representation — a **flat forest**: one preorder array triple
``(ranks, parents, pcounts)`` per level-1 subtree, exactly the shape
:func:`repro.core.conversion.flatten_subtrees` produces, except the
counts are raw *pcounts* (transactions ending at the node), not the
cumulative counts the CFP-array encodes. Raw pcounts are the reason the
forest can evict: they subtract cleanly per batch, while cumulative
counts would entangle every ancestor.

The update cycle per batch:

1. build a small *delta* CFP-tree from just that batch via
   :meth:`TernaryCfpTree.insert_batch` (the sorted fast path);
2. flatten it into a :class:`DeltaForest` (:meth:`DeltaForest.from_tree`);
3. :func:`merge_forest` it into the window forest with ``sign=+1``
   (append) — an ordered two-pointer preorder merge per leading rank;
4. when the window slides, replay the oldest batch's delta with
   ``sign=-1`` (evict) and drop the resulting zero-count *tombstone*
   subtrees with :func:`compact_forest`.

**The identity tripwire.** After compaction the forest is structurally
identical to the flatten of a from-scratch CFP-tree over the surviving
window (under the same frozen :class:`~repro.util.items.ItemTable`): a
node survives iff some window transaction's ranked prefix passes through
it, children stay in ascending rank order, and pcounts match exactly.
:func:`forest_to_array` therefore replays the serial conversion —
cumulative fold, :func:`~repro.core.conversion.splice_subtree` in
ascending leading-rank order, :func:`~repro.core.conversion.assemble` —
and produces a CFP-array **byte-identical** to
``convert(from_rank_transactions(window))``. CI's incremental-smoke job
and the hypothesis property in tests/test_incremental.py gate on that
equality; any drift in the merge kernel trips it immediately.

The ``delta.merge`` fault-injection site fires at the top of every
:func:`merge_forest` call; the merged forest is computed fully before it
is committed, so an injected ``raise`` (or any merge error) leaves the
window state untouched and the merge can simply be retried.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro import faultinject, obs
from repro.core.cfp_array import CfpArray
from repro.core.cfp_growth import mine_array
from repro.core.conversion import Layout, assemble, splice_subtree
from repro.core.ternary import TernaryCfpTree
from repro.errors import StreamingError
from repro.fptree.growth import ListCollector
from repro.util.items import ItemTable, Transaction

#: One flat subtree: preorder ``(ranks, parents, pcounts)``; ``parents[i]``
#: indexes the arrays (-1 for the subtree root), pcounts are raw.
FlatTree = tuple[list[int], list[int], list[int]]


class DeltaForest:
    """A CFP-forest as flat per-leading-rank preorder arrays.

    ``trees`` maps each leading rank to one :data:`FlatTree`. Invariants
    (established by :meth:`from_tree`, preserved by :func:`merge_forest`
    and :func:`compact_forest`): nodes are in DFS preorder, siblings
    ascend by rank, parents precede children, and every pcount is >= 0.
    """

    __slots__ = ("n_ranks", "trees")

    def __init__(
        self, n_ranks: int, trees: dict[int, FlatTree] | None = None
    ) -> None:
        self.n_ranks = n_ranks
        self.trees: dict[int, FlatTree] = trees if trees is not None else {}

    @classmethod
    def from_tree(cls, tree: TernaryCfpTree) -> "DeltaForest":
        """Flatten a ternary CFP-tree, keeping pcounts raw.

        Same event walk as :func:`~repro.core.conversion.flatten_subtrees`
        minus the leave-event accumulation — the forest must stay
        subtractable, so the cumulative fold is deferred to
        :func:`forest_to_array`.
        """
        forest = cls(tree.n_ranks)
        ranks: list[int] = []
        parents: list[int] = []
        pcounts: list[int] = []
        stack: list[int] = []
        for kind, rank, pcount in tree.iter_events():
            if kind == "enter":
                if not stack and ranks:
                    forest.trees[ranks[0]] = (ranks, parents, pcounts)
                    ranks, parents, pcounts = [], [], []
                parents.append(stack[-1] if stack else -1)
                stack.append(len(ranks))
                ranks.append(rank)
                pcounts.append(pcount)
            else:
                stack.pop()
        if ranks:
            forest.trees[ranks[0]] = (ranks, parents, pcounts)
        return forest

    @property
    def node_count(self) -> int:
        return sum(len(ranks) for ranks, __, __ in self.trees.values())

    @property
    def transaction_count(self) -> int:
        """Transactions represented (sum of all pcounts)."""
        return sum(sum(pcounts) for __, __, pcounts in self.trees.values())


def _child_lists(parents: list[int]) -> list[list[int]]:
    """Per-node child index lists; preorder keeps them rank-ascending."""
    children: list[list[int]] = [[] for __ in parents]
    for index, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(index)
    return children


def _merge_children(
    a_ranks: list[int],
    a_kids: list[int],
    b_ranks: list[int],
    b_kids: list[int],
) -> list[tuple[int | None, int | None]]:
    """Two-pointer merge of two rank-ascending child lists.

    Yields ``(a_index, b_index)`` pairs in ascending rank order; one side
    is ``None`` where only the other tree has that child.
    """
    merged: list[tuple[int | None, int | None]] = []
    i = j = 0
    while i < len(a_kids) and j < len(b_kids):
        rank_a = a_ranks[a_kids[i]]
        rank_b = b_ranks[b_kids[j]]
        if rank_a == rank_b:
            merged.append((a_kids[i], b_kids[j]))
            i += 1
            j += 1
        elif rank_a < rank_b:
            merged.append((a_kids[i], None))
            i += 1
        else:
            merged.append((None, b_kids[j]))
            j += 1
    merged.extend((a_kids[k], None) for k in range(i, len(a_kids)))
    merged.extend((None, b_kids[k]) for k in range(j, len(b_kids)))
    return merged


def _subtree_sizes(parents: list[int]) -> list[int]:
    """Nodes in each node's subtree (preorder slice lengths)."""
    sizes = [1] * len(parents)
    for index in range(len(parents) - 1, 0, -1):
        sizes[parents[index]] += sizes[index]
    return sizes


def _copy_subtree(
    src: FlatTree,
    sizes: list[int],
    root: int,
    out_parent: int,
    out_ranks: list[int],
    out_parents: list[int],
    out_pcounts: list[int],
) -> None:
    """Append one whole subtree of ``src`` as preorder slice copies.

    A subtree is a contiguous preorder slice, so untouched regions move
    as bulk list operations instead of a per-node stack walk — the
    property that keeps a delta merge's cost proportional to the *delta*
    (plus the paths it touches), not to the whole window forest.
    """
    ranks, parents, pcounts = src
    end = root + sizes[root]
    offset = len(out_ranks) - root
    out_ranks.extend(ranks[root:end])
    out_parents.append(out_parent)
    out_parents.extend(p + offset for p in parents[root + 1 : end])
    out_pcounts.extend(pcounts[root:end])


def _merge_flat(a: FlatTree, b: FlatTree, sign: int) -> FlatTree:
    """Merge two flat subtrees sharing a leading rank (pure; no mutation).

    Iterative preorder walk over the union: matched nodes sum pcounts
    (``a + sign * b``) and merge their child lists two-pointer style;
    one-sided subtrees bulk-copy as preorder slices (or, under
    ``sign=-1``, a delta-only subtree is rejected — evicting structure
    the window never contained means the caller replayed the wrong
    batch). Children are pushed reversed so the stack pops them in
    ascending rank order, preserving preorder.
    """
    a_ranks, a_parents, a_pcounts = a
    b_ranks, b_parents, b_pcounts = b
    a_children = _child_lists(a_parents)
    b_children = _child_lists(b_parents)
    a_sizes = _subtree_sizes(a_parents)
    b_sizes = _subtree_sizes(b_parents)
    out_ranks: list[int] = []
    out_parents: list[int] = []
    out_pcounts: list[int] = []
    stack: list[tuple[int | None, int | None, int]] = [(0, 0, -1)]
    while stack:
        ai, bi, parent = stack.pop()
        if bi is None:
            assert ai is not None
            _copy_subtree(
                a, a_sizes, ai, parent, out_ranks, out_parents, out_pcounts
            )
            continue
        if ai is None:
            if sign < 0:
                raise StreamingError(
                    f"eviction delta contains rank {b_ranks[bi]} under a path "
                    "the window forest never held; wrong batch replayed?"
                )
            _copy_subtree(
                b, b_sizes, bi, parent, out_ranks, out_parents, out_pcounts
            )
            continue
        pcount = a_pcounts[ai] + sign * b_pcounts[bi]
        if pcount < 0:
            raise StreamingError(
                f"pcount of rank {a_ranks[ai]} would go negative ({pcount}); "
                "eviction delta does not match the appended batch"
            )
        position = len(out_ranks)
        out_ranks.append(a_ranks[ai])
        out_parents.append(parent)
        out_pcounts.append(pcount)
        kids = _merge_children(a_ranks, a_children[ai], b_ranks, b_children[bi])
        for pair in reversed(kids):
            stack.append((pair[0], pair[1], position))
    return out_ranks, out_parents, out_pcounts


def merge_forest(base: DeltaForest, delta: DeltaForest, *, sign: int = 1) -> None:
    """Merge ``delta`` into ``base`` in place; ``sign=-1`` evicts.

    Every affected subtree is merged into fresh arrays *before* any of
    them is committed to ``base``, so a failure partway (including an
    injected fault at the ``delta.merge`` site, which fires first) leaves
    ``base`` exactly as it was — the retry story the resilient stream
    pipeline depends on. ``delta`` is never mutated or aliased.
    """
    if sign not in (1, -1):
        raise StreamingError(f"merge sign must be +1 or -1, got {sign}")
    if base.n_ranks != delta.n_ranks:
        raise StreamingError(
            f"cannot merge forests over different rank tables "
            f"({base.n_ranks} != {delta.n_ranks})"
        )
    faultinject.fire("delta.merge", sign=sign, subtrees=len(delta.trees))
    merged: dict[int, FlatTree] = {}
    for leading, flat in delta.trees.items():
        existing = base.trees.get(leading)
        if existing is not None:
            merged[leading] = _merge_flat(existing, flat, sign)
        elif sign < 0:
            raise StreamingError(
                f"eviction delta has leading rank {leading} but the window "
                "forest has no such subtree; wrong batch replayed?"
            )
        else:
            merged[leading] = (flat[0][:], flat[1][:], flat[2][:])
    base.trees.update(merged)


def compact_forest(forest: DeltaForest) -> int:
    """Drop tombstones (zero cumulative count) left by evictions.

    Because pcounts are non-negative, a node with cumulative count zero
    heads an *entirely* dead subtree — so surviving nodes always keep a
    surviving parent and the compacted arrays stay valid preorder with
    the original sibling order. Returns the number of nodes dropped.
    """
    dropped = 0
    for leading in list(forest.trees):
        ranks, parents, pcounts = forest.trees[leading]
        cumulative = list(pcounts)
        for index in range(len(cumulative) - 1, 0, -1):
            cumulative[parents[index]] += cumulative[index]
        if not cumulative or cumulative[0] == 0:
            dropped += len(ranks)
            del forest.trees[leading]
            continue
        keep = [index for index in range(len(ranks)) if cumulative[index] > 0]
        if len(keep) == len(ranks):
            continue
        dropped += len(ranks) - len(keep)
        remap = {old: new for new, old in enumerate(keep)}
        forest.trees[leading] = (
            [ranks[index] for index in keep],
            [remap[parents[index]] if parents[index] >= 0 else -1 for index in keep],
            [pcounts[index] for index in keep],
        )
    return dropped


def forest_to_array(forest: DeltaForest) -> CfpArray:
    """Encode the forest as a CFP-array via the serial conversion walk.

    Applies the deferred cumulative fold per subtree, then splices in
    ascending leading-rank order — the byte-identity contract of
    :func:`~repro.core.conversion.splice_subtree`. On a compacted forest
    the result is byte-identical to ``convert()`` of a from-scratch tree
    over the same window (the module-level tripwire).
    """
    layout = Layout(forest.n_ranks)
    for leading in sorted(forest.trees):
        ranks, parents, pcounts = forest.trees[leading]
        counts = list(pcounts)
        for index in range(len(counts) - 1, 0, -1):
            counts[parents[index]] += counts[index]
        splice_subtree(layout, ranks, parents, counts)
    return assemble(layout)


class IncrementalMiner:
    """Sliding-window mining over a stream of batches.

    Holds the window forest plus the per-batch deltas still inside the
    window (the eviction replay queue). The :class:`ItemTable` is frozen
    for the miner's lifetime — ranks must mean the same item in every
    delta, which is what makes eviction-by-subtraction (and the identity
    tripwire against a same-table rebuild) well-defined. ``window=None``
    keeps every batch (grow-only, like the batch builder).

    Counters: ``streaming.delta_merges``, ``streaming.batches_evicted``,
    ``streaming.tombstones_dropped``.
    """

    def __init__(self, table: ItemTable, *, window: int | None = None) -> None:
        if window is not None and window < 1:
            raise StreamingError(f"window must be >= 1 batches, got {window}")
        self.table = table
        self.window = window
        self.forest = DeltaForest(len(table))
        self.batches_consumed = 0
        self._window_deltas: deque[tuple[DeltaForest, int]] = deque()

    @property
    def window_batches(self) -> int:
        """Batches currently inside the window."""
        return len(self._window_deltas)

    @property
    def window_transactions(self) -> int:
        """Transactions (with at least one frequent item) in the window."""
        return sum(inserted for __, inserted in self._window_deltas)

    def append_batch(self, batch: Iterable[Transaction]) -> int:
        """Build, flatten, and merge one batch; returns insertions.

        Slides the window afterwards: with ``window=N``, batches older
        than the newest N are evicted oldest-first.
        """
        rank_of = self.table.rank_of
        with obs.maybe_span("delta_merge", batch=self.batches_consumed) as span:
            ranked = [
                sorted({rank_of[item] for item in transaction if item in rank_of})
                for transaction in batch
            ]
            delta_tree = TernaryCfpTree(len(self.table))
            inserted = delta_tree.insert_batch(ranked)
            delta = DeltaForest.from_tree(delta_tree)
            merge_forest(self.forest, delta, sign=1)
            self._window_deltas.append((delta, inserted))
            self.batches_consumed += 1
            obs.metrics.add("streaming.delta_merges")
            span.set("inserted", inserted)
            span.set("forest_nodes", self.forest.node_count)
        while self.window is not None and len(self._window_deltas) > self.window:
            self.evict_oldest()
        return inserted

    def evict_oldest(self) -> int:
        """Subtract the oldest batch and compact; returns its insertions.

        The eviction is the append replayed with ``sign=-1``; compaction
        then removes the tombstoned subtrees so the forest re-enters the
        canonical (rebuild-identical) shape before the next merge.
        """
        if not self._window_deltas:
            raise StreamingError("window is empty; nothing to evict")
        delta, inserted = self._window_deltas.popleft()
        merge_forest(self.forest, delta, sign=-1)
        dropped = compact_forest(self.forest)
        obs.metrics.add("streaming.batches_evicted")
        obs.metrics.add("streaming.tombstones_dropped", dropped)
        return inserted

    def to_array(self) -> CfpArray:
        """The window as a CFP-array (byte-identical to a rebuild)."""
        return forest_to_array(self.forest)

    def mine(self) -> list[tuple[tuple[Hashable, ...], int]]:
        """Mine the current window (the miner remains usable after)."""
        collector = ListCollector()
        mine_array(self.to_array(), self.table.min_support, collector)
        return [
            (self.table.ranks_to_items(ranks), support)
            for ranks, support in collector.itemsets
        ]


__all__ = [
    "DeltaForest",
    "FlatTree",
    "IncrementalMiner",
    "compact_forest",
    "forest_to_array",
    "merge_forest",
]
