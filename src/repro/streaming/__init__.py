"""Streaming builds: batch pipelines, incremental merges, snapshots.

The package splits into three layers (docs/streaming.md):

* :mod:`repro.streaming.builder` — the original two-phase batch build
  (count, then insert) with crash-recoverable checkpoints;
* :mod:`repro.streaming.incremental` — per-batch delta CFP-trees merged
  into a persistent flat forest with sliding-window eviction, rebuilt
  into a CFP-array byte-identical to a from-scratch build;
* :mod:`repro.streaming.snapshots` — generation-numbered on-disk
  snapshots with an atomic manifest flip, feeding the serving layer's
  hot store swap (:class:`repro.serving.follow.FollowingStore`).

The original ``repro.streaming`` module API is re-exported unchanged.
"""

from repro.streaming.builder import (
    CountingPhase,
    StreamingBuilder,
    mine_in_batches,
    mine_in_batches_resilient,
)
from repro.streaming.incremental import (
    DeltaForest,
    IncrementalMiner,
    compact_forest,
    forest_to_array,
    merge_forest,
)
from repro.streaming.snapshots import SnapshotError, SnapshotManager

__all__ = [
    "CountingPhase",
    "DeltaForest",
    "IncrementalMiner",
    "SnapshotError",
    "SnapshotManager",
    "StreamingBuilder",
    "compact_forest",
    "forest_to_array",
    "merge_forest",
    "mine_in_batches",
    "mine_in_batches_resilient",
]
