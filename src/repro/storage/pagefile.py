"""Fixed-size page file — the disk substrate for out-of-core structures.

A page file is a flat sequence of 4 KiB pages. Page 0 onward is payload;
callers layer their own headers inside the pages. All I/O is page-granular
so the buffer pool above it can count faults exactly.
"""

from __future__ import annotations

import errno
import os
from typing import BinaryIO

from repro import faultinject
from repro.errors import ReproError, TransientIOError

#: Page size in bytes (the common OS page size; §4.3's unit of thrashing).
PAGE_SIZE = 4096

#: OS errors worth retrying: interrupted syscalls, spurious unavailability,
#: and the classic flaky-medium read error. Anything else (ENOSPC, EBADF,
#: EROFS, ...) is a hard fault and surfaces unchanged.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EINTR, errno.EAGAIN, getattr(errno, "EIO", 5)}
)


class PageFileError(ReproError):
    """Invalid page access or a closed file."""


def fsync_dir(directory: str | os.PathLike) -> None:
    """fsync a directory entry so a just-renamed file survives a crash.

    ``os.replace`` makes a rename atomic but not durable — the new
    directory entry may still live only in the page cache. Platforms
    whose directories cannot be opened for fsync (or filesystems that
    refuse it) are skipped silently; durability there is best-effort.
    """
    try:
        fd = os.open(os.fspath(directory) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class PageFile:
    """Page-granular random access over one file.

    Usage::

        with PageFile.create(path) as pf:
            page_no = pf.append(b"...")
            data = pf.read_page(page_no)
    """

    def __init__(self, handle: BinaryIO, writable: bool) -> None:
        self._handle: BinaryIO | None = handle
        self._writable = writable
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size % PAGE_SIZE:
            raise PageFileError(
                f"file size {size} is not a multiple of the page size"
            )
        self._page_count = size // PAGE_SIZE
        #: Page reads/writes performed (fault accounting for experiments).
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path: str | os.PathLike) -> "PageFile":
        """Create (truncate) a page file for writing."""
        return cls(open(path, "w+b"), writable=True)

    @classmethod
    def create_private(cls, path: str | os.PathLike) -> "PageFile":
        """Create (truncate) a page file readable only by the owner.

        ``create`` inherits the process umask (typically 0644 — world-
        readable); store files that may carry user data, like streaming
        checkpoints, are created at mode 0600 instead.
        """
        fd = os.open(
            os.fspath(path), os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o600
        )
        return cls(os.fdopen(fd, "w+b"), writable=True)

    @classmethod
    def open_readonly(cls, path: str | os.PathLike) -> "PageFile":
        """Open an existing page file for reading."""
        return cls(open(path, "rb"), writable=False)

    def sync(self) -> None:
        """Flush buffered writes and fsync the file to stable storage."""
        self._check_open()
        assert self._handle is not None  # _check_open guarantees it
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    def read_page(self, page_no: int) -> bytes:
        """Read one full page.

        Transient OS errors (``EINTR``/``EAGAIN``/``EIO``) are re-raised
        as :class:`repro.errors.TransientIOError` so the buffer pool can
        retry them with backoff instead of aborting an out-of-core mine
        on a flaky read. The ``pagefile.read`` fault-injection site fires
        before the read (its ``flake`` action raises the same error).
        """
        self._check_open()
        if not 0 <= page_no < self._page_count:
            raise PageFileError(
                f"page {page_no} out of range [0, {self._page_count})"
            )
        faultinject.fire("pagefile.read", page=page_no)
        assert self._handle is not None  # _check_open guarantees it
        try:
            self._handle.seek(page_no * PAGE_SIZE)
            data = self._handle.read(PAGE_SIZE)
        except OSError as exc:
            if exc.errno in _TRANSIENT_ERRNOS:
                raise TransientIOError(
                    f"transient error reading page {page_no}: {exc}"
                ) from exc
            raise
        if len(data) != PAGE_SIZE:
            raise PageFileError(f"short read on page {page_no}")
        self.reads += 1
        return data

    def read_pages(self, first_page: int, count: int) -> bytes:
        """Read ``count`` consecutive pages with one seek.

        The batch primitive under the buffer pool's sequential prefetch:
        one syscall-sized sequential read instead of ``count`` seeks.
        Counts ``count`` page reads; transient OS errors map to
        :class:`TransientIOError` exactly as :meth:`read_page` does. The
        ``pagefile.read`` site does *not* fire here — read-ahead has its
        own ``pagefile.prefetch`` site at the pool layer, so chaos specs
        target demand and prefetch I/O independently.
        """
        self._check_open()
        if count < 1:
            raise PageFileError(f"page count must be >= 1, got {count}")
        if not 0 <= first_page <= self._page_count - count:
            raise PageFileError(
                f"pages [{first_page}, {first_page + count}) out of range "
                f"[0, {self._page_count})"
            )
        assert self._handle is not None  # _check_open guarantees it
        try:
            self._handle.seek(first_page * PAGE_SIZE)
            data = self._handle.read(count * PAGE_SIZE)
        except OSError as exc:
            if exc.errno in _TRANSIENT_ERRNOS:
                raise TransientIOError(
                    f"transient error reading pages "
                    f"[{first_page}, {first_page + count}): {exc}"
                ) from exc
            raise
        if len(data) != count * PAGE_SIZE:
            raise PageFileError(
                f"short read on pages [{first_page}, {first_page + count})"
            )
        self.reads += count
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        """Overwrite one page (padded with zeros if short)."""
        self._check_open()
        if not self._writable:
            raise PageFileError("page file opened read-only")
        if not 0 <= page_no < self._page_count:
            raise PageFileError(
                f"page {page_no} out of range [0, {self._page_count})"
            )
        if len(data) > PAGE_SIZE:
            raise PageFileError(f"page data too large: {len(data)}")
        assert self._handle is not None  # _check_open guarantees it
        self._handle.seek(page_no * PAGE_SIZE)
        self._handle.write(data.ljust(PAGE_SIZE, b"\x00"))
        self.writes += 1

    def append(self, data: bytes = b"") -> int:
        """Add a new page at the end; returns its page number."""
        self._check_open()
        if not self._writable:
            raise PageFileError("page file opened read-only")
        if len(data) > PAGE_SIZE:
            raise PageFileError(f"page data too large: {len(data)}")
        page_no = self._page_count
        assert self._handle is not None  # _check_open guarantees it
        self._handle.seek(page_no * PAGE_SIZE)
        self._handle.write(data.ljust(PAGE_SIZE, b"\x00"))
        self._page_count += 1
        self.writes += 1
        return page_no

    def append_blob(self, blob: bytes) -> tuple[int, int]:
        """Write an arbitrary-length blob across new pages.

        Returns ``(first_page, page_count)``.
        """
        first = self._page_count
        count = 0
        for offset in range(0, max(len(blob), 1), PAGE_SIZE):
            self.append(blob[offset : offset + PAGE_SIZE])
            count += 1
        return first, count

    def _check_open(self) -> None:
        if self._handle is None:
            raise PageFileError("page file is closed")
