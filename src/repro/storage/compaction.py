"""Background compaction of partitioned (v3) CFP-array stores.

Partition payloads are page-padded, so a store accumulates *slack* —
pages kept on disk that hold no buffer bytes. Slack grows when partitions
are small (many one-page tails) or when a store written for one partition
size is re-sized for another. :func:`compact_store` measures that
fragmentation and, above a threshold, rewrites the whole store: the array
is loaded (every partition CRC verified), partitions are re-planned at
the target size, and the new file is written through a pluggable
:class:`~repro.storage.placement.PlacementPolicy` before atomically
replacing the old one (``os.replace``). Readers holding the old file
keep a consistent generation via their open handle; new opens see the
compacted store.

:class:`BackgroundCompactor` runs that check on a timer thread — the
serving-layer shape: queries keep hitting the hot store while cold,
fragmented generations are repacked behind it. Each run bumps the
placement generation, so the round-robin policy actually rotates
partition payloads across the file over successive rewrites (the
wear-leveling motivation; see docs/performance.md).

Counters (published per :func:`compact_store` call):
``compaction.runs``, ``compaction.partitions_rewritten``,
``compaction.bytes_written``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.storage.cfp_store import (
    DEFAULT_PARTITION_BYTES,
    load_cfp_array,
    pages_needed,
    plan_partitions,
    read_array_header,
    save_cfp_array_partitioned,
)
from repro.storage.pagefile import PAGE_SIZE, PageFile, fsync_dir
from repro.storage.placement import PlacementPolicy, get_placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

#: Slack fraction above which :class:`BackgroundCompactor` rewrites.
DEFAULT_FRAGMENTATION_THRESHOLD = 0.25


class CompactionError(ReproError):
    """The target file is not a compactable partitioned store."""


@dataclass
class CompactionReport:
    """What one compaction pass found and did."""

    path: str
    ran: bool
    fragmentation: float
    partitions_before: int
    partitions_after: int = 0
    bytes_written: int = 0


def store_fragmentation(path: str | os.PathLike[str]) -> tuple[float, int]:
    """Slack fraction and partition count of a partitioned store.

    Fragmentation is the share of payload pages holding padding instead
    of buffer bytes: ``1 - buffer_len / (payload_pages * PAGE_SIZE)``.
    """
    with PageFile.open_readonly(path) as pagefile:
        header = read_array_header(pagefile)
    if not header.partitions:
        raise CompactionError(
            f"{os.fspath(path)} is not a partitioned (v3) CFP-array store"
        )
    payload_bytes = sum(part.pages for part in header.partitions) * PAGE_SIZE
    if payload_bytes == 0:
        return 0.0, len(header.partitions)
    return 1.0 - header.buffer_len / payload_bytes, len(header.partitions)


def compact_store(
    path: str | os.PathLike[str],
    *,
    partition_bytes: int = DEFAULT_PARTITION_BYTES,
    placement: PlacementPolicy | None = None,
    threshold: float = 0.0,
    registry: "MetricsRegistry | None" = None,
) -> CompactionReport:
    """Repack one partitioned store; no-op below ``threshold`` slack.

    The rewrite goes to a sibling temp file and lands with ``os.replace``,
    so a crash mid-compaction leaves the original store untouched. Loading
    the array verifies every page checksum and partition CRC first — a
    corrupt store raises instead of being "compacted" into a clean-looking
    one.
    """
    with PageFile.open_readonly(path) as pagefile:
        header = read_array_header(pagefile)
    if not header.partitions:
        raise CompactionError(
            f"{os.fspath(path)} is not a partitioned (v3) CFP-array store"
        )
    payload_pages = sum(part.pages for part in header.partitions)
    payload_bytes = payload_pages * PAGE_SIZE
    fragmentation = (
        1.0 - header.buffer_len / payload_bytes if payload_bytes else 0.0
    )
    report = CompactionReport(
        path=os.fspath(path),
        ran=False,
        fragmentation=fragmentation,
        partitions_before=len(header.partitions),
    )
    if fragmentation <= threshold:
        return report
    # Convergence guard: part of the slack is intrinsic (each partition's
    # final page is padded). If re-planning at the target size cannot
    # shrink the payload, a rewrite would change nothing — and a timer
    # compactor whose threshold sits below the intrinsic slack would
    # otherwise rewrite the same bytes every interval.
    planned = plan_partitions(header.starts, header.n_ranks, partition_bytes)
    planned_pages = sum(
        pages_needed(header.starts[last + 1] - header.starts[first])
        for first, last in planned
    )
    if planned_pages >= payload_pages:
        return report
    array = load_cfp_array(path)
    tmp_path = os.fspath(path) + ".compact.tmp"
    try:
        report.bytes_written = save_cfp_array_partitioned(
            array, tmp_path, partition_bytes=partition_bytes, placement=placement
        )
        os.replace(tmp_path, path)
        fsync_dir(os.path.dirname(os.fspath(path)))
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    with PageFile.open_readonly(path) as pagefile:
        report.partitions_after = len(read_array_header(pagefile).partitions)
    report.ran = True
    if registry is None:
        from repro.obs import metrics as registry  # type: ignore[no-redef]
    assert registry is not None
    registry.add("compaction.runs", 1)
    registry.add("compaction.partitions_rewritten", report.partitions_after)
    registry.add("compaction.bytes_written", report.bytes_written)
    return report


class BackgroundCompactor:
    """Timer thread repacking a store whenever it fragments past a threshold.

    Each run resolves the placement policy fresh with the run index as
    its generation, so ``round-robin`` placement actually rotates payload
    order across rewrites. Failures of one run (transient I/O, a reader
    racing the replace on exotic filesystems) are recorded on the report
    list and do not stop the thread.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        interval_s: float = 60.0,
        partition_bytes: int = DEFAULT_PARTITION_BYTES,
        placement_name: str = "append",
        threshold: float = DEFAULT_FRAGMENTATION_THRESHOLD,
    ) -> None:
        self._path = os.fspath(path)
        self._interval_s = interval_s
        self._partition_bytes = partition_bytes
        self._placement_name = placement_name
        self._threshold = threshold
        self._generation = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.reports: list[CompactionReport] = []
        self.errors: list[str] = []

    def run_once(self) -> CompactionReport:
        """One synchronous compaction check (also used by the thread)."""
        placement = get_placement(self._placement_name, self._generation)
        report = compact_store(
            self._path,
            partition_bytes=self._partition_bytes,
            placement=placement,
            threshold=self._threshold,
        )
        if report.ran:
            self._generation += 1
        self.reports.append(report)
        return report

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "BackgroundCompactor":
        self.start()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self.run_once()
            except ReproError as exc:
                # One bad pass (corrupt store mid-write elsewhere, I/O
                # hiccup) must not kill the maintenance thread.
                self.errors.append(str(exc))
            except OSError as exc:
                self.errors.append(str(exc))


__all__ = [
    "CompactionError",
    "CompactionReport",
    "DEFAULT_FRAGMENTATION_THRESHOLD",
    "BackgroundCompactor",
    "compact_store",
    "store_fragmentation",
]
