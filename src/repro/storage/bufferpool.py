"""LRU buffer pool over a page file.

The pool caches up to ``capacity`` pages; a request for a cached page is a
*hit*, anything else is a *fault* that reads from disk and may evict the
least-recently-used unpinned page. The statistics drive the out-of-core
experiments: with a pool smaller than the structure, sequential scans
fault once per page while random backward traversals fault per access —
the asymmetry behind the paper's §4.3 observations.

Disk reads that fail with :class:`repro.errors.TransientIOError` (a
retryable OS error mapped by :class:`repro.storage.pagefile.PageFile`, or
an injected ``pagefile.read:flake`` fault) are retried here with bounded
exponential backoff before the error is allowed to escape — a page-read
hiccup must not abort an hours-long out-of-core mine. The retry budget
comes from ``REPRO_IO_RETRIES`` (default 3) and the first delay from
``REPRO_IO_BACKOFF`` (seconds, default 0.01, doubling per attempt);
every retry is counted in ``stats.read_retries`` and published as
``bufferpool.read_retries``. See docs/robustness.md.

**Read-ahead:** :meth:`BufferPool.prefetch_pages` pulls a consecutive page
run into the pool with one batch read (:meth:`PageFile.read_pages`),
capped at half the capacity so read-ahead can never evict the demand
working set. Prefetched pages are counted in ``stats.prefetched`` — *not*
as faults — and tracked until first use: a demand access of one is a
``prefetch_hit``, eviction before any use is ``prefetch_wasted``.
:class:`Prefetcher` runs those calls on a background thread; it is pure
opportunism — if the thread has died (an injected ``pagefile.prefetch``
fault, say) requests are dropped and demand reads proceed synchronously,
identical answers, just slower. ``REPRO_PREFETCH=0`` disables read-ahead
globally; ``REPRO_PREFETCH_DEPTH`` sets how many partitions ahead the
partition-at-a-time mine scheduler asks for (default 1).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import faultinject
from repro.errors import ReproError, TransientIOError
from repro.storage.pagefile import PAGE_SIZE, PageFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class BufferPoolError(ReproError):
    """Pin bookkeeping or capacity misuse."""


#: Retries of a transient page read before the error escapes (env override
#: ``REPRO_IO_RETRIES``; 0 disables retrying).
DEFAULT_IO_RETRIES = 3

#: First retry delay in seconds, doubled per attempt and capped at
#: :data:`IO_BACKOFF_MAX` (env override ``REPRO_IO_BACKOFF``).
DEFAULT_IO_BACKOFF = 0.01

IO_BACKOFF_MAX = 0.25


def _io_retries() -> int:
    raw = os.environ.get("REPRO_IO_RETRIES")
    if raw is None:
        return DEFAULT_IO_RETRIES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_IO_RETRIES


def _io_backoff() -> float:
    raw = os.environ.get("REPRO_IO_BACKOFF")
    if raw is None:
        return DEFAULT_IO_BACKOFF
    try:
        return max(0.0, float(raw))
    except ValueError:
        return DEFAULT_IO_BACKOFF


#: Partitions of read-ahead the partition scheduler requests by default
#: (env override ``REPRO_PREFETCH_DEPTH``).
DEFAULT_PREFETCH_DEPTH = 1


def prefetch_enabled() -> bool:
    """Whether background read-ahead is enabled (``REPRO_PREFETCH``)."""
    raw = os.environ.get("REPRO_PREFETCH")
    if raw is None:
        return True
    return raw.strip().lower() not in {"0", "off", "false", "no"}


def prefetch_depth() -> int:
    """Partitions of read-ahead to request (``REPRO_PREFETCH_DEPTH``)."""
    raw = os.environ.get("REPRO_PREFETCH_DEPTH")
    if raw is None:
        return DEFAULT_PREFETCH_DEPTH
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_PREFETCH_DEPTH


@dataclass
class BufferPoolStats:
    """Cumulative access statistics."""

    hits: int = 0
    faults: int = 0
    evictions: int = 0
    read_retries: int = 0
    prefetch_requests: int = 0
    prefetched: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    prefetch_errors: int = 0
    bytes_read: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class BufferPool:
    """Fixed-capacity LRU cache of pages with pin counts.

    Thread-safe: one lock guards the frame table, LRU recency, pins and
    stats. The pool was born for fork-based workers (each fork got its own
    pool, so unsynchronized mutation was safe); the serving layer shares
    **one** pool across a thread executor, where an unguarded
    ``move_to_end`` racing an eviction corrupts the OrderedDict and
    ``stats.hits += 1`` loses updates. The lock is held across the disk
    read of a fault — serializing duplicate reads of the same page is the
    point, not a bug — and across a transient-retry backoff sleep, which
    stalls other readers exactly as long as the disk itself is stalling.
    """

    def __init__(self, pagefile: PageFile, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity_pages}")
        self._file = pagefile
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._pins: dict[int, int] = {}
        self._prefetched: set[int] = set()
        self._lock = threading.Lock()
        self.stats = BufferPoolStats()

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * PAGE_SIZE

    @property
    def pagefile(self) -> PageFile:
        """The underlying page file (read-only use by checkers/stats)."""
        return self._file

    def _read_page_resilient(self, page_no: int) -> bytes:
        """Read from disk, retrying transient errors with backoff.

        Only :class:`TransientIOError` is retried — a hard fault (bad
        page number, closed file, checksum problems upstream) surfaces
        immediately. After the budget is spent the *original* transient
        error escapes, so callers see what actually went wrong.
        """
        budget = _io_retries()
        delay = _io_backoff()
        attempt = 0
        while True:
            try:
                return self._file.read_page(page_no)
            except TransientIOError:
                if attempt >= budget:
                    raise
                attempt += 1
                self.stats.read_retries += 1
                if delay > 0:
                    time.sleep(min(delay * 2 ** (attempt - 1), IO_BACKOFF_MAX))

    def get_page(self, page_no: int) -> bytes:
        """Fetch a page, through the cache."""
        with self._lock:
            return self._get_page_locked(page_no)

    def _get_page_locked(self, page_no: int) -> bytes:
        frame = self._frames.get(page_no)
        if frame is not None:
            self._frames.move_to_end(page_no)
            self.stats.hits += 1
            if page_no in self._prefetched:
                self._prefetched.discard(page_no)
                self.stats.prefetch_hits += 1
            return frame
        self.stats.faults += 1
        data = self._read_page_resilient(page_no)
        self.stats.bytes_read += PAGE_SIZE
        self._make_room()
        self._frames[page_no] = data
        return data

    def read(self, offset: int, size: int) -> bytes:
        """Read an arbitrary byte range through the pool.

        The range is validated against the file size *before* any page is
        fetched: a request past EOF raises :class:`BufferPoolError` with
        the pool's statistics untouched, instead of surfacing a raw
        page-file error mid-loop after some pages were already counted.
        """
        if size < 0 or offset < 0:
            raise BufferPoolError(f"invalid range ({offset}, {size})")
        file_bytes = self._file.page_count * PAGE_SIZE
        if offset + size > file_bytes:
            raise BufferPoolError(
                f"range ({offset}, {size}) ends at byte {offset + size}, "
                f"past the file's {file_bytes} bytes"
            )
        parts = []
        remaining = size
        position = offset
        with self._lock:
            while remaining > 0:
                page_no, in_page = divmod(position, PAGE_SIZE)
                take = min(remaining, PAGE_SIZE - in_page)
                parts.append(
                    self._get_page_locked(page_no)[in_page : in_page + take]
                )
                position += take
                remaining -= take
        return b"".join(parts)

    def prefetch_pages(self, first_page: int, n_pages: int) -> int:
        """Pull a consecutive page run into the pool ahead of demand.

        Pages already resident are skipped; the rest are read in
        contiguous batch runs (one seek each) and inserted as
        most-recently-used, counted in ``stats.prefetched`` and
        ``stats.bytes_read`` but **not** as faults. The request is capped
        at half the pool capacity so read-ahead can never flush the
        demand working set. Returns the number of pages actually loaded.

        The ``pagefile.prefetch`` fault site fires first: its ``flake``
        action aborts just this request with :class:`TransientIOError`
        (best-effort read-ahead does not retry — the demand path will),
        and harsher actions kill the calling :class:`Prefetcher` thread.
        """
        faultinject.fire("pagefile.prefetch", page=first_page, pages=n_pages)
        limit = max(1, self.capacity_pages // 2)
        n_pages = min(n_pages, limit)
        last = min(first_page + n_pages, self._file.page_count)
        if first_page < 0 or first_page >= last:
            return 0
        loaded = 0
        with self._lock:
            wanted = [
                page_no
                for page_no in range(first_page, last)
                if page_no not in self._frames
            ]
            run_start = 0
            while run_start < len(wanted):
                run_end = run_start + 1
                while (
                    run_end < len(wanted)
                    and wanted[run_end] == wanted[run_end - 1] + 1
                ):
                    run_end += 1
                first = wanted[run_start]
                count = run_end - run_start
                blob = self._file.read_pages(first, count)
                for index in range(count):
                    page_no = first + index
                    self._make_room()
                    self._frames[page_no] = blob[
                        index * PAGE_SIZE : (index + 1) * PAGE_SIZE
                    ]
                    self._prefetched.add(page_no)
                self.stats.prefetched += count
                self.stats.bytes_read += count * PAGE_SIZE
                loaded += count
                run_start = run_end
        return loaded

    def note_prefetch_request(self) -> None:
        """Count one read-ahead request issued to a :class:`Prefetcher`."""
        with self._lock:
            self.stats.prefetch_requests += 1

    def note_prefetch_error(self) -> None:
        """Count one failed background read-ahead (the mine continues)."""
        with self._lock:
            self.stats.prefetch_errors += 1

    def pin(self, page_no: int) -> None:
        """Protect a page from eviction (e.g. an index page)."""
        with self._lock:
            self._get_page_locked(page_no)
            self._pins[page_no] = self._pins.get(page_no, 0) + 1

    def unpin(self, page_no: int) -> None:
        with self._lock:
            count = self._pins.get(page_no, 0)
            if count <= 0:
                raise BufferPoolError(f"page {page_no} is not pinned")
            if count == 1:
                del self._pins[page_no]
            else:
                self._pins[page_no] = count - 1

    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

    def resident_page_numbers(self) -> list[int]:
        """Cached page numbers in LRU order (least recently used first)."""
        with self._lock:
            return list(self._frames)

    def pinned_pages(self) -> dict[int, int]:
        """Pin count per pinned page (a copy)."""
        with self._lock:
            return dict(self._pins)

    def publish_metrics(self, registry: "MetricsRegistry | None" = None) -> None:
        """Add the pool's counters (and page-file I/O) to a registry.

        Defaults to the process-wide :data:`repro.obs.metrics` registry.
        Called once per pool lifetime (e.g. :meth:`DiskCfpArray.close`),
        so it is an aggregation point, not a hot path.
        """
        if registry is None:
            from repro.obs import metrics as registry  # type: ignore[no-redef]
        assert registry is not None
        registry.add("bufferpool.hits", self.stats.hits)
        registry.add("bufferpool.faults", self.stats.faults)
        registry.add("bufferpool.evictions", self.stats.evictions)
        registry.add("bufferpool.read_retries", self.stats.read_retries)
        registry.add("bufferpool.bytes_read", self.stats.bytes_read)
        registry.add("prefetch.issued", self.stats.prefetch_requests)
        registry.add("prefetch.pages", self.stats.prefetched)
        registry.add("prefetch.hits", self.stats.prefetch_hits)
        registry.add("prefetch.wasted", self.stats.prefetch_wasted)
        registry.add("prefetch.errors", self.stats.prefetch_errors)
        registry.add("pagefile.reads", self._file.reads)
        registry.add("pagefile.writes", self._file.writes)

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity_pages:
            victim = None
            for page_no in self._frames:  # LRU order
                if not self._pins.get(page_no):
                    victim = page_no
                    break
            if victim is None:
                raise BufferPoolError("all pages pinned; cannot evict")
            del self._frames[victim]
            self.stats.evictions += 1
            if victim in self._prefetched:
                self._prefetched.discard(victim)
                self.stats.prefetch_wasted += 1


class Prefetcher:
    """Background thread issuing :meth:`BufferPool.prefetch_pages` calls.

    Strictly best-effort: :meth:`request` enqueues and returns
    immediately, and if the worker thread has died — an injected
    ``pagefile.prefetch`` fault, or any hard error — later requests are
    silently dropped, so the caller degrades to synchronous demand reads
    with identical answers. A :class:`TransientIOError` (including the
    site's ``flake`` action) only costs that one request; harder
    :class:`ReproError` failures terminate the thread, which is the
    in-process analog of killing it. Both paths are counted in
    ``stats.prefetch_errors``.
    """

    def __init__(self, pool: BufferPool, name: str = "repro-prefetch") -> None:
        self._pool = pool
        self._queue: "queue.Queue[tuple[int, int] | None]" = queue.Queue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def alive(self) -> bool:
        """Whether the worker thread is still serving requests."""
        return self._thread.is_alive()

    def request(self, first_page: int, n_pages: int) -> bool:
        """Enqueue a read-ahead; returns False if dropped (thread dead)."""
        if n_pages < 1 or not self._thread.is_alive():
            return False
        self._pool.note_prefetch_request()
        self._queue.put((first_page, n_pages))
        return True

    def drain(self, timeout: float = 5.0) -> None:
        """Best-effort wait for queued requests to finish (tests/bench)."""
        deadline = time.monotonic() + timeout
        while (
            not self._queue.empty()
            and self._thread.is_alive()
            and time.monotonic() < deadline
        ):
            time.sleep(0.001)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker and wait for it (idempotent)."""
        self._queue.put(None)
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            try:
                self._pool.prefetch_pages(*item)
            except TransientIOError:
                # One flaky batch read: drop it, keep serving. The demand
                # path re-reads the pages with its own retry budget.
                self._pool.note_prefetch_error()
            except ReproError:
                # A hard failure (injected or real): record it and die.
                # Demand reads keep the mine correct without read-ahead.
                self._pool.note_prefetch_error()
                return
