"""Out-of-core storage: the paper's research class (3) as a subsystem.

When even the compressed structures exceed main memory, the paper argues
(§3.5, §4.3) that CFP-growth degrades gracefully because its overflow
accesses are largely sequential. This package makes that concrete with a
real disk path instead of a cost model:

* :class:`repro.storage.PageFile` — fixed-size pages in a single file,
* :class:`repro.storage.BufferPool` — an LRU page cache with pin counts,
  hit/miss/eviction statistics, and batch sequential read-ahead
  (:class:`repro.storage.Prefetcher` runs it on a background thread),
* :mod:`repro.storage.cfp_store` — on-disk formats for the CFP-array
  (monolithic v2 and partitioned v3 with a rank-range manifest) and
  checkpointing for the CFP-tree arena, plus
  :class:`repro.storage.DiskCfpArray`, a drop-in CFP-array reader that
  fetches bytes through the buffer pool — so the full CFP-growth mine
  phase runs out-of-core and every page fault is observable — and
  :class:`repro.storage.PooledCfpArray`, the serving-layer reader that
  keeps the columnar query path over the same pool (docs/serving.md),
* :class:`repro.storage.PartitionedCfpArray` — the v3 reader that mines
  partition-at-a-time with a pinned hot set and sequential prefetch
  (docs/performance.md §partitioned),
* :mod:`repro.storage.placement` — pluggable write-placement policies
  for partition payloads (append; wear-aware round-robin),
* :mod:`repro.storage.compaction` — background repacking of fragmented
  partitioned stores through a placement policy.

The buffer-pool statistics reproduce the paper's access-pattern story
measurably: writing subarrays during conversion faults once per page
(sequential), while backward traversals during mining fault per hop when
the pool is small (random) — unless the partitioned reader's read-ahead
turns the partition scan back into sequential I/O.
"""

from repro.storage.bufferpool import BufferPool, BufferPoolStats, Prefetcher
from repro.storage.cfp_store import (
    DiskCfpArray,
    PartitionInfo,
    PooledCfpArray,
    load_cfp_array,
    load_cfp_tree,
    load_cfp_tree_checkpoint,
    plan_partitions,
    save_cfp_array,
    save_cfp_array_partitioned,
    save_cfp_tree,
)
from repro.storage.compaction import BackgroundCompactor, CompactionReport, compact_store
from repro.storage.pagefile import PAGE_SIZE, PageFile
from repro.storage.partitioned import PartitionedCfpArray
from repro.storage.placement import (
    AppendPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    get_placement,
)

__all__ = [
    "PageFile",
    "PAGE_SIZE",
    "BufferPool",
    "BufferPoolStats",
    "Prefetcher",
    "save_cfp_array",
    "save_cfp_array_partitioned",
    "load_cfp_array",
    "plan_partitions",
    "PartitionInfo",
    "DiskCfpArray",
    "PooledCfpArray",
    "PartitionedCfpArray",
    "PlacementPolicy",
    "AppendPlacement",
    "RoundRobinPlacement",
    "get_placement",
    "compact_store",
    "CompactionReport",
    "BackgroundCompactor",
    "save_cfp_tree",
    "load_cfp_tree",
    "load_cfp_tree_checkpoint",
]
