"""Out-of-core storage: the paper's research class (3) as a subsystem.

When even the compressed structures exceed main memory, the paper argues
(§3.5, §4.3) that CFP-growth degrades gracefully because its overflow
accesses are largely sequential. This package makes that concrete with a
real disk path instead of a cost model:

* :class:`repro.storage.PageFile` — fixed-size pages in a single file,
* :class:`repro.storage.BufferPool` — an LRU page cache with pin counts
  and hit/miss/eviction statistics,
* :mod:`repro.storage.cfp_store` — an on-disk format for the CFP-array
  (and checkpointing for the CFP-tree arena), plus
  :class:`repro.storage.DiskCfpArray`, a drop-in CFP-array reader that
  fetches bytes through the buffer pool — so the full CFP-growth mine
  phase runs out-of-core and every page fault is observable — and
  :class:`repro.storage.PooledCfpArray`, the serving-layer reader that
  keeps the columnar query path over the same pool (docs/serving.md).

The buffer-pool statistics reproduce the paper's access-pattern story
measurably: writing subarrays during conversion faults once per page
(sequential), while backward traversals during mining fault per hop when
the pool is small (random).
"""

from repro.storage.bufferpool import BufferPool, BufferPoolStats
from repro.storage.cfp_store import (
    DiskCfpArray,
    PooledCfpArray,
    load_cfp_array,
    load_cfp_tree,
    load_cfp_tree_checkpoint,
    save_cfp_array,
    save_cfp_tree,
)
from repro.storage.pagefile import PAGE_SIZE, PageFile

__all__ = [
    "PageFile",
    "PAGE_SIZE",
    "BufferPool",
    "BufferPoolStats",
    "save_cfp_array",
    "load_cfp_array",
    "DiskCfpArray",
    "PooledCfpArray",
    "save_cfp_tree",
    "load_cfp_tree",
    "load_cfp_tree_checkpoint",
]
