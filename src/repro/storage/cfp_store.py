"""On-disk formats for the CFP structures, and out-of-core mining.

**CFP-array file** (magic ``CFPA``): a header blob — version, ``n_ranks``,
buffer length, the item index (``starts``) — followed by the raw varint
buffer, page-aligned. :class:`DiskCfpArray` reads the buffer through a
:class:`repro.storage.BufferPool` and implements the same traversal
interface as the in-memory :class:`repro.core.CfpArray`, so
:func:`repro.core.cfp_growth.mine_array` runs unchanged against disk —
with every page fault observable in the pool statistics. Only the item
index stays in memory, as the paper's "small item index" does.

**CFP-tree checkpoint** (magic ``CFPT``): the arena's used prefix plus the
allocator state (next-free pointer, free-queue heads) and the tree's
metadata, so a build phase can be suspended and resumed exactly.

**Integrity (format version 2):** both formats append a *checksum trailer*
after the content pages — one little-endian CRC32 per content page (header
pages included), packed sequentially and padded to a page boundary. The
loaders verify every content page's checksum and raise
:class:`StorageFormatError` on the first mismatch; version-1 files (no
trailer) are still read. ``repro check`` / :mod:`repro.analysis.storecheck`
run the same verification offline and report every corrupt page.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, BinaryIO, Iterator, NamedTuple

from repro import faultinject
from repro.compress import varint
from repro.core.cfp_array import CfpArray, DecodedSubarray, _SubarrayCache
from repro.core.ternary import TernaryCfpTree
from repro.errors import ReproError, TreeError
from repro.memman.arena import Arena
from repro.obs import maybe_span
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import PAGE_SIZE, PageFile

_ARRAY_MAGIC = b"CFPA"
_TREE_MAGIC = b"CFPT"

#: Current on-disk format version (2 = CRC32 checksum trailer).
FORMAT_VERSION = 2

#: Versions the loaders accept.
SUPPORTED_VERSIONS = (1, 2)

#: Bytes per page checksum in the trailer (CRC32, ``<I``).
CHECKSUM_SIZE = 4


class StorageFormatError(ReproError):
    """A file is not a valid CFP store."""


# ----------------------------------------------------------------------
# Page/checksum helpers (shared with repro.analysis.storecheck)
# ----------------------------------------------------------------------

def pages_needed(n_bytes: int) -> int:
    """Pages a blob occupies via :meth:`PageFile.append_blob` (min 1)."""
    return max(1, -(-n_bytes // PAGE_SIZE))


def _page_padded(blob: bytes) -> bytes:
    """Pad ``blob`` to a whole number of pages (at least one)."""
    return blob.ljust(pages_needed(len(blob)) * PAGE_SIZE, b"\x00")


def page_checksum(page: bytes) -> int:
    """CRC32 of one page's 4096 bytes."""
    return zlib.crc32(page) & 0xFFFFFFFF


def checksum_trailer(content: bytes) -> bytes:
    """Checksum trailer for page-aligned ``content``: one CRC32 per page."""
    checksums = bytearray()
    for offset in range(0, len(content), PAGE_SIZE):
        checksums += struct.pack("<I", page_checksum(content[offset : offset + PAGE_SIZE]))
    return bytes(checksums)


def trailer_pages(content_pages: int) -> int:
    """Pages the checksum trailer occupies for ``content_pages`` pages."""
    return pages_needed(content_pages * CHECKSUM_SIZE)


def iter_checksum_mismatches(
    pagefile: PageFile, content_pages: int
) -> Iterator[tuple[int, int, int]]:
    """Verify the trailer of an open v2 page file.

    Yields ``(page_no, stored_crc, actual_crc)`` for every content page
    whose checksum does not match. Yields nothing for an intact file.
    """
    trailer = bytearray()
    for page_no in range(content_pages, pagefile.page_count):
        trailer += pagefile.read_page(page_no)
    if len(trailer) < content_pages * CHECKSUM_SIZE:
        raise StorageFormatError(
            f"checksum trailer truncated: {len(trailer)} bytes for "
            f"{content_pages} content pages"
        )
    for page_no in range(content_pages):
        stored = struct.unpack_from("<I", trailer, page_no * CHECKSUM_SIZE)[0]
        actual = page_checksum(pagefile.read_page(page_no))
        if stored != actual:
            yield page_no, stored, actual


def _verify_content(pagefile: PageFile, content_pages: int, version: int) -> None:
    """Raise on the first checksum mismatch (no-op for version-1 files)."""
    if version < 2:
        return
    for page_no, stored, actual in iter_checksum_mismatches(pagefile, content_pages):
        raise StorageFormatError(
            f"page {page_no} checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )


def _write_store(path: str | os.PathLike[str], header: bytes, payload: bytes) -> int:
    """Write header + payload page-aligned, then the checksum trailer."""
    content = _page_padded(header) + _page_padded(payload)
    with PageFile.create(path) as pagefile:
        pagefile.append_blob(content)
        pagefile.append_blob(checksum_trailer(content))
        return pagefile.page_count * PAGE_SIZE


# ----------------------------------------------------------------------
# CFP-array persistence
# ----------------------------------------------------------------------

class ArrayHeader(NamedTuple):
    """Parsed CFP-array file header."""

    version: int
    n_ranks: int
    buffer_len: int
    starts: list[int]
    data_page: int
    """First payload page (== number of header pages)."""

    @property
    def payload_pages(self) -> int:
        return pages_needed(self.buffer_len)

    @property
    def content_pages(self) -> int:
        return self.data_page + self.payload_pages


def save_cfp_array(array: CfpArray, path: str | os.PathLike[str]) -> int:
    """Write a CFP-array to ``path``; returns the file size in bytes."""
    header = bytearray()
    header += _ARRAY_MAGIC
    header += struct.pack("<II", FORMAT_VERSION, 0)
    header += struct.pack("<QQ", array.n_ranks, len(array.buffer))
    for start in array.starts:
        header += struct.pack("<Q", start)
    with maybe_span("store_save_array", path=str(path)) as span:
        size = _write_store(path, bytes(header), bytes(array.buffer))
        span.set("bytes", size)
    return size


def _header_pages(n_ranks: int) -> int:
    header_size = 4 + 8 + 16 + 8 * (n_ranks + 2)
    return pages_needed(header_size)


def read_array_header(pagefile: PageFile) -> ArrayHeader:
    """Parse and sanity-check the header of an open CFP-array file."""
    first = pagefile.read_page(0)
    if first[:4] != _ARRAY_MAGIC:
        raise StorageFormatError("not a CFP-array file (bad magic)")
    version = struct.unpack_from("<I", first, 4)[0]
    if version not in SUPPORTED_VERSIONS:
        raise StorageFormatError(f"unsupported CFP-array version {version}")
    n_ranks, buffer_len = struct.unpack_from("<QQ", first, 12)
    header_pages = _header_pages(n_ranks)
    if header_pages > pagefile.page_count:
        raise StorageFormatError(
            f"header needs {header_pages} pages but the file has "
            f"{pagefile.page_count}"
        )
    header = bytearray(first)
    for page_no in range(1, header_pages):
        header += pagefile.read_page(page_no)
    starts = list(struct.unpack_from(f"<{n_ranks + 2}Q", header, 28))
    return ArrayHeader(version, n_ranks, buffer_len, starts, header_pages)


def load_cfp_array(path: str | os.PathLike[str]) -> CfpArray:
    """Load a CFP-array fully into memory, verifying page checksums."""
    with PageFile.open_readonly(path) as pagefile:
        header = read_array_header(pagefile)
        _verify_content(pagefile, header.content_pages, header.version)
        blob = bytearray()
        for page_no in range(header.data_page, header.content_pages):
            blob += pagefile.read_page(page_no)
    return CfpArray(header.n_ranks, bytearray(blob[: header.buffer_len]), header.starts)


class DiskCfpArray:
    """CFP-array traversals served from disk through a buffer pool.

    Implements the interface :func:`repro.core.cfp_growth.mine_array`
    needs, so CFP-growth's mine phase runs out-of-core unchanged. Pass
    ``verify=True`` to check every content page's CRC32 up front (reads
    the whole file once); by default only the header is parsed so opening
    stays O(1) in the array size.
    """

    #: Longest possible encoded triple (three 10-byte varints).
    _MAX_TRIPLE = 30

    def __init__(
        self,
        path: str | os.PathLike[str],
        pool_pages: int = 64,
        *,
        verify: bool = False,
    ) -> None:
        self._pagefile = PageFile.open_readonly(path)
        header = read_array_header(self._pagefile)
        if verify:
            _verify_content(self._pagefile, header.content_pages, header.version)
        self.n_ranks = header.n_ranks
        self.starts = header.starts
        self._buffer_len = header.buffer_len
        self._data_offset = header.data_page * PAGE_SIZE
        self.pool = BufferPool(self._pagefile, pool_pages)

    def close(self) -> None:
        self.pool.publish_metrics()
        self._pagefile.close()

    def __enter__(self) -> "DiskCfpArray":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Traversal interface (mirrors repro.core.CfpArray)
    # ------------------------------------------------------------------

    def _read_at(self, offset: int, size: int) -> bytes:
        size = min(size, self._buffer_len - offset)
        return self.pool.read(self._data_offset + offset, size)

    def _decode_triple(self, offset: int) -> tuple[int, int, int, int]:
        chunk = self._read_at(offset, self._MAX_TRIPLE)
        delta_item, pos = varint.decode_from(chunk, 0)
        dpos_raw, pos = varint.decode_from(chunk, pos)
        count, pos = varint.decode_from(chunk, pos)
        return delta_item, varint.unzigzag(dpos_raw), count, offset + pos

    def iter_subarray(self, rank: int) -> Iterator[tuple[int, int, int, int]]:
        start = self.starts[rank]
        end = self.starts[rank + 1]
        offset = start
        while offset < end:
            delta_item, dpos, count, next_offset = self._decode_triple(offset)
            yield offset - start, delta_item, dpos, count
            offset = next_offset

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            offset = self.starts[rank] + local
            chunk = self._read_at(offset, self._MAX_TRIPLE)
            delta_item, pos = varint.decode_from(chunk, 0)
            dpos_raw, __ = varint.decode_from(chunk, pos)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def prefix_paths(self, rank: int) -> list[tuple[list[int], int]]:
        """Prefix paths of every node in ``rank``'s subarray, in storage order.

        Mirrors :meth:`repro.core.CfpArray.prefix_paths` but resolves each
        ancestor through the buffer pool — the per-node backward walk *is*
        the out-of-core access pattern §4.3 measures, so no bulk-decode
        shortcut is taken here.
        """
        return [
            (self.path_ranks(rank, local), count)
            for local, __, __, count in self.iter_subarray(rank)
        ]

    def rank_support(self, rank: int) -> int:
        return sum(count for __, __, __, count in self.iter_subarray(rank))

    @property
    def cache_budget(self) -> int:
        """Decoded-subarray cache budget for conditional arrays (disabled:
        out-of-core runs measure the buffer pool, not an in-memory cache)."""
        return 0

    def active_ranks_descending(self) -> Iterator[int]:
        for rank in range(self.n_ranks, 0, -1):
            if self.starts[rank + 1] > self.starts[rank]:
                yield rank

    def subarray_bytes(self, rank: int) -> int:
        return self.starts[rank + 1] - self.starts[rank]

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: the buffer pool plus the in-memory item index."""
        return self.pool.capacity_bytes + (self.n_ranks + 1) * 5


class PooledCfpArray(CfpArray):
    """A read-only CFP-array served columnar-ly through a buffer pool.

    The serving-layer counterpart of :class:`DiskCfpArray`: the same
    ``CFPA`` file behind the same :class:`BufferPool`, but a subarray is
    fetched as **one** pool read and bulk-decoded into columns (LRU-cached
    under the usual byte budget), so the memoized ``prefix_paths`` resolve,
    the columnar kernels, and every other :class:`CfpArray` traversal run
    unchanged — in-memory asymptotics with pool-bounded residency.
    ``DiskCfpArray`` keeps its deliberate per-node walks because they *are*
    the out-of-core access pattern §4.3 measures; a query server wants the
    opposite trade.

    Only the item index and the decoded-subarray cache live in memory; the
    varint buffer itself is never materialized (``self.buffer`` stays
    empty, and every buffer-touching method is overridden to read through
    the pool).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        pool_pages: int = 64,
        cache_budget: int = 0,
        *,
        verify: bool = False,
    ) -> None:
        self._pagefile = PageFile.open_readonly(path)
        try:
            header = read_array_header(self._pagefile)
            if verify:
                _verify_content(self._pagefile, header.content_pages, header.version)
        except Exception:  # lint: ignore[INV004] - close-and-reraise: no pagefile may leak whatever the header read throws
            self._pagefile.close()
            raise
        # Deliberately no super().__init__: it demands the materialized
        # buffer this class exists to avoid. Every CfpArray field is set
        # here instead.
        self.n_ranks = header.n_ranks
        self.buffer = b""
        self.starts = header.starts
        self._node_count = None
        self._cache = _SubarrayCache(cache_budget) if cache_budget > 0 else None
        self._path_memo = None
        self._active_ranks = None
        self._buffer_len = header.buffer_len
        self._data_offset = header.data_page * PAGE_SIZE
        self.pool = BufferPool(self._pagefile, pool_pages)

    def close(self) -> None:
        self.pool.publish_metrics()
        self._pagefile.close()

    def __enter__(self) -> "PooledCfpArray":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _read_at(self, offset: int, size: int) -> bytes:
        size = min(size, self._buffer_len - offset)
        return self.pool.read(self._data_offset + offset, size)

    def subarray_columns(self, rank: int) -> DecodedSubarray:
        cache = self._cache
        if cache is not None:
            cached = cache.get(rank)
            if cached is not None:
                return cached
        self._check_rank(rank)
        start = self.starts[rank]
        length = self.starts[rank + 1] - start
        chunk = self._read_at(start, length)
        entry = DecodedSubarray(*varint.decode_triples_columns(chunk, 0, length))
        if cache is not None:
            cache.put(rank, entry, length)
        return entry

    @property
    def node_count(self) -> int:
        """Lazy count via per-subarray terminator scans through the pool."""
        if self._node_count is None:
            total = 0
            for rank in range(1, self.n_ranks + 1):
                start = self.starts[rank]
                length = self.starts[rank + 1] - start
                if length:
                    chunk = self._read_at(start, length)
                    total += varint.count_triples(chunk, 0, length)
            self._node_count = total
        return self._node_count

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        self._check_rank(rank)
        offset = self.starts[rank] + local
        if not self.starts[rank] <= offset < self.starts[rank + 1]:
            raise TreeError(
                f"local offset {local} outside subarray of rank {rank}"
            )
        chunk = self._read_at(offset, DiskCfpArray._MAX_TRIPLE)
        delta_item, pos = varint.decode_from(chunk, 0)
        dpos_raw, pos = varint.decode_from(chunk, pos)
        count, __ = varint.decode_from(chunk, pos)
        return delta_item, varint.unzigzag(dpos_raw), count

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            delta_item, dpos, __ = self.node_at(rank, local)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - dpos
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def item_of_position(self, offset: int) -> int:
        if not 0 <= offset < self._buffer_len:
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: pool frames, item index, and the cache budget."""
        return (
            self.pool.capacity_bytes
            + (self.n_ranks + 1) * 5
            + self.cache_budget
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PooledCfpArray(n_ranks={self.n_ranks}, "
            f"pool_pages={self.pool.capacity_pages})"
        )


# ----------------------------------------------------------------------
# CFP-tree checkpointing
# ----------------------------------------------------------------------

class TreeHeader(NamedTuple):
    """Parsed CFP-tree checkpoint header."""

    version: int
    meta: dict[str, Any]
    data_page: int
    """First arena page (== number of header pages)."""

    @property
    def payload_pages(self) -> int:
        return pages_needed(int(self.meta["next_free"]))

    @property
    def content_pages(self) -> int:
        return self.data_page + self.payload_pages


def save_cfp_tree(
    tree: TernaryCfpTree,
    path: str | os.PathLike[str],
    extra_meta: dict[str, Any] | None = None,
) -> int:
    """Checkpoint a CFP-tree (arena contents + allocator + metadata).

    ``extra_meta`` rides along under the ``"extra"`` key for callers that
    checkpoint more than the tree — :meth:`repro.streaming.StreamingBuilder`
    stores its batch cursor and ItemTable fingerprint there. The tree
    restore path ignores it; :func:`load_cfp_tree_checkpoint` returns it.
    """
    arena = tree.arena
    meta = {
        "n_ranks": tree.n_ranks,
        "enable_chains": tree.enable_chains,
        "enable_embedding": tree.enable_embedding,
        "max_chain_length": tree.max_chain_length,
        "logical_node_count": tree.logical_node_count,
        "transaction_count": tree.transaction_count,
        "root_slot": tree._root_slot,
        "next_free": arena.used_bytes,
        "free_heads": {str(k): v for k, v in arena.free_queue_heads().items()},
        "free_bytes": arena.free_bytes,
        "capacity": arena.capacity,
        "max_chunk_size": arena.max_chunk_size,
    }
    if extra_meta is not None:
        meta["extra"] = extra_meta
    meta_blob = json.dumps(meta).encode("ascii")
    header = _TREE_MAGIC + struct.pack("<IQ", FORMAT_VERSION, len(meta_blob))
    with maybe_span("store_save_tree", path=str(path)) as span:
        size = _write_store(path, header + meta_blob, arena.snapshot())
        span.set("bytes", size)
    # Chaos hook: the `truncate` action tears the checkpoint that was just
    # written, simulating a crash mid-write — the recovery path
    # (StreamingBuilder.resume_or_restart) must detect and survive it.
    faultinject.fire("checkpoint.write", path=str(path))
    return size


def read_tree_header(pagefile: PageFile) -> TreeHeader:
    """Parse and sanity-check the header of an open CFP-tree checkpoint."""
    first = pagefile.read_page(0)
    if first[:4] != _TREE_MAGIC:
        raise StorageFormatError("not a CFP-tree checkpoint (bad magic)")
    version, meta_len = struct.unpack_from("<IQ", first, 4)
    if version not in SUPPORTED_VERSIONS:
        raise StorageFormatError(f"unsupported CFP-tree version {version}")
    header_len = 16 + meta_len
    header_pages = pages_needed(header_len)
    if header_pages > pagefile.page_count:
        raise StorageFormatError(
            f"header needs {header_pages} pages but the file has "
            f"{pagefile.page_count}"
        )
    header = bytearray(first)
    for page_no in range(1, header_pages):
        header += pagefile.read_page(page_no)
    try:
        meta = json.loads(bytes(header[16:header_len]).decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageFormatError(f"checkpoint metadata is not valid JSON: {exc}")
    if not isinstance(meta, dict):
        raise StorageFormatError("checkpoint metadata is not a JSON object")
    return TreeHeader(version, meta, header_pages)


def restore_tree(header: TreeHeader, blob: bytes) -> TernaryCfpTree:
    """Rebuild a tree from a parsed header and the raw arena prefix."""
    meta = header.meta
    arena = Arena.from_snapshot(
        blob,
        capacity=meta["capacity"],
        max_chunk_size=meta["max_chunk_size"],
        next_free=meta["next_free"],
        free_heads={int(k): v for k, v in meta["free_heads"].items()},
        free_bytes=meta["free_bytes"],
    )
    return TernaryCfpTree.restore(
        arena,
        n_ranks=meta["n_ranks"],
        root_slot=meta["root_slot"],
        logical_node_count=meta["logical_node_count"],
        transaction_count=meta["transaction_count"],
        enable_chains=meta["enable_chains"],
        enable_embedding=meta["enable_embedding"],
        max_chain_length=meta["max_chain_length"],
    )


def load_cfp_tree_checkpoint(
    path: str | os.PathLike[str],
) -> tuple[TernaryCfpTree, dict[str, Any]]:
    """Restore a checkpointed tree plus the saver's ``extra_meta`` dict.

    The extra dict is empty for checkpoints written without one (all
    pre-``extra`` files included), so callers can distinguish "no extra
    metadata recorded" from any recorded value.
    """
    with maybe_span("store_load_tree", path=str(path)):
        with PageFile.open_readonly(path) as pagefile:
            header = read_tree_header(pagefile)
            _verify_content(pagefile, header.content_pages, header.version)
            blob = bytearray()
            for page_no in range(header.data_page, header.content_pages):
                blob += pagefile.read_page(page_no)
        extra = header.meta.get("extra")
        if not isinstance(extra, dict):
            extra = {}
        return restore_tree(header, bytes(blob)), extra


def load_cfp_tree(path: str | os.PathLike[str]) -> TernaryCfpTree:
    """Restore a checkpointed CFP-tree (checksums verified); inserts may continue."""
    tree, __ = load_cfp_tree_checkpoint(path)
    return tree


__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "CHECKSUM_SIZE",
    "ArrayHeader",
    "TreeHeader",
    "save_cfp_array",
    "load_cfp_array",
    "read_array_header",
    "read_tree_header",
    "restore_tree",
    "DiskCfpArray",
    "PooledCfpArray",
    "save_cfp_tree",
    "load_cfp_tree",
    "load_cfp_tree_checkpoint",
    "StorageFormatError",
    "page_checksum",
    "checksum_trailer",
    "trailer_pages",
    "pages_needed",
    "iter_checksum_mismatches",
]
