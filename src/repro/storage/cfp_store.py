"""On-disk formats for the CFP structures, and out-of-core mining.

**CFP-array file** (magic ``CFPA``): a header blob — version, ``n_ranks``,
buffer length, the item index (``starts``) — followed by the raw varint
buffer, page-aligned. :class:`DiskCfpArray` reads the buffer through a
:class:`repro.storage.BufferPool` and implements the same traversal
interface as the in-memory :class:`repro.core.CfpArray`, so
:func:`repro.core.cfp_growth.mine_array` runs unchanged against disk —
with every page fault observable in the pool statistics. Only the item
index stays in memory, as the paper's "small item index" does.

**CFP-tree checkpoint** (magic ``CFPT``): the arena's used prefix plus the
allocator state (next-free pointer, free-queue heads) and the tree's
metadata, so a build phase can be suspended and resumed exactly.

**Integrity (format version 2):** both formats append a *checksum trailer*
after the content pages — one little-endian CRC32 per content page (header
pages included), packed sequentially and padded to a page boundary. The
loaders verify every content page's checksum and raise
:class:`StorageFormatError` on the first mismatch; version-1 files (no
trailer) are still read. ``repro check`` / :mod:`repro.analysis.storecheck`
run the same verification offline and report every corrupt page.

**Partitioned CFP-array (format version 3):** the buffer is split by
leading-rank group into independently loadable, page-aligned partitions
described by a manifest (per-partition rank range, byte extent, first
data page, CRC32 of the raw bytes) appended to the header after the item
index. Header offsets are identical to v2 — the formerly reserved u32 at
offset 8 carries the partition count — so every v2 reader field parses
unchanged, and v1/v2 files still load. Partition payloads may be placed
in any file order (see :mod:`repro.storage.placement`); the manifest is
always in rank order. :class:`repro.storage.partitioned.PartitionedCfpArray`
mines these stores partition-at-a-time; see docs/formats.md §4.5.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import TYPE_CHECKING, Any, BinaryIO, Iterator, NamedTuple

from repro import faultinject
from repro.compress import varint
from repro.core.cfp_array import CfpArray, DecodedSubarray, _SubarrayCache
from repro.core.ternary import TernaryCfpTree
from repro.errors import ReproError, TreeError
from repro.memman.arena import Arena
from repro.obs import maybe_span
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import PAGE_SIZE, PageFile, fsync_dir

if TYPE_CHECKING:
    from repro.storage.placement import PlacementPolicy

_ARRAY_MAGIC = b"CFPA"
_TREE_MAGIC = b"CFPT"

#: Current monolithic on-disk format version (2 = CRC32 checksum trailer).
FORMAT_VERSION = 2

#: Partitioned CFP-array format version (3 = partition manifest + CRCs).
PARTITIONED_FORMAT_VERSION = 3

#: Versions the loaders accept.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Bytes per page checksum in the trailer (CRC32, ``<I``).
CHECKSUM_SIZE = 4

#: Default target payload bytes per partition when saving format v3.
DEFAULT_PARTITION_BYTES = 64 * PAGE_SIZE

#: One manifest record: first_rank, last_rank, byte_len, data_page, crc.
_PARTITION_RECORD = struct.Struct("<IIQQI")


class StorageFormatError(ReproError):
    """A file is not a valid CFP store."""


# ----------------------------------------------------------------------
# Page/checksum helpers (shared with repro.analysis.storecheck)
# ----------------------------------------------------------------------

def pages_needed(n_bytes: int) -> int:
    """Pages a blob occupies via :meth:`PageFile.append_blob` (min 1)."""
    return max(1, -(-n_bytes // PAGE_SIZE))


def _page_padded(blob: bytes) -> bytes:
    """Pad ``blob`` to a whole number of pages (at least one)."""
    return blob.ljust(pages_needed(len(blob)) * PAGE_SIZE, b"\x00")


def page_checksum(page: bytes) -> int:
    """CRC32 of one page's 4096 bytes."""
    return zlib.crc32(page) & 0xFFFFFFFF


def checksum_trailer(content: bytes) -> bytes:
    """Checksum trailer for page-aligned ``content``: one CRC32 per page."""
    checksums = bytearray()
    for offset in range(0, len(content), PAGE_SIZE):
        checksums += struct.pack("<I", page_checksum(content[offset : offset + PAGE_SIZE]))
    return bytes(checksums)


def trailer_pages(content_pages: int) -> int:
    """Pages the checksum trailer occupies for ``content_pages`` pages."""
    return pages_needed(content_pages * CHECKSUM_SIZE)


def iter_checksum_mismatches(
    pagefile: PageFile, content_pages: int
) -> Iterator[tuple[int, int, int]]:
    """Verify the trailer of an open v2 page file.

    Yields ``(page_no, stored_crc, actual_crc)`` for every content page
    whose checksum does not match. Yields nothing for an intact file.
    """
    trailer = bytearray()
    for page_no in range(content_pages, pagefile.page_count):
        trailer += pagefile.read_page(page_no)
    if len(trailer) < content_pages * CHECKSUM_SIZE:
        raise StorageFormatError(
            f"checksum trailer truncated: {len(trailer)} bytes for "
            f"{content_pages} content pages"
        )
    for page_no in range(content_pages):
        stored = struct.unpack_from("<I", trailer, page_no * CHECKSUM_SIZE)[0]
        actual = page_checksum(pagefile.read_page(page_no))
        if stored != actual:
            yield page_no, stored, actual


def _verify_content(pagefile: PageFile, content_pages: int, version: int) -> None:
    """Raise on the first checksum mismatch (no-op for version-1 files)."""
    if version < 2:
        return
    for page_no, stored, actual in iter_checksum_mismatches(pagefile, content_pages):
        raise StorageFormatError(
            f"page {page_no} checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )


def _write_pages(path: str | os.PathLike[str], content: bytes) -> int:
    """Atomically persist page content plus its checksum trailer.

    Writes go to a private (mode 0600) sibling temp file, fsynced before
    an ``os.replace`` onto ``path`` and followed by a directory fsync —
    so a crash at any point leaves either the old file or the complete
    new one, never a torn store, and a checkpoint carrying user data is
    never world-readable (not even transiently).
    """
    final = os.fspath(path)
    tmp = f"{final}.tmp.{os.getpid()}"
    try:
        with PageFile.create_private(tmp) as pagefile:
            pagefile.append_blob(content)
            pagefile.append_blob(checksum_trailer(content))
            size = pagefile.page_count * PAGE_SIZE
            pagefile.sync()
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    fsync_dir(os.path.dirname(final))
    return size


def _write_store(path: str | os.PathLike[str], header: bytes, payload: bytes) -> int:
    """Write header + payload page-aligned, then the checksum trailer."""
    return _write_pages(path, _page_padded(header) + _page_padded(payload))


# ----------------------------------------------------------------------
# CFP-array persistence
# ----------------------------------------------------------------------

class PartitionInfo(NamedTuple):
    """One manifest record of a partitioned (v3) CFP-array file.

    ``index`` is the rank-order position in the manifest; ``data_page``
    is the partition's first payload page in the *file*, which placement
    policies may order differently.
    """

    index: int
    first_rank: int
    last_rank: int
    byte_len: int
    data_page: int
    crc: int

    @property
    def pages(self) -> int:
        """File pages the partition payload occupies (page-padded, min 1)."""
        return pages_needed(self.byte_len)


class ArrayHeader(NamedTuple):
    """Parsed CFP-array file header."""

    version: int
    n_ranks: int
    buffer_len: int
    starts: list[int]
    data_page: int
    """First payload page (== number of header pages)."""

    partitions: tuple[PartitionInfo, ...] = ()
    """Partition manifest in rank order (empty for v1/v2 files)."""

    @property
    def payload_pages(self) -> int:
        if self.partitions:
            return sum(part.pages for part in self.partitions)
        if self.version >= PARTITIONED_FORMAT_VERSION:
            return 0
        return pages_needed(self.buffer_len)

    @property
    def content_pages(self) -> int:
        return self.data_page + self.payload_pages


def plan_partitions(
    starts: list[int], n_ranks: int, target_bytes: int
) -> list[tuple[int, int]]:
    """Greedily group contiguous leading ranks into partition rank ranges.

    Each range ``(first_rank, last_rank)`` accumulates subarrays until
    adding the next rank would exceed ``target_bytes`` (a single oversized
    rank still gets its own partition — ranges never split a subarray).
    Every rank ``1..n_ranks`` is covered exactly once, in order; empty
    trailing ranks ride along with the preceding group.
    """
    target = max(1, target_bytes)
    ranges: list[tuple[int, int]] = []
    first = 1
    acc = 0
    for rank in range(1, n_ranks + 1):
        size = starts[rank + 1] - starts[rank]
        if acc > 0 and acc + size > target:
            ranges.append((first, rank - 1))
            first = rank
            acc = 0
        acc += size
    if n_ranks >= 1:
        ranges.append((first, n_ranks))
    return ranges


def save_cfp_array(array: CfpArray, path: str | os.PathLike[str]) -> int:
    """Write a CFP-array to ``path``; returns the file size in bytes."""
    header = bytearray()
    header += _ARRAY_MAGIC
    header += struct.pack("<II", FORMAT_VERSION, 0)
    header += struct.pack("<QQ", array.n_ranks, len(array.buffer))
    for start in array.starts:
        header += struct.pack("<Q", start)
    with maybe_span("store_save_array", path=str(path)) as span:
        size = _write_store(path, bytes(header), bytes(array.buffer))
        span.set("bytes", size)
    return size


def _header_pages(n_ranks: int, n_partitions: int = 0) -> int:
    header_size = 4 + 8 + 16 + 8 * (n_ranks + 2)
    header_size += n_partitions * _PARTITION_RECORD.size
    return pages_needed(header_size)


def save_cfp_array_partitioned(
    array: CfpArray,
    path: str | os.PathLike[str],
    *,
    partition_bytes: int = DEFAULT_PARTITION_BYTES,
    placement: "PlacementPolicy | None" = None,
) -> int:
    """Write a CFP-array as a partitioned (v3) store; returns the file size.

    The buffer is split by :func:`plan_partitions` into leading-rank
    groups, each written page-aligned so it can be loaded (and prefetched)
    independently. ``placement`` decides the *file order* of the partition
    payloads (default: manifest order, i.e. append); the manifest records
    each partition's actual first page, so readers never care.
    """
    ranges = plan_partitions(array.starts, array.n_ranks, partition_bytes)
    n_partitions = len(ranges)
    header_pages = _header_pages(array.n_ranks, n_partitions)
    file_order = (
        placement.order(n_partitions)
        if placement is not None
        else list(range(n_partitions))
    )
    if sorted(file_order) != list(range(n_partitions)):
        raise StorageFormatError(
            f"placement order {file_order!r} is not a permutation of "
            f"{n_partitions} partitions"
        )
    buffer = bytes(array.buffer)
    records: list[PartitionInfo | None] = [None] * n_partitions
    payload = bytearray()
    next_page = header_pages
    for part_index in file_order:
        first_rank, last_rank = ranges[part_index]
        raw = buffer[array.starts[first_rank] : array.starts[last_rank + 1]]
        records[part_index] = PartitionInfo(
            part_index,
            first_rank,
            last_rank,
            len(raw),
            next_page,
            zlib.crc32(raw) & 0xFFFFFFFF,
        )
        padded = _page_padded(raw)
        payload += padded
        next_page += len(padded) // PAGE_SIZE
    header = bytearray()
    header += _ARRAY_MAGIC
    header += struct.pack("<II", PARTITIONED_FORMAT_VERSION, n_partitions)
    header += struct.pack("<QQ", array.n_ranks, len(buffer))
    for start in array.starts:
        header += struct.pack("<Q", start)
    for record in records:
        assert record is not None
        header += _PARTITION_RECORD.pack(
            record.first_rank,
            record.last_rank,
            record.byte_len,
            record.data_page,
            record.crc,
        )
    with maybe_span("store_save_array", path=str(path)) as span:
        content = _page_padded(bytes(header))
        if payload:
            content += bytes(payload)
        size = _write_pages(path, content)
        span.set("bytes", size)
        span.set("partitions", n_partitions)
    return size


def _parse_partition_manifest(
    header: bytes, n_ranks: int, n_partitions: int, starts: list[int], data_page: int
) -> tuple[PartitionInfo, ...]:
    """Unpack and validate the v3 manifest records in rank order."""
    manifest_offset = 28 + 8 * (n_ranks + 2)
    partitions: list[PartitionInfo] = []
    expected_first = 1
    for index in range(n_partitions):
        first_rank, last_rank, byte_len, part_page, crc = _PARTITION_RECORD.unpack_from(
            header, manifest_offset + index * _PARTITION_RECORD.size
        )
        if first_rank != expected_first or last_rank < first_rank or last_rank > n_ranks:
            raise StorageFormatError(
                f"inconsistent partition manifest: partition {index} covers "
                f"ranks {first_rank}..{last_rank}, expected to start at "
                f"{expected_first} within 1..{n_ranks}"
            )
        if byte_len != starts[last_rank + 1] - starts[first_rank]:
            raise StorageFormatError(
                f"inconsistent partition manifest: partition {index} claims "
                f"{byte_len} bytes but the item index spans "
                f"{starts[last_rank + 1] - starts[first_rank]}"
            )
        if part_page < data_page:
            raise StorageFormatError(
                f"inconsistent partition manifest: partition {index} data page "
                f"{part_page} overlaps the header ({data_page} header pages)"
            )
        partitions.append(
            PartitionInfo(index, first_rank, last_rank, byte_len, part_page, crc)
        )
        expected_first = last_rank + 1
    if n_partitions and expected_first != n_ranks + 1:
        raise StorageFormatError(
            f"inconsistent partition manifest: ranks {expected_first}..{n_ranks} "
            f"are covered by no partition"
        )
    claimed = sorted((p.data_page, p.pages) for p in partitions)
    next_free = data_page
    for page, pages in claimed:
        if page < next_free:
            raise StorageFormatError(
                f"inconsistent partition manifest: payload page {page} claimed twice"
            )
        next_free = page + pages
    return tuple(partitions)


def read_array_header(pagefile: PageFile) -> ArrayHeader:
    """Parse and sanity-check the header of an open CFP-array file."""
    first = pagefile.read_page(0)
    if first[:4] != _ARRAY_MAGIC:
        raise StorageFormatError("not a CFP-array file (bad magic)")
    version = struct.unpack_from("<I", first, 4)[0]
    if version not in SUPPORTED_VERSIONS:
        raise StorageFormatError(f"unsupported CFP-array version {version}")
    n_partitions = 0
    if version >= PARTITIONED_FORMAT_VERSION:
        n_partitions = struct.unpack_from("<I", first, 8)[0]
    n_ranks, buffer_len = struct.unpack_from("<QQ", first, 12)
    header_pages = _header_pages(n_ranks, n_partitions)
    if header_pages > pagefile.page_count:
        raise StorageFormatError(
            f"header needs {header_pages} pages but the file has "
            f"{pagefile.page_count}"
        )
    header = bytearray(first)
    for page_no in range(1, header_pages):
        header += pagefile.read_page(page_no)
    starts = list(struct.unpack_from(f"<{n_ranks + 2}Q", header, 28))
    partitions: tuple[PartitionInfo, ...] = ()
    if version >= PARTITIONED_FORMAT_VERSION:
        partitions = _parse_partition_manifest(
            bytes(header), n_ranks, n_partitions, starts, header_pages
        )
    return ArrayHeader(version, n_ranks, buffer_len, starts, header_pages, partitions)


def read_partition_bytes(pagefile: PageFile, part: PartitionInfo) -> bytes:
    """Read one partition's raw buffer bytes, verifying its manifest CRC."""
    raw = bytearray()
    for page_no in range(part.data_page, part.data_page + part.pages):
        raw += pagefile.read_page(page_no)
    data = bytes(raw[: part.byte_len])
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if actual != part.crc:
        raise StorageFormatError(
            f"partition {part.index} (ranks {part.first_rank}..{part.last_rank}) "
            f"CRC mismatch: stored {part.crc:#010x}, computed {actual:#010x}"
        )
    return data


def load_cfp_array(path: str | os.PathLike[str]) -> CfpArray:
    """Load a CFP-array fully into memory, verifying page checksums.

    Reads monolithic (v1/v2) and partitioned (v3) files alike; v3
    partitions are reassembled into rank order and their manifest CRCs
    verified on top of the page-checksum trailer.
    """
    with PageFile.open_readonly(path) as pagefile:
        header = read_array_header(pagefile)
        _verify_content(pagefile, header.content_pages, header.version)
        if header.partitions:
            blob = bytearray(header.buffer_len)
            for part in header.partitions:
                lo = header.starts[part.first_rank]
                blob[lo : lo + part.byte_len] = read_partition_bytes(pagefile, part)
        else:
            blob = bytearray()
            for page_no in range(header.data_page, header.content_pages):
                blob += pagefile.read_page(page_no)
    return CfpArray(header.n_ranks, bytearray(blob[: header.buffer_len]), header.starts)


class DiskCfpArray:
    """CFP-array traversals served from disk through a buffer pool.

    Implements the interface :func:`repro.core.cfp_growth.mine_array`
    needs, so CFP-growth's mine phase runs out-of-core unchanged. Pass
    ``verify=True`` to check every content page's CRC32 up front (reads
    the whole file once); by default only the header is parsed so opening
    stays O(1) in the array size.
    """

    #: Longest possible encoded triple (three 10-byte varints).
    _MAX_TRIPLE = 30

    def __init__(
        self,
        path: str | os.PathLike[str],
        pool_pages: int = 64,
        *,
        verify: bool = False,
    ) -> None:
        self._pagefile = PageFile.open_readonly(path)
        header = read_array_header(self._pagefile)
        if verify:
            _verify_content(self._pagefile, header.content_pages, header.version)
        self.n_ranks = header.n_ranks
        self.starts = header.starts
        self._buffer_len = header.buffer_len
        self._data_offset = header.data_page * PAGE_SIZE
        self.pool = BufferPool(self._pagefile, pool_pages)

    def close(self) -> None:
        self.pool.publish_metrics()
        self._pagefile.close()

    def __enter__(self) -> "DiskCfpArray":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Traversal interface (mirrors repro.core.CfpArray)
    # ------------------------------------------------------------------

    def _read_at(self, offset: int, size: int) -> bytes:
        size = min(size, self._buffer_len - offset)
        return self.pool.read(self._data_offset + offset, size)

    def _decode_triple(self, offset: int) -> tuple[int, int, int, int]:
        chunk = self._read_at(offset, self._MAX_TRIPLE)
        delta_item, pos = varint.decode_from(chunk, 0)
        dpos_raw, pos = varint.decode_from(chunk, pos)
        count, pos = varint.decode_from(chunk, pos)
        return delta_item, varint.unzigzag(dpos_raw), count, offset + pos

    def iter_subarray(self, rank: int) -> Iterator[tuple[int, int, int, int]]:
        start = self.starts[rank]
        end = self.starts[rank + 1]
        offset = start
        while offset < end:
            delta_item, dpos, count, next_offset = self._decode_triple(offset)
            yield offset - start, delta_item, dpos, count
            offset = next_offset

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            offset = self.starts[rank] + local
            chunk = self._read_at(offset, self._MAX_TRIPLE)
            delta_item, pos = varint.decode_from(chunk, 0)
            dpos_raw, __ = varint.decode_from(chunk, pos)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def prefix_paths(self, rank: int) -> list[tuple[list[int], int]]:
        """Prefix paths of every node in ``rank``'s subarray, in storage order.

        Mirrors :meth:`repro.core.CfpArray.prefix_paths` but resolves each
        ancestor through the buffer pool — the per-node backward walk *is*
        the out-of-core access pattern §4.3 measures, so no bulk-decode
        shortcut is taken here.
        """
        return [
            (self.path_ranks(rank, local), count)
            for local, __, __, count in self.iter_subarray(rank)
        ]

    def rank_support(self, rank: int) -> int:
        return sum(count for __, __, __, count in self.iter_subarray(rank))

    @property
    def cache_budget(self) -> int:
        """Decoded-subarray cache budget for conditional arrays (disabled:
        out-of-core runs measure the buffer pool, not an in-memory cache)."""
        return 0

    def active_ranks_descending(self) -> Iterator[int]:
        for rank in range(self.n_ranks, 0, -1):
            if self.starts[rank + 1] > self.starts[rank]:
                yield rank

    def subarray_bytes(self, rank: int) -> int:
        return self.starts[rank + 1] - self.starts[rank]

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: the buffer pool plus the in-memory item index."""
        return self.pool.capacity_bytes + (self.n_ranks + 1) * 5


class PooledCfpArray(CfpArray):
    """A read-only CFP-array served columnar-ly through a buffer pool.

    The serving-layer counterpart of :class:`DiskCfpArray`: the same
    ``CFPA`` file behind the same :class:`BufferPool`, but a subarray is
    fetched as **one** pool read and bulk-decoded into columns (LRU-cached
    under the usual byte budget), so the memoized ``prefix_paths`` resolve,
    the columnar kernels, and every other :class:`CfpArray` traversal run
    unchanged — in-memory asymptotics with pool-bounded residency.
    ``DiskCfpArray`` keeps its deliberate per-node walks because they *are*
    the out-of-core access pattern §4.3 measures; a query server wants the
    opposite trade.

    Only the item index and the decoded-subarray cache live in memory; the
    varint buffer itself is never materialized (``self.buffer`` stays
    empty, and every buffer-touching method is overridden to read through
    the pool).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        pool_pages: int = 64,
        cache_budget: int = 0,
        *,
        verify: bool = False,
    ) -> None:
        self._pagefile = PageFile.open_readonly(path)
        try:
            header = read_array_header(self._pagefile)
            if verify:
                _verify_content(self._pagefile, header.content_pages, header.version)
        except Exception:  # lint: ignore[INV004] - close-and-reraise: no pagefile may leak whatever the header read throws
            self._pagefile.close()
            raise
        # Deliberately no super().__init__: it demands the materialized
        # buffer this class exists to avoid. Every CfpArray field is set
        # here instead.
        self.n_ranks = header.n_ranks
        self.buffer = b""
        self.starts = header.starts
        self._node_count = None
        self._cache = _SubarrayCache(cache_budget) if cache_budget > 0 else None
        self._path_memo = None
        self._active_ranks = None
        self._buffer_len = header.buffer_len
        self._data_offset = header.data_page * PAGE_SIZE
        self.pool = BufferPool(self._pagefile, pool_pages)

    def close(self) -> None:
        self.pool.publish_metrics()
        self._pagefile.close()

    def __enter__(self) -> "PooledCfpArray":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _read_at(self, offset: int, size: int) -> bytes:
        size = min(size, self._buffer_len - offset)
        return self.pool.read(self._data_offset + offset, size)

    def subarray_columns(self, rank: int) -> DecodedSubarray:
        cache = self._cache
        if cache is not None:
            cached = cache.get(rank)
            if cached is not None:
                return cached
        self._check_rank(rank)
        start = self.starts[rank]
        length = self.starts[rank + 1] - start
        chunk = self._read_at(start, length)
        entry = DecodedSubarray(*varint.decode_triples_columns(chunk, 0, length))
        if cache is not None:
            cache.put(rank, entry, entry.decoded_bytes)
        return entry

    @property
    def node_count(self) -> int:
        """Lazy count via per-subarray terminator scans through the pool."""
        if self._node_count is None:
            total = 0
            for rank in range(1, self.n_ranks + 1):
                start = self.starts[rank]
                length = self.starts[rank + 1] - start
                if length:
                    chunk = self._read_at(start, length)
                    total += varint.count_triples(chunk, 0, length)
            self._node_count = total
        return self._node_count

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        self._check_rank(rank)
        offset = self.starts[rank] + local
        if not self.starts[rank] <= offset < self.starts[rank + 1]:
            raise TreeError(
                f"local offset {local} outside subarray of rank {rank}"
            )
        chunk = self._read_at(offset, DiskCfpArray._MAX_TRIPLE)
        delta_item, pos = varint.decode_from(chunk, 0)
        dpos_raw, pos = varint.decode_from(chunk, pos)
        count, __ = varint.decode_from(chunk, pos)
        return delta_item, varint.unzigzag(dpos_raw), count

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            delta_item, dpos, __ = self.node_at(rank, local)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - dpos
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def item_of_position(self, offset: int) -> int:
        if not 0 <= offset < self._buffer_len:
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: pool frames, item index, and the cache budget."""
        return (
            self.pool.capacity_bytes
            + (self.n_ranks + 1) * 5
            + self.cache_budget
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PooledCfpArray(n_ranks={self.n_ranks}, "
            f"pool_pages={self.pool.capacity_pages})"
        )


# ----------------------------------------------------------------------
# CFP-tree checkpointing
# ----------------------------------------------------------------------

class TreeHeader(NamedTuple):
    """Parsed CFP-tree checkpoint header."""

    version: int
    meta: dict[str, Any]
    data_page: int
    """First arena page (== number of header pages)."""

    @property
    def payload_pages(self) -> int:
        return pages_needed(int(self.meta["next_free"]))

    @property
    def content_pages(self) -> int:
        return self.data_page + self.payload_pages


def save_cfp_tree(
    tree: TernaryCfpTree,
    path: str | os.PathLike[str],
    extra_meta: dict[str, Any] | None = None,
) -> int:
    """Checkpoint a CFP-tree (arena contents + allocator + metadata).

    ``extra_meta`` rides along under the ``"extra"`` key for callers that
    checkpoint more than the tree — :meth:`repro.streaming.StreamingBuilder`
    stores its batch cursor and ItemTable fingerprint there. The tree
    restore path ignores it; :func:`load_cfp_tree_checkpoint` returns it.
    """
    arena = tree.arena
    meta = {
        "n_ranks": tree.n_ranks,
        "enable_chains": tree.enable_chains,
        "enable_embedding": tree.enable_embedding,
        "max_chain_length": tree.max_chain_length,
        "logical_node_count": tree.logical_node_count,
        "transaction_count": tree.transaction_count,
        "root_slot": tree._root_slot,
        "next_free": arena.used_bytes,
        "free_heads": {str(k): v for k, v in arena.free_queue_heads().items()},
        "free_bytes": arena.free_bytes,
        "capacity": arena.capacity,
        "max_chunk_size": arena.max_chunk_size,
    }
    if extra_meta is not None:
        meta["extra"] = extra_meta
    meta_blob = json.dumps(meta).encode("ascii")
    header = _TREE_MAGIC + struct.pack("<IQ", FORMAT_VERSION, len(meta_blob))
    with maybe_span("store_save_tree", path=str(path)) as span:
        size = _write_store(path, header + meta_blob, arena.snapshot())
        span.set("bytes", size)
    # Chaos hook: the `truncate` action tears the checkpoint that was just
    # written, simulating a crash mid-write — the recovery path
    # (StreamingBuilder.resume_or_restart) must detect and survive it.
    faultinject.fire("checkpoint.write", path=str(path))
    return size


def read_tree_header(pagefile: PageFile) -> TreeHeader:
    """Parse and sanity-check the header of an open CFP-tree checkpoint."""
    first = pagefile.read_page(0)
    if first[:4] != _TREE_MAGIC:
        raise StorageFormatError("not a CFP-tree checkpoint (bad magic)")
    version, meta_len = struct.unpack_from("<IQ", first, 4)
    if version not in SUPPORTED_VERSIONS:
        raise StorageFormatError(f"unsupported CFP-tree version {version}")
    header_len = 16 + meta_len
    header_pages = pages_needed(header_len)
    if header_pages > pagefile.page_count:
        raise StorageFormatError(
            f"header needs {header_pages} pages but the file has "
            f"{pagefile.page_count}"
        )
    header = bytearray(first)
    for page_no in range(1, header_pages):
        header += pagefile.read_page(page_no)
    try:
        meta = json.loads(bytes(header[16:header_len]).decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageFormatError(f"checkpoint metadata is not valid JSON: {exc}")
    if not isinstance(meta, dict):
        raise StorageFormatError("checkpoint metadata is not a JSON object")
    return TreeHeader(version, meta, header_pages)


def restore_tree(header: TreeHeader, blob: bytes) -> TernaryCfpTree:
    """Rebuild a tree from a parsed header and the raw arena prefix."""
    meta = header.meta
    arena = Arena.from_snapshot(
        blob,
        capacity=meta["capacity"],
        max_chunk_size=meta["max_chunk_size"],
        next_free=meta["next_free"],
        free_heads={int(k): v for k, v in meta["free_heads"].items()},
        free_bytes=meta["free_bytes"],
    )
    return TernaryCfpTree.restore(
        arena,
        n_ranks=meta["n_ranks"],
        root_slot=meta["root_slot"],
        logical_node_count=meta["logical_node_count"],
        transaction_count=meta["transaction_count"],
        enable_chains=meta["enable_chains"],
        enable_embedding=meta["enable_embedding"],
        max_chain_length=meta["max_chain_length"],
    )


def load_cfp_tree_checkpoint(
    path: str | os.PathLike[str],
) -> tuple[TernaryCfpTree, dict[str, Any]]:
    """Restore a checkpointed tree plus the saver's ``extra_meta`` dict.

    The extra dict is empty for checkpoints written without one (all
    pre-``extra`` files included), so callers can distinguish "no extra
    metadata recorded" from any recorded value.
    """
    with maybe_span("store_load_tree", path=str(path)):
        with PageFile.open_readonly(path) as pagefile:
            header = read_tree_header(pagefile)
            _verify_content(pagefile, header.content_pages, header.version)
            blob = bytearray()
            for page_no in range(header.data_page, header.content_pages):
                blob += pagefile.read_page(page_no)
        extra = header.meta.get("extra")
        if not isinstance(extra, dict):
            extra = {}
        return restore_tree(header, bytes(blob)), extra


def load_cfp_tree(path: str | os.PathLike[str]) -> TernaryCfpTree:
    """Restore a checkpointed CFP-tree (checksums verified); inserts may continue."""
    tree, __ = load_cfp_tree_checkpoint(path)
    return tree


__all__ = [
    "FORMAT_VERSION",
    "PARTITIONED_FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "CHECKSUM_SIZE",
    "DEFAULT_PARTITION_BYTES",
    "ArrayHeader",
    "PartitionInfo",
    "TreeHeader",
    "plan_partitions",
    "save_cfp_array",
    "save_cfp_array_partitioned",
    "load_cfp_array",
    "read_array_header",
    "read_partition_bytes",
    "read_tree_header",
    "restore_tree",
    "DiskCfpArray",
    "PooledCfpArray",
    "save_cfp_tree",
    "load_cfp_tree",
    "load_cfp_tree_checkpoint",
    "StorageFormatError",
    "page_checksum",
    "checksum_trailer",
    "trailer_pages",
    "pages_needed",
    "iter_checksum_mismatches",
]
