"""On-disk formats for the CFP structures, and out-of-core mining.

**CFP-array file** (magic ``CFPA``): a header blob — version, ``n_ranks``,
buffer length, the item index (``starts``) — followed by the raw varint
buffer, page-aligned. :class:`DiskCfpArray` reads the buffer through a
:class:`repro.storage.BufferPool` and implements the same traversal
interface as the in-memory :class:`repro.core.CfpArray`, so
:func:`repro.core.cfp_growth.mine_array` runs unchanged against disk —
with every page fault observable in the pool statistics. Only the item
index stays in memory, as the paper's "small item index" does.

**CFP-tree checkpoint** (magic ``CFPT``): the arena's used prefix plus the
allocator state (next-free pointer, free-queue heads) and the tree's
metadata, so a build phase can be suspended and resumed exactly.
"""

from __future__ import annotations

import json
import os
import struct

from repro.compress import varint
from repro.core.cfp_array import CfpArray
from repro.core.ternary import TernaryCfpTree
from repro.errors import ReproError
from repro.memman.arena import Arena
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import PAGE_SIZE, PageFile

_ARRAY_MAGIC = b"CFPA"
_TREE_MAGIC = b"CFPT"
_VERSION = 1


class StorageFormatError(ReproError):
    """A file is not a valid CFP store."""


# ----------------------------------------------------------------------
# CFP-array persistence
# ----------------------------------------------------------------------

def save_cfp_array(array: CfpArray, path: str | os.PathLike) -> int:
    """Write a CFP-array to ``path``; returns the file size in bytes."""
    header = bytearray()
    header += _ARRAY_MAGIC
    header += struct.pack("<II", _VERSION, 0)
    header += struct.pack("<QQ", array.n_ranks, len(array.buffer))
    for start in array.starts:
        header += struct.pack("<Q", start)
    with PageFile.create(path) as pagefile:
        pagefile.append_blob(bytes(header))
        pagefile.append_blob(bytes(array.buffer))
        size = pagefile.page_count * PAGE_SIZE
    return size


def _header_pages(n_ranks: int) -> int:
    header_size = 4 + 8 + 16 + 8 * (n_ranks + 2)
    return max(1, -(-header_size // PAGE_SIZE))


def load_cfp_array(path: str | os.PathLike) -> CfpArray:
    """Load a CFP-array fully into memory."""
    with PageFile.open_readonly(path) as pagefile:
        n_ranks, buffer_len, starts, data_page = _read_array_header(pagefile)
        blob = bytearray()
        for page_no in range(data_page, pagefile.page_count):
            blob += pagefile.read_page(page_no)
    return CfpArray(n_ranks, bytearray(blob[:buffer_len]), starts)


def _read_array_header(pagefile: PageFile):
    first = pagefile.read_page(0)
    if first[:4] != _ARRAY_MAGIC:
        raise StorageFormatError("not a CFP-array file (bad magic)")
    version = struct.unpack_from("<I", first, 4)[0]
    if version != _VERSION:
        raise StorageFormatError(f"unsupported CFP-array version {version}")
    n_ranks, buffer_len = struct.unpack_from("<QQ", first, 12)
    header_pages = _header_pages(n_ranks)
    header = bytearray(first)
    for page_no in range(1, header_pages):
        header += pagefile.read_page(page_no)
    starts = list(
        struct.unpack_from(f"<{n_ranks + 2}Q", header, 28)
    )
    return n_ranks, buffer_len, starts, header_pages


class DiskCfpArray:
    """CFP-array traversals served from disk through a buffer pool.

    Implements the interface :func:`repro.core.cfp_growth.mine_array`
    needs, so CFP-growth's mine phase runs out-of-core unchanged.
    """

    #: Longest possible encoded triple (three 10-byte varints).
    _MAX_TRIPLE = 30

    def __init__(self, path: str | os.PathLike, pool_pages: int = 64):
        self._pagefile = PageFile.open_readonly(path)
        n_ranks, buffer_len, starts, data_page = _read_array_header(self._pagefile)
        self.n_ranks = n_ranks
        self.starts = starts
        self._buffer_len = buffer_len
        self._data_offset = data_page * PAGE_SIZE
        self.pool = BufferPool(self._pagefile, pool_pages)

    def close(self) -> None:
        self._pagefile.close()

    def __enter__(self) -> "DiskCfpArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Traversal interface (mirrors repro.core.CfpArray)
    # ------------------------------------------------------------------

    def _read_at(self, offset: int, size: int) -> bytes:
        size = min(size, self._buffer_len - offset)
        return self.pool.read(self._data_offset + offset, size)

    def _decode_triple(self, offset: int) -> tuple[int, int, int, int]:
        chunk = self._read_at(offset, self._MAX_TRIPLE)
        delta_item, pos = varint.decode_from(chunk, 0)
        dpos_raw, pos = varint.decode_from(chunk, pos)
        count, pos = varint.decode_from(chunk, pos)
        return delta_item, varint.unzigzag(dpos_raw), count, offset + pos

    def iter_subarray(self, rank: int):
        start = self.starts[rank]
        end = self.starts[rank + 1]
        offset = start
        while offset < end:
            delta_item, dpos, count, next_offset = self._decode_triple(offset)
            yield offset - start, delta_item, dpos, count
            offset = next_offset

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            offset = self.starts[rank] + local
            chunk = self._read_at(offset, self._MAX_TRIPLE)
            delta_item, pos = varint.decode_from(chunk, 0)
            dpos_raw, __ = varint.decode_from(chunk, pos)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - varint.unzigzag(dpos_raw)
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def rank_support(self, rank: int) -> int:
        return sum(count for __, __, __, count in self.iter_subarray(rank))

    def active_ranks_descending(self):
        for rank in range(self.n_ranks, 0, -1):
            if self.starts[rank + 1] > self.starts[rank]:
                yield rank

    def subarray_bytes(self, rank: int) -> int:
        return self.starts[rank + 1] - self.starts[rank]

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: the buffer pool plus the in-memory item index."""
        return self.pool.capacity_bytes + (self.n_ranks + 1) * 5


# ----------------------------------------------------------------------
# CFP-tree checkpointing
# ----------------------------------------------------------------------

def save_cfp_tree(tree: TernaryCfpTree, path: str | os.PathLike) -> int:
    """Checkpoint a CFP-tree (arena contents + allocator + metadata)."""
    arena = tree.arena
    used = arena._next_free
    meta = {
        "n_ranks": tree.n_ranks,
        "enable_chains": tree.enable_chains,
        "enable_embedding": tree.enable_embedding,
        "max_chain_length": tree.max_chain_length,
        "logical_node_count": tree.logical_node_count,
        "transaction_count": tree.transaction_count,
        "root_slot": tree._root_slot,
        "next_free": used,
        "free_heads": {str(k): v for k, v in arena._free_heads.items()},
        "free_bytes": arena._free_bytes,
        "capacity": arena.capacity,
        "max_chunk_size": arena.max_chunk_size,
    }
    meta_blob = json.dumps(meta).encode("ascii")
    header = _TREE_MAGIC + struct.pack("<IQ", _VERSION, len(meta_blob))
    with PageFile.create(path) as pagefile:
        pagefile.append_blob(header + meta_blob)
        pagefile.append_blob(bytes(arena.buf[:used]))
        return pagefile.page_count * PAGE_SIZE


def load_cfp_tree(path: str | os.PathLike) -> TernaryCfpTree:
    """Restore a checkpointed CFP-tree; inserts may continue."""
    with PageFile.open_readonly(path) as pagefile:
        first = pagefile.read_page(0)
        if first[:4] != _TREE_MAGIC:
            raise StorageFormatError("not a CFP-tree checkpoint (bad magic)")
        version, meta_len = struct.unpack_from("<IQ", first, 4)
        if version != _VERSION:
            raise StorageFormatError(f"unsupported CFP-tree version {version}")
        header_len = 16 + meta_len
        header_pages = max(1, -(-header_len // PAGE_SIZE))
        header = bytearray(first)
        for page_no in range(1, header_pages):
            header += pagefile.read_page(page_no)
        meta = json.loads(bytes(header[16:header_len]).decode("ascii"))
        blob = bytearray()
        for page_no in range(header_pages, pagefile.page_count):
            blob += pagefile.read_page(page_no)
    arena = Arena(meta["capacity"], max_chunk_size=meta["max_chunk_size"])
    used = meta["next_free"]
    if used > len(arena.buf):
        arena._grow_to(used)
    arena.buf[:used] = blob[:used]
    arena._next_free = used
    arena._high_water = used
    arena._free_heads = {int(k): v for k, v in meta["free_heads"].items()}
    arena._free_bytes = meta["free_bytes"]
    tree = TernaryCfpTree.__new__(TernaryCfpTree)
    tree.n_ranks = meta["n_ranks"]
    tree.arena = arena
    tree.enable_chains = meta["enable_chains"]
    tree.enable_embedding = meta["enable_embedding"]
    tree.max_chain_length = meta["max_chain_length"]
    tree._root_slot = meta["root_slot"]
    tree.logical_node_count = meta["logical_node_count"]
    tree.transaction_count = meta["transaction_count"]
    return tree


__all__ = [
    "save_cfp_array",
    "load_cfp_array",
    "DiskCfpArray",
    "save_cfp_tree",
    "load_cfp_tree",
    "StorageFormatError",
]
