"""Partition-at-a-time out-of-core CFP-array reader (store format v3).

:class:`PartitionedCfpArray` serves the full :class:`repro.core.CfpArray`
traversal interface from a partitioned store while keeping resident only:

* the item index (``starts``) — the paper's "small item index",
* a **pinned hot set**: the most frequent ranks' encoded subarrays, read
  once at open and held outside the buffer pool. Ranks *are* the item
  table's frequency order (rank 1 = most frequent), and every backward
  ancestor walk moves strictly toward lower ranks, so the hot set absorbs
  exactly the cross-partition traffic that would otherwise thrash the
  pool while a high-rank partition is being mined,
* a :class:`~repro.storage.bufferpool.BufferPool` over the page file for
  the active partition's pages, and
* the optional decoded-subarray LRU cache shared with every other reader.

The mine loop (:func:`repro.core.cfp_growth.mine_array_partitioned`)
visits partitions in descending rank order and calls
:meth:`begin_partition` before mining each one; that hands the next
partition(s) in schedule order to a background
:class:`~repro.storage.bufferpool.Prefetcher`, so sequential read-ahead
overlaps the columnar mine of the active partition. ``REPRO_PREFETCH=0``
disables the thread; ``REPRO_PREFETCH_DEPTH`` sets how many partitions
ahead to request (default 1). Prefetch is pure opportunism — answers are
identical with it off, dead, or fault-injected (``pagefile.prefetch``).
"""

from __future__ import annotations

import os

from repro.compress import varint
from repro.core.cfp_array import CfpArray, DecodedSubarray, _SubarrayCache
from repro.errors import TreeError
from repro.storage.bufferpool import (
    BufferPool,
    Prefetcher,
    prefetch_depth,
    prefetch_enabled,
)
from repro.storage.cfp_store import (
    PARTITIONED_FORMAT_VERSION,
    PartitionInfo,
    StorageFormatError,
    _verify_content,
    read_array_header,
)
from repro.storage.pagefile import PAGE_SIZE, PageFile


class PartitionedCfpArray(CfpArray):
    """A v3 partitioned CFP-array mined partition-at-a-time through a pool.

    Subclasses :class:`CfpArray` the way
    :class:`~repro.storage.cfp_store.PooledCfpArray` does: the buffer is
    never materialized (``self.buffer`` stays empty) and every
    buffer-touching method is overridden to resolve through the hot set
    or the buffer pool. All recursive traversals (``prefix_paths``,
    ``_resolve_path``, ``single_path``, ``rank_support``) funnel through
    :meth:`subarray_columns`, so they run unchanged.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        pool_pages: int = 64,
        cache_budget: int = 0,
        *,
        hot_bytes: int = 0,
        prefetch: bool | None = None,
        readahead_partitions: int | None = None,
        verify: bool = False,
    ) -> None:
        self._pagefile = PageFile.open_readonly(path)
        try:
            header = read_array_header(self._pagefile)
            if header.version < PARTITIONED_FORMAT_VERSION:
                raise StorageFormatError(
                    f"not a partitioned CFP-array (format v{header.version}): "
                    f"open with PooledCfpArray/DiskCfpArray, or re-save with "
                    f"save_cfp_array_partitioned"
                )
            if verify:
                _verify_content(self._pagefile, header.content_pages, header.version)
        except Exception:  # lint: ignore[INV004] - close-and-reraise: no pagefile may leak whatever the header read throws
            self._pagefile.close()
            raise
        # Deliberately no super().__init__ (same as PooledCfpArray): it
        # demands the materialized buffer this class exists to avoid.
        self.n_ranks = header.n_ranks
        self.buffer = b""
        self.starts = header.starts
        self._node_count = None
        self._cache = _SubarrayCache(cache_budget) if cache_budget > 0 else None
        self._path_memo = None
        self._active_ranks = None
        self._buffer_len = header.buffer_len
        self.partitions: tuple[PartitionInfo, ...] = header.partitions
        self._rank_part = [0] * (self.n_ranks + 2)
        for part in self.partitions:
            for rank in range(part.first_rank, part.last_rank + 1):
                self._rank_part[rank] = part.index
        # Pinned hot set: most frequent ranks first (lowest rank numbers),
        # while their cumulative encoded bytes fit the hot budget. Read
        # directly from the page file — hot residency is accounted here,
        # not as pool traffic.
        self._hot: dict[int, bytes] = {}
        self._hot_bytes = 0
        budget = max(0, hot_bytes)
        for rank in range(1, self.n_ranks + 1):
            length = self.starts[rank + 1] - self.starts[rank]
            if length == 0:
                continue
            if self._hot_bytes + length > budget:
                break
            self._hot[rank] = self._read_span(self._file_offset(rank), length)
            self._hot_bytes += length
        self.pool = BufferPool(self._pagefile, pool_pages)
        if prefetch is None:
            prefetch = prefetch_enabled()
        depth = (
            readahead_partitions
            if readahead_partitions is not None
            else prefetch_depth()
        )
        self._prefetch_depth = max(0, depth)
        self._prefetcher: Prefetcher | None = (
            Prefetcher(self.pool) if prefetch and self._prefetch_depth > 0 else None
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._prefetcher is not None:
            self._prefetcher.close()
            self._prefetcher = None
        self.pool.publish_metrics()
        self._pagefile.close()

    def __enter__(self) -> "PartitionedCfpArray":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Partition scheduling (consumed by mine_array_partitioned)
    # ------------------------------------------------------------------

    def partitions_descending(self) -> list[PartitionInfo]:
        """Partitions in mine order: highest (least frequent) ranks first."""
        return list(reversed(self.partitions))

    def active_ranks_in_partition(self, part: PartitionInfo) -> list[int]:
        """Non-empty ranks of one partition, descending — the mine order.

        Concatenated across :meth:`partitions_descending` this is exactly
        :meth:`CfpArray.active_ranks_descending`, which is what makes the
        partitioned mine byte-identical to the monolithic one.
        """
        return [
            rank
            for rank in range(part.last_rank, part.first_rank - 1, -1)
            if self.starts[rank + 1] > self.starts[rank]
        ]

    def begin_partition(self, index: int) -> None:
        """Announce that partition ``index`` is about to be mined.

        Issues background read-ahead for the next partition(s) in the
        schedule (descending indices) so their pages stream in while the
        active partition is mined. A no-op when prefetch is disabled or
        the prefetcher thread has died — demand reads stay correct.
        """
        prefetcher = self._prefetcher
        if prefetcher is None:
            return
        for ahead in range(1, self._prefetch_depth + 1):
            upcoming = index - ahead
            if upcoming < 0:
                break
            part = self.partitions[upcoming]
            prefetcher.request(part.data_page, part.pages)

    def prefetch_drain(self, timeout: float = 5.0) -> None:
        """Wait for queued read-ahead (deterministic tests/benches only)."""
        if self._prefetcher is not None:
            self._prefetcher.drain(timeout)

    # ------------------------------------------------------------------
    # Buffer access through the hot set / pool
    # ------------------------------------------------------------------

    def _file_offset(self, rank: int) -> int:
        """Absolute file byte offset of ``rank``'s subarray."""
        part = self.partitions[self._rank_part[rank]]
        return part.data_page * PAGE_SIZE + (
            self.starts[rank] - self.starts[part.first_rank]
        )

    def _read_span(self, file_offset: int, length: int) -> bytes:
        """Read a byte span straight from the page file (hot-set load)."""
        if length == 0:
            return b""
        first_page = file_offset // PAGE_SIZE
        last_page = (file_offset + length - 1) // PAGE_SIZE
        blob = self._pagefile.read_pages(first_page, last_page - first_page + 1)
        start = file_offset - first_page * PAGE_SIZE
        return blob[start : start + length]

    def _fetch_rank_bytes(self, rank: int) -> bytes:
        """Encoded subarray bytes: pinned hot copy, or a pool read."""
        hot = self._hot.get(rank)
        if hot is not None:
            return hot
        length = self.starts[rank + 1] - self.starts[rank]
        if length == 0:
            return b""
        return self.pool.read(self._file_offset(rank), length)

    def subarray_columns(self, rank: int) -> DecodedSubarray:
        cache = self._cache
        if cache is not None:
            cached = cache.get(rank)
            if cached is not None:
                return cached
        self._check_rank(rank)
        chunk = self._fetch_rank_bytes(rank)
        entry = DecodedSubarray(*varint.decode_triples_columns(chunk, 0, len(chunk)))
        if cache is not None:
            cache.put(rank, entry, entry.decoded_bytes)
        return entry

    @property
    def node_count(self) -> int:
        """Lazy count via per-subarray terminator scans (no decode)."""
        if self._node_count is None:
            total = 0
            for rank in range(1, self.n_ranks + 1):
                chunk = self._fetch_rank_bytes(rank)
                if chunk:
                    total += varint.count_triples(chunk, 0, len(chunk))
            self._node_count = total
        return self._node_count

    def node_at(self, rank: int, local: int) -> tuple[int, int, int]:
        self._check_rank(rank)
        entry = self.subarray_columns(rank)
        index = entry.index_of(local)
        if index is None:
            raise TreeError(
                f"local offset {local} outside subarray of rank {rank}"
            )
        return entry.delta_items[index], entry.dposes[index], entry.counts[index]

    def path_ranks(self, rank: int, local: int) -> list[int]:
        path = []
        while True:
            delta_item, dpos, __ = self.node_at(rank, local)
            parent_rank = rank - delta_item
            if parent_rank == 0:
                break
            local = local - dpos
            rank = parent_rank
            path.append(rank)
        path.reverse()
        return path

    def item_of_position(self, offset: int) -> int:
        if not 0 <= offset < self._buffer_len:
            raise TreeError(f"offset {offset} outside the CFP-array buffer")
        low, high = 1, self.n_ranks
        while low < high:
            mid = (low + high + 1) // 2
            if self.starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        while self.starts[low + 1] == self.starts[low]:
            low -= 1
        return low

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def hot_bytes(self) -> int:
        """Encoded bytes pinned in the hot set."""
        return self._hot_bytes

    @property
    def hot_ranks(self) -> int:
        """Number of ranks pinned in the hot set."""
        return len(self._hot)

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: pool, item index, cache budget, and hot set."""
        return (
            self.pool.capacity_bytes
            + (self.n_ranks + 1) * 5
            + self.cache_budget
            + self._hot_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedCfpArray(n_ranks={self.n_ranks}, "
            f"partitions={len(self.partitions)}, "
            f"pool_pages={self.pool.capacity_pages}, "
            f"hot_bytes={self._hot_bytes})"
        )


__all__ = ["PartitionedCfpArray"]
