"""Write-placement policies for partitioned (v3) CFP-array stores.

A partitioned store's manifest records each partition's first data page
explicitly, so the *file order* of partition payloads is a free variable.
These policies decide it. The default appends partitions in rank order —
the sequential layout the mine-order prefetcher wants. The round-robin
alternate rotates the starting partition per rewrite generation so
repeated compaction spreads writes across the file instead of re-burning
the same leading pages — the wear-leveling concern the NVM literature
raises (see PAPERS.md) made pluggable at the placement layer.

Policies are pure: ``order(n)`` returns a permutation of ``range(n)``
naming which partition's payload is written next. The saver
(:func:`repro.storage.cfp_store.save_cfp_array_partitioned`) validates
the permutation and records the resulting page extents in the manifest,
so readers never consult the policy.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ReproError


class PlacementError(ReproError):
    """A placement policy name or parameter is invalid."""


class PlacementPolicy(Protocol):
    """Decides the file order of partition payloads in a v3 store."""

    def order(self, n_partitions: int) -> list[int]:
        """Return a permutation of ``range(n_partitions)`` — file order."""
        ...


class AppendPlacement:
    """Default policy: payloads in rank order (sequential-scan friendly)."""

    def order(self, n_partitions: int) -> list[int]:
        return list(range(n_partitions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AppendPlacement()"


class RoundRobinPlacement:
    """Wear-aware policy: rotate the starting partition per generation.

    Generation ``g`` writes partitions ``g % n, g % n + 1, ..`` (mod
    ``n``), so successive compaction rewrites land each partition on a
    different region of the file instead of always re-burning the front.
    """

    def __init__(self, generation: int = 0) -> None:
        if generation < 0:
            raise PlacementError(f"generation must be >= 0, got {generation}")
        self.generation = generation

    def order(self, n_partitions: int) -> list[int]:
        if n_partitions <= 0:
            return []
        shift = self.generation % n_partitions
        return [(shift + i) % n_partitions for i in range(n_partitions)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundRobinPlacement(generation={self.generation})"


#: Policy names accepted by the CLI and compaction config.
PLACEMENTS = ("append", "round-robin")


def get_placement(name: str, generation: int = 0) -> PlacementPolicy:
    """Resolve a policy by CLI name (``append`` or ``round-robin``)."""
    if name == "append":
        return AppendPlacement()
    if name == "round-robin":
        return RoundRobinPlacement(generation)
    raise PlacementError(
        f"unknown placement policy {name!r} (expected one of {', '.join(PLACEMENTS)})"
    )


__all__ = [
    "PlacementPolicy",
    "AppendPlacement",
    "RoundRobinPlacement",
    "PlacementError",
    "PLACEMENTS",
    "get_placement",
]
