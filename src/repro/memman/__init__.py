"""Memory management for the compressed prefix trees (paper Appendix A).

The ternary CFP-tree stores variable-size nodes (7-24 bytes) that grow and
shrink as transactions are inserted. The paper's memory manager serves these
from a large contiguous chunk of virtual memory:

* a *next-free* bump pointer separates used from unused memory,
* freed chunks of each size are kept in per-size queues, threaded through the
  freed memory itself (a 40-bit location fits in the 5-byte minimum chunk),
* allocation first pops the matching queue and only then bumps the pointer,

which avoids per-node ``malloc`` overhead and external fragmentation.

:class:`repro.memman.Arena` implements exactly this over a ``bytearray``, so
``arena.footprint_bytes`` is the physical byte count a C implementation would
use. :mod:`repro.memman.pointers` provides the 40-bit pointer codec shared
with the node formats, including the ``0xFF`` marker-byte rule that lets a
parent distinguish an embedded leaf from a real pointer.
"""

from repro.memman.arena import Arena, ArenaStats
from repro.memman.pointers import (
    MARKER_BYTE,
    NULL,
    POINTER_SIZE,
    max_encodable_address,
    read_pointer,
    write_pointer,
)

__all__ = [
    "Arena",
    "ArenaStats",
    "NULL",
    "POINTER_SIZE",
    "MARKER_BYTE",
    "read_pointer",
    "write_pointer",
    "max_encodable_address",
]
