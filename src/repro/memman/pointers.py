"""40-bit pointers with the embedded-leaf marker rule (paper §3.3).

The ternary CFP-tree shrinks every pointer from 64 to 40 bits — enough to
address 1 TB. Pointers are stored big-endian so that their *first* byte is
the most significant one; the value ``0xFF`` in that byte is reserved as the
marker that an embedded leaf node, not a pointer, occupies the slot. The
memory manager therefore never hands out addresses at or above
``0xFF00000000``.

Address ``0`` is the null pointer; the arena reserves its first bytes so no
chunk ever starts at 0.
"""

from __future__ import annotations

from typing import Union

from repro.errors import PointerRangeError

#: Read-only byte sources the pointer reader accepts.
Buffer = Union[bytes, bytearray, memoryview]

#: Size of an encoded pointer in bytes (40 bits).
POINTER_SIZE = 5

#: The null pointer.
NULL = 0

#: First-byte value reserved for embedded leaf nodes.
MARKER_BYTE = 0xFF

#: Exclusive upper bound on encodable addresses: the top byte must not be
#: 0xFF, so the largest usable address is just below ``0xFF << 32``.
_ADDRESS_LIMIT = MARKER_BYTE << 32


def max_encodable_address() -> int:
    """Largest address a 40-bit pointer may hold under the marker rule."""
    return _ADDRESS_LIMIT - 1


def write_pointer(buf: bytearray, offset: int, address: int) -> int:
    """Store ``address`` as a 5-byte big-endian pointer at ``offset``.

    Returns the offset just past the pointer. Raises
    :class:`PointerRangeError` for addresses that are negative or whose top
    byte would be the embedded-leaf marker.
    """
    if address < 0 or address >= _ADDRESS_LIMIT:
        raise PointerRangeError(
            f"address {address:#x} does not fit a 40-bit pointer "
            f"with reserved marker byte {MARKER_BYTE:#x}"
        )
    buf[offset] = address >> 32
    buf[offset + 1] = (address >> 24) & 0xFF
    buf[offset + 2] = (address >> 16) & 0xFF
    buf[offset + 3] = (address >> 8) & 0xFF
    buf[offset + 4] = address & 0xFF
    return offset + POINTER_SIZE


def read_pointer(buf: Buffer, offset: int) -> int:
    """Read a 5-byte big-endian pointer stored at ``offset``.

    Raises :class:`PointerRangeError` if the slot holds an embedded-leaf
    marker instead of a pointer — callers must check the marker byte first.
    """
    first = buf[offset]
    if first == MARKER_BYTE:
        raise PointerRangeError(
            f"slot at offset {offset} holds an embedded leaf, not a pointer"
        )
    return (
        (first << 32)
        | (buf[offset + 1] << 24)
        | (buf[offset + 2] << 16)
        | (buf[offset + 3] << 8)
        | buf[offset + 4]
    )
