"""Byte arena with per-size free queues (paper Appendix A).

The arena models the paper's memory manager faithfully:

* memory is one contiguous region; a **next-free** pointer separates the used
  prefix from untouched memory,
* chunks freed at each size ``b`` form a queue threaded through the freed
  memory itself — the first 5 bytes of a free chunk store the address of the
  next free chunk of the same size,
* ``alloc(b)`` pops the ``b``-byte queue if non-empty, otherwise carves a new
  chunk at the next-free pointer,
* when a node grows or shrinks from ``b1`` to ``b2`` bytes, a ``b2`` chunk is
  acquired, the node is copied, and the old ``b1`` chunk is enqueued.

The backing store is a ``bytearray`` that grows on demand (the paper reserves
5 GB of *virtual* memory up front; growing lazily is the Python equivalent —
the logical ``capacity`` plays the role of the reservation). All reported
sizes are exact byte counts of this buffer, which is what makes the
reproduction's memory numbers meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArenaExhaustedError, InvalidChunkError
from repro.memman.pointers import NULL, POINTER_SIZE, max_encodable_address

#: Smallest chunk the arena manages: a free chunk must hold a 5-byte link.
MIN_CHUNK_SIZE = POINTER_SIZE

#: Default logical capacity (256 MiB) — far more than any test needs, far
#: less than the 40-bit pointer limit.
DEFAULT_CAPACITY = 256 * 1024 * 1024

#: The buffer grows in blocks of this size to amortize reallocation.
_GROWTH_BLOCK = 64 * 1024

#: Bytes reserved at the start so that address 0 stays the null pointer.
_RESERVED_PREFIX = 8


@dataclass
class ArenaStats:
    """Point-in-time accounting snapshot of an :class:`Arena`."""

    footprint_bytes: int
    """Bytes between the reserved prefix and the next-free pointer — the
    contiguous region a C implementation would have touched."""

    live_bytes: int
    """Bytes in chunks currently handed out (footprint minus free chunks)."""

    free_bytes: int
    """Bytes sitting in free queues awaiting reuse."""

    high_water_bytes: int
    """Largest footprint ever reached."""

    alloc_count: int
    """Total number of successful allocations."""

    free_count: int
    """Total number of frees."""

    reuse_count: int
    """Allocations served from a free queue rather than the bump pointer."""


class Arena:
    """Bump-pointer arena with size-segregated free queues.

    Parameters
    ----------
    capacity:
        Logical capacity in bytes. Allocation beyond it raises
        :class:`ArenaExhaustedError` (the analogue of exceeding the paper's
        5 GB reservation). Must stay below the 40-bit pointer limit.
    max_chunk_size:
        Largest chunk size the arena will serve. The paper's node footprints
        span 7-24 bytes; chain nodes in this implementation can be larger, so
        the default is generous.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, *, max_chunk_size: int = 4096
    ) -> None:
        if capacity <= _RESERVED_PREFIX:
            raise ValueError(f"capacity too small: {capacity}")
        if capacity > max_encodable_address():
            raise ValueError(
                f"capacity {capacity} exceeds the 40-bit pointer address space"
            )
        if max_chunk_size < MIN_CHUNK_SIZE:
            raise ValueError(f"max_chunk_size too small: {max_chunk_size}")
        self.capacity = capacity
        self.max_chunk_size = max_chunk_size
        self.buf = bytearray(_GROWTH_BLOCK)
        self._next_free = _RESERVED_PREFIX
        self._free_heads: dict[int, int] = {}
        self._free_bytes = 0
        self._alloc_count = 0
        self._free_count = 0
        self._reuse_count = 0
        self._high_water = _RESERVED_PREFIX

    # ------------------------------------------------------------------
    # Allocation interface
    # ------------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate a ``size``-byte chunk and return its address.

        The chunk's contents are zeroed.
        """
        self._check_chunk_size(size)
        head = self._free_heads.get(size, NULL)
        if head != NULL:
            buf = self.buf
            next_head = int.from_bytes(buf[head : head + POINTER_SIZE], "big")
            self._free_heads[size] = next_head
            self._free_bytes -= size
            self._alloc_count += 1
            self._reuse_count += 1
            buf[head : head + size] = bytes(size)
            return head
        addr = self._next_free
        new_next = addr + size
        if new_next > self.capacity:
            raise ArenaExhaustedError(
                f"arena capacity {self.capacity} exhausted "
                f"(requested {size} bytes at {addr})"
            )
        if new_next > len(self.buf):
            self._grow_to(new_next)
        self._next_free = new_next
        if new_next > self._high_water:
            self._high_water = new_next
        self._alloc_count += 1
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return the chunk at ``addr`` of ``size`` bytes to its free queue."""
        self._check_chunk_size(size)
        self._check_chunk_range(addr, size)
        head = self._free_heads.get(size, NULL)
        self.buf[addr : addr + POINTER_SIZE] = head.to_bytes(POINTER_SIZE, "big")
        self._free_heads[size] = addr
        self._free_bytes += size
        self._free_count += 1

    def resize(self, addr: int, old_size: int, new_size: int) -> int:
        """Move a chunk to a new size, copying the common prefix.

        Implements the paper's grow/shrink protocol: acquire a ``new_size``
        chunk, copy ``min(old_size, new_size)`` bytes, enqueue the old chunk.
        Returns the new address (which may equal ``addr`` only by reuse
        coincidence after the copy; callers must always adopt the returned
        address).
        """
        if new_size == old_size:
            self._check_chunk_range(addr, old_size)
            return addr
        payload = bytes(self.buf[addr : addr + min(old_size, new_size)])
        self.free(addr, old_size)
        new_addr = self.alloc(new_size)
        self.buf[new_addr : new_addr + len(payload)] = payload
        return new_addr

    # ------------------------------------------------------------------
    # Raw access helpers
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Copy ``size`` bytes starting at ``addr``."""
        self._check_chunk_range(addr, size)
        return bytes(self.buf[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` (must fit in allocated space)."""
        self._check_chunk_range(addr, len(data))
        self.buf[addr : addr + len(data)] = data

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Absolute next-free pointer: one past the last carved-out byte.

        Addresses below this bound are the arena's *used region* (including
        the reserved prefix); this is the prefix a checkpoint must persist.
        """
        return self._next_free

    def snapshot(self) -> bytes:
        """Copy the used prefix of the backing buffer (for checkpointing)."""
        return bytes(self.buf[: self._next_free])

    def free_queue_heads(self) -> dict[int, int]:
        """Head address of each non-empty per-size free queue (a copy)."""
        return dict(self._free_heads)

    @classmethod
    def from_snapshot(
        cls,
        blob: bytes,
        *,
        capacity: int,
        max_chunk_size: int,
        next_free: int,
        free_heads: dict[int, int],
        free_bytes: int,
    ) -> "Arena":
        """Rebuild an arena from a :meth:`snapshot` plus allocator state.

        The restored arena is byte-identical over its used region, so
        chunk addresses recorded elsewhere (e.g. in tree slots) stay valid
        and allocation continues exactly where the snapshot left off.
        """
        arena = cls(capacity, max_chunk_size=max_chunk_size)
        if next_free < _RESERVED_PREFIX or next_free > capacity:
            raise InvalidChunkError(
                f"snapshot next-free pointer {next_free} outside "
                f"[{_RESERVED_PREFIX}, {capacity}]"
            )
        if next_free > len(arena.buf):
            arena._grow_to(next_free)
        arena.buf[:next_free] = blob[:next_free]
        arena._next_free = next_free
        arena._high_water = next_free
        arena._free_heads = dict(free_heads)
        arena._free_bytes = free_bytes
        return arena

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        """Bytes of arena actually carved out so far (used + free chunks)."""
        return self._next_free - _RESERVED_PREFIX

    @property
    def live_bytes(self) -> int:
        """Bytes in chunks currently handed out to callers."""
        return self.footprint_bytes - self._free_bytes

    @property
    def high_water_bytes(self) -> int:
        """Largest footprint reached over the arena's lifetime."""
        return self._high_water - _RESERVED_PREFIX

    @property
    def free_bytes(self) -> int:
        """Bytes currently sitting in free queues awaiting reuse."""
        return self._free_bytes

    def stats(self) -> ArenaStats:
        """Return a full accounting snapshot."""
        return ArenaStats(
            footprint_bytes=self.footprint_bytes,
            live_bytes=self.live_bytes,
            free_bytes=self._free_bytes,
            high_water_bytes=self.high_water_bytes,
            alloc_count=self._alloc_count,
            free_count=self._free_count,
            reuse_count=self._reuse_count,
        )

    def free_queue_length(self, size: int) -> int:
        """Number of chunks waiting in the ``size``-byte free queue."""
        self._check_chunk_size(size)
        count = 0
        addr = self._free_heads.get(size, NULL)
        while addr != NULL:
            count += 1
            addr = int.from_bytes(self.buf[addr : addr + POINTER_SIZE], "big")
        return count

    def reset(self) -> None:
        """Discard every allocation, keeping the backing buffer."""
        self._next_free = _RESERVED_PREFIX
        self._free_heads.clear()
        self._free_bytes = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grow_to(self, needed: int) -> None:
        target = len(self.buf)
        while target < needed:
            target += max(_GROWTH_BLOCK, target // 2)
        target = min(target, self.capacity)
        self.buf.extend(bytes(target - len(self.buf)))

    def _check_chunk_size(self, size: int) -> None:
        if not MIN_CHUNK_SIZE <= size <= self.max_chunk_size:
            raise InvalidChunkError(
                f"chunk size {size} outside "
                f"[{MIN_CHUNK_SIZE}, {self.max_chunk_size}]"
            )

    def _check_chunk_range(self, addr: int, size: int) -> None:
        if addr < _RESERVED_PREFIX or addr + size > self._next_free:
            raise InvalidChunkError(
                f"chunk [{addr}, {addr + size}) outside the used region "
                f"[{_RESERVED_PREFIX}, {self._next_free})"
            )
