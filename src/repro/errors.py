"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class. Each concrete subclass corresponds to one
failure domain (codec, arena, tree structure, dataset, experiment).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class CodecError(ReproError):
    """A value could not be encoded or a buffer could not be decoded."""


class ValueOutOfRangeError(CodecError):
    """A value does not fit the target encoding (e.g. negative or > 32 bits)."""


class CorruptBufferError(CodecError):
    """A buffer ends mid-value or contains an invalid byte pattern."""


class ArenaError(ReproError):
    """Base class for memory-manager failures."""


class ArenaExhaustedError(ArenaError):
    """The arena's configured capacity is exhausted."""


class PointerRangeError(ArenaError):
    """A pointer does not fit in 40 bits or points outside the arena."""


class InvalidChunkError(ArenaError):
    """A free/resize request referenced a chunk the arena never handed out."""


class TreeError(ReproError):
    """Base class for prefix-tree structural failures."""


class ChainOverflowError(TreeError):
    """A chain node exceeded the configured maximum chain length."""


class ConversionError(TreeError):
    """CFP-tree to CFP-array conversion failed an internal consistency check."""


class ParallelMineError(ReproError):
    """The parallel mine phase lost its worker pool or shared-memory segment."""


class ParallelBuildError(ReproError):
    """The parallel build phase lost a worker or produced inconsistent shards."""


class DatasetError(ReproError):
    """A dataset could not be parsed, generated, or validated."""


class ExperimentError(ReproError):
    """An experiment was configured inconsistently or produced invalid output."""
