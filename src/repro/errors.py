"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class. Each concrete subclass corresponds to one
failure domain (codec, arena, tree structure, dataset, experiment).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class CodecError(ReproError):
    """A value could not be encoded or a buffer could not be decoded."""


class ValueOutOfRangeError(CodecError):
    """A value does not fit the target encoding (e.g. negative or > 32 bits)."""


class CorruptBufferError(CodecError):
    """A buffer ends mid-value or contains an invalid byte pattern."""


class ArenaError(ReproError):
    """Base class for memory-manager failures."""


class ArenaExhaustedError(ArenaError):
    """The arena's configured capacity is exhausted."""


class PointerRangeError(ArenaError):
    """A pointer does not fit in 40 bits or points outside the arena."""


class InvalidChunkError(ArenaError):
    """A free/resize request referenced a chunk the arena never handed out."""


class TreeError(ReproError):
    """Base class for prefix-tree structural failures."""


class ChainOverflowError(TreeError):
    """A chain node exceeded the configured maximum chain length."""


class ConversionError(TreeError):
    """CFP-tree to CFP-array conversion failed an internal consistency check."""


class ParallelMineError(ReproError):
    """The parallel mine phase lost its worker pool or shared-memory segment."""


class ParallelBuildError(ReproError):
    """The parallel build phase lost a worker or produced inconsistent shards."""


class TransientIOError(ReproError):
    """An I/O operation failed in a way that a bounded retry may fix.

    Raised by the storage layer for retryable OS errors (``EINTR``,
    ``EAGAIN``, ``EIO``) and by the fault-injection layer's ``flake``
    action. :class:`repro.storage.BufferPool` retries these with backoff
    before letting them escape; the runtime supervisor classifies them
    as retryable when a worker surfaces one.
    """


class InjectedFault(ReproError):
    """An error raised on purpose by :mod:`repro.faultinject`.

    Deliberately *not* transient: the supervisor classifies it as a
    poisoned task, exercising the no-retry path. Use the ``flake``
    action (which raises :class:`TransientIOError`) to test retries.
    """


class FaultSpecError(ReproError):
    """A fault-injection spec string could not be parsed."""


class UnknownFaultSiteError(FaultSpecError):
    """A fault spec or ``fire()`` call named a site outside ``SITES``.

    Subclasses :class:`FaultSpecError` so existing broad handlers keep
    working; raised instead of silently never firing, which is how a
    typo in a ``REPRO_FAULTS`` spec used to pass a whole chaos run.
    """


class TaskTimeoutError(ReproError):
    """A supervised worker task exceeded its per-task deadline."""


class SupervisionError(ReproError):
    """Supervised parallel execution could not complete.

    Raised by :class:`repro.runtime.Supervisor` when retries are
    exhausted, a task fails deterministically (poisoned), or the worker
    pool cannot be (re)created. Carries the dominant
    :class:`repro.runtime.FailureKind` as ``kind`` (a string value) and
    a per-task failure summary so callers can decide whether to degrade
    to the serial path.
    """

    def __init__(self, message: str, kind: str = "", failures: dict | None = None):
        super().__init__(message)
        self.kind = kind
        self.failures: dict = failures or {}

    def __reduce__(self):
        return (type(self), (self.args[0], self.kind, self.failures))


class DatasetError(ReproError):
    """A dataset could not be parsed, generated, or validated."""


class ExperimentError(ReproError):
    """An experiment was configured inconsistently or produced invalid output."""


class StreamingError(ReproError):
    """An incremental merge, eviction, or snapshot flip was invalid."""
