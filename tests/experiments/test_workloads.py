"""Tests for the shared experiment workloads and their caching."""

import pytest

from repro.errors import DatasetError
from repro.experiments import workloads


class TestDatasetCache:
    def test_cached_identity(self):
        assert workloads.dataset("retail") is workloads.dataset("retail")

    def test_immutable_tuples(self):
        data = workloads.dataset("retail")
        assert isinstance(data, tuple)
        assert isinstance(data[0], tuple)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            workloads.dataset("nope")

    def test_fimi_size_positive(self):
        assert workloads.fimi_size("retail") > 1000


class TestPrepared:
    def test_cached_per_support(self):
        a = workloads.prepared("retail", 50)
        b = workloads.prepared("retail", 50)
        assert a is b
        c = workloads.prepared("retail", 60)
        assert c is not a

    def test_shape(self):
        n_ranks, transactions = workloads.prepared("retail", 50)
        assert n_ranks > 0
        for ranks in transactions[:20]:
            assert list(ranks) == sorted(set(ranks))
            assert all(1 <= r <= n_ranks for r in ranks)


class TestAbsoluteSupport:
    def test_scales_with_dataset(self):
        size = len(workloads.dataset("retail"))
        assert workloads.absolute_support("retail", 0.10) == round(0.10 * size)

    def test_floor_of_two(self):
        assert workloads.absolute_support("retail", 0.0) == 2

    def test_sweep_grids_monotone(self):
        assert list(workloads.FIG7_SUPPORTS) == sorted(
            workloads.FIG7_SUPPORTS, reverse=True
        )
        assert list(workloads.FIG8_SUPPORTS) == sorted(
            workloads.FIG8_SUPPORTS, reverse=True
        )

    def test_fig6_levels_descend(self):
        levels = list(workloads.FIG6_SUPPORT_LEVELS.values())
        assert levels == sorted(levels, reverse=True)

    def test_every_fig6_dataset_generates(self):
        for name in workloads.FIG6_DATASET_ARGS:
            assert len(workloads.dataset(name)) > 0
