"""Tests for the ASCII chart renderer."""

from repro.experiments.plot import MARKERS, ascii_chart, _format_value


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="T")

    def test_single_series_markers_present(self):
        chart = ascii_chart({"a": [(1, 1), (10, 10), (100, 100)]})
        assert chart.count("o") >= 3 + 1  # points plus legend

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"a": [(1, 1)], "b": [(100, 100)]})
        assert "o a" in chart
        assert "x b" in chart

    def test_monotone_series_renders_diagonal(self):
        chart = ascii_chart({"s": [(10**i, 10**i) for i in range(5)]}, width=20, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        positions = []
        for row_index, line in enumerate(rows):
            column = line.find("o")
            if column >= 0:
                positions.append((row_index, column))
        # Lower rows (larger index) hold smaller y -> smaller x columns.
        assert positions == sorted(positions, key=lambda p: (p[0], -p[1]))

    def test_axis_labels(self):
        chart = ascii_chart(
            {"a": [(1, 2), (1000, 2000)]},
            x_label="tree nodes",
            y_label="seconds",
            title="T",
        )
        assert chart.startswith("T")
        assert "tree nodes" in chart
        assert "seconds" in chart
        assert "1k" in chart  # x_high
        assert "2k" in chart  # y_high

    def test_non_positive_values_clamped(self):
        chart = ascii_chart({"a": [(0, 0), (10, 10)]})
        assert "|" in chart  # renders without error

    def test_marker_cycle(self):
        series = {f"s{i}": [(1 + i, 1 + i)] for i in range(10)}
        chart = ascii_chart(series)
        for i in range(10):
            assert f"{MARKERS[i % len(MARKERS)]} s{i}" in chart


class TestFormatValue:
    def test_ranges(self):
        assert _format_value(5) == "5"
        assert _format_value(1500) == "1.5k"
        assert _format_value(2_500_000) == "2.5M"
        assert _format_value(0.25) == "0.25"
