"""Tests for the run-everything summary driver (on a fast subset)."""

from repro.experiments.summary import EXPERIMENTS, run_all


class TestSummary:
    def test_subset_writes_reports(self, tmp_path):
        reports = run_all(str(tmp_path), only=("table3",))
        assert set(reports) == {"table3"}
        assert (tmp_path / "table3.txt").exists()
        assert "Table 3" in (tmp_path / "table3.txt").read_text()

    def test_experiment_list_covers_modules(self):
        import importlib

        for module_name, __, kwargs in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert hasattr(module, "run")
            assert hasattr(module, "format_report")
            assert isinstance(kwargs, dict)

    def test_unknown_subset_is_empty(self, tmp_path):
        assert run_all(str(tmp_path), only=("nope",)) == {}
