"""Tests for the metered experiment drivers."""

import pytest

from repro.algorithms.bruteforce import brute_force
from repro.errors import ExperimentError
from repro.experiments.drivers import initial_tree_size, run_metered
from repro.machine import MachineSpec
from repro.util.items import prepare_transactions
from tests.conftest import random_database

DRIVER_NAMES = (
    "cfp-growth",
    "fp-growth",
    "nonordfp",
    "fp-array",
    "fp-growth-tiny",
    "lcm",
    "afopt",
    "ct-pro",
)


@pytest.fixture(scope="module")
def workload():
    db = random_database(21, n_transactions=60, n_items=12, max_length=8)
    table, transactions = prepare_transactions(db, 3)
    expected = len(brute_force(db, 3))
    return db, transactions, len(table), expected


@pytest.mark.parametrize("name", DRIVER_NAMES)
class TestEveryDriver:
    def test_itemset_count_matches_oracle(self, name, workload):
        __, transactions, n_ranks, expected = workload
        result = run_metered(name, transactions, n_ranks, 3, fimi_bytes=1000)
        assert result.itemset_count == expected, name

    def test_phases_and_accounting(self, name, workload):
        __, transactions, n_ranks, __ = workload
        result = run_metered(name, transactions, n_ranks, 3, fimi_bytes=1000)
        phase_names = [p.name for p in result.meter.phases]
        assert phase_names[0] == "scan"
        assert "build" in phase_names
        assert "mine" in phase_names
        assert result.peak_bytes > 0
        assert result.total_seconds > 0
        assert result.meter.phases[0].io_bytes == 2000  # two passes

    def test_structures_balanced(self, name, workload):
        __, transactions, n_ranks, __ = workload
        result = run_metered(name, transactions, n_ranks, 3, fimi_bytes=1000)
        # Conditional structures must all be freed; at most the top-level
        # structures may stay live, never more than the peak.
        assert 0 <= result.meter.live_bytes <= result.peak_bytes


class TestDriverMachineInteraction:
    def test_smaller_memory_slower_or_equal(self, workload):
        __, transactions, n_ranks, __ = workload
        big = run_metered(
            "fp-growth",
            transactions,
            n_ranks,
            3,
            1000,
            MachineSpec(physical_memory=1 << 30),
        )
        tiny = run_metered(
            "fp-growth",
            transactions,
            n_ranks,
            3,
            1000,
            MachineSpec(physical_memory=1 << 10),
        )
        assert tiny.total_seconds > big.total_seconds
        assert tiny.estimate.thrashed

    def test_cfp_peak_below_fp_peak(self, workload):
        __, transactions, n_ranks, __ = workload
        fp = run_metered("fp-growth", transactions, n_ranks, 3, 1000)
        cfp = run_metered("cfp-growth", transactions, n_ranks, 3, 1000)
        assert cfp.peak_bytes < fp.peak_bytes

    def test_unknown_algorithm(self, workload):
        __, transactions, n_ranks, __ = workload
        with pytest.raises(ExperimentError):
            run_metered("nope", transactions, n_ranks, 3, 1000)

    def test_initial_tree_size(self, workload):
        __, transactions, n_ranks, __ = workload
        nodes = initial_tree_size(transactions, n_ranks)
        assert nodes > 0
        result = run_metered(
            "fp-growth", transactions, n_ranks, 3, 1000, tree_nodes=nodes
        )
        assert result.initial_tree_nodes == nodes
