"""Fast smoke tests of the experiment run/format pairs (small configs)."""

import pytest

from repro.experiments import ablations, fig6, fig7, fig8, table1, table2, table3
from repro.experiments.report import human_bytes, percent, seconds, table


class TestReportHelpers:
    def test_percent_styles(self):
        assert percent(0.0) == "0%"
        assert percent(0.005) == "<1%"
        assert percent(0.98) == "98%"
        assert percent(0.995) == ">99%"
        assert percent(1.0) == "100%"

    def test_human_bytes(self):
        assert human_bytes(10) == "10B"
        assert human_bytes(2048) == "2.00kB"
        assert human_bytes(3 * 1024**2) == "3.00MB"

    def test_seconds(self):
        assert seconds(0.005) == "5.0ms"
        assert seconds(2.5) == "2.5s"
        assert seconds(120) == "2.0min"
        assert seconds(7200) == "2.00h"

    def test_table_alignment(self):
        text = table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[2:])


class TestTables:
    def test_table1_small(self):
        result = table1.run("retail", 0.02)
        report = table1.format_report(result)
        assert "Table 1" in report
        assert result.node_count > 0
        for dist in result.distributions.values():
            assert dist.total == result.node_count

    def test_table2_small(self):
        result = table2.run("retail", 0.02)
        report = table2.format_report(result)
        assert "Table 2" in report
        # §3.2: sum of pcounts equals the number of (prepared) transactions.
        assert result.transaction_count > 0

    def test_table3(self):
        result = table3.run()
        report = table3.format_report(result)
        assert "2x" in report


class TestFigures:
    def test_fig6_subset(self):
        result = fig6.run(datasets=("retail",), levels={"high": 0.05})
        assert len(result.cells) == 1
        cell = result.cell("retail", "high")
        assert cell.tree_bytes_per_node > 0
        assert "Figure 6" in fig6.format_report(result)
        with pytest.raises(KeyError):
            result.cell("retail", "nope")

    def test_fig7_two_points(self):
        result = fig7.run(supports=(0.10, 0.05))
        assert len(result.points) == 2
        report = fig7.format_report(result)
        for marker in ("(a)", "(b)", "(c)", "(d)", "speedup"):
            assert marker in report
        series = result.series("cfp-growth", lambda r: r.total_seconds)
        assert len(series) == 2
        assert series[0][0] <= series[1][0]

    def test_fig8_two_points(self):
        result = fig8.run(
            algorithms=("cfp-growth", "lcm"), supports=(0.10, 0.05)
        )
        assert len(result.points) == 2
        report = fig8.format_report(result, "(test)")
        assert "runtime vs minimum support" in report
        assert "peak memory" in report

    def test_ablations_small(self):
        result = ablations.run("retail", 0.01)
        report = ablations.format_report(result)
        assert "Design ablations" in report
        assert result.delta_item_bytes <= result.raw_item_bytes
        assert set(result.tree_by_chain_length) == {2, 4, 8, 15}
