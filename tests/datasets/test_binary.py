"""Tests for the binary dataset format (§4.1 footnote)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.binary import read_binary, write_binary
from repro.datasets.fimi import write_fimi
from repro.datasets.synthetic import make_dataset
from repro.errors import DatasetError


class TestRoundtrip:
    def test_simple(self, tmp_path):
        path = tmp_path / "d.bin"
        db = [[1, 2, 3], [10, 20], [5]]
        write_binary(path, db)
        assert read_binary(path) == db

    def test_items_sorted_deduplicated(self, tmp_path):
        path = tmp_path / "d.bin"
        write_binary(path, [[3, 1, 3, 2]])
        assert read_binary(path) == [[1, 2, 3]]

    def test_empty_database(self, tmp_path):
        path = tmp_path / "d.bin"
        write_binary(path, [])
        assert read_binary(path) == []

    def test_empty_transactions_skipped(self, tmp_path):
        path = tmp_path / "d.bin"
        write_binary(path, [[1], [], [2]])
        assert read_binary(path) == [[1], [2]]

    def test_negative_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_binary(tmp_path / "d.bin", [[-1]])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"XXXX\x00")
        with pytest.raises(DatasetError):
            read_binary(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "d.bin"
        write_binary(path, [[1]])
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(DatasetError):
            read_binary(path)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=100_000),
                min_size=1,
                max_size=15,
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, database):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".bin")
        os.close(fd)
        try:
            write_binary(path, database)
            expected = [sorted(set(t)) for t in database if t]
            assert read_binary(path) == expected
        finally:
            os.unlink(path)


class TestSizeClaim:
    def test_smaller_than_text(self, tmp_path):
        """§4.1: binary is roughly 40% smaller than the FIMI text format."""
        db = make_dataset("retail", n_transactions=1000, seed=1)
        text = tmp_path / "d.fimi"
        binary = tmp_path / "d.bin"
        write_fimi(text, db)
        binary_size = write_binary(binary, db)
        text_size = text.stat().st_size
        assert binary_size < 0.75 * text_size
