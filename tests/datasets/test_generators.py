"""Tests for the Quest generator and the FIMI proxy generators."""

import pytest

from repro.datasets import FIMI_PROXIES, QuestGenerator, dataset_stats, make_dataset
from repro.errors import DatasetError


class TestQuestGenerator:
    def test_deterministic(self):
        a = QuestGenerator(n_transactions=200, seed=5).generate()
        b = QuestGenerator(n_transactions=200, seed=5).generate()
        assert a == b

    def test_seed_changes_output(self):
        a = QuestGenerator(n_transactions=200, seed=5).generate()
        b = QuestGenerator(n_transactions=200, seed=6).generate()
        assert a != b

    def test_transactions_sorted_unique_in_range(self):
        db = QuestGenerator(n_transactions=300, n_items=50, seed=1).generate()
        assert len(db) == 300
        for transaction in db:
            assert transaction == sorted(set(transaction))
            assert all(0 <= item < 50 for item in transaction)

    def test_average_length_near_target(self):
        generator = QuestGenerator(
            n_transactions=2_000, avg_transaction_length=12.0, n_items=500, seed=3
        )
        db = generator.generate()
        avg = sum(len(t) for t in db) / len(db)
        assert 6.0 < avg < 20.0

    def test_patterns_create_correlation(self):
        # Pattern-based data must contain far more repeated pairs than
        # independent uniform sampling would.
        generator = QuestGenerator(
            n_transactions=1_000,
            avg_transaction_length=8,
            n_items=2_000,
            n_patterns=20,
            seed=9,
        )
        from collections import Counter
        from itertools import combinations

        pair_counts = Counter()
        for transaction in generator.generate():
            pair_counts.update(combinations(transaction[:12], 2))
        assert pair_counts.most_common(1)[0][1] > 20

    def test_quest2_doubles_quest1(self):
        q1 = QuestGenerator.quest1(scale=0.01)
        q2 = QuestGenerator.quest2(scale=0.01)
        assert q2.n_transactions == 2 * q1.n_transactions

    def test_validation(self):
        with pytest.raises(DatasetError):
            QuestGenerator(n_items=0)
        with pytest.raises(DatasetError):
            QuestGenerator(avg_transaction_length=0)
        with pytest.raises(DatasetError):
            QuestGenerator(n_patterns=0)

    def test_iter_matches_generate(self):
        generator = QuestGenerator(n_transactions=50, seed=2)
        assert list(generator.iter_transactions()) == generator.generate()


class TestProxies:
    @pytest.mark.parametrize("name", sorted(FIMI_PROXIES))
    def test_generates_valid_database(self, name):
        kwargs = {"scale": 0.02} if name.startswith("quest") else {
            "n_transactions": 200
        }
        db = make_dataset(name, **kwargs)
        assert len(db) > 0
        for transaction in db:
            assert transaction == sorted(set(transaction))
            assert all(item >= 0 for item in transaction)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            make_dataset("nope")

    def test_connect_is_dense_and_fixed_length(self):
        db = make_dataset("connect", n_transactions=300)
        lengths = [len(t) for t in db]
        assert min(lengths) >= 39  # 43 minus a few mutation collisions
        stats = dataset_stats("connect", db)
        assert stats.distinct_items <= 130

    def test_webdocs_has_long_transactions(self):
        db = make_dataset("webdocs", n_transactions=300)
        avg = sum(len(t) for t in db) / len(db)
        assert avg > 40

    def test_retail_is_sparse(self):
        db = make_dataset("retail", n_transactions=500)
        stats = dataset_stats("retail", db)
        assert stats.avg_item_cardinality < 20
        assert stats.distinct_items > 100


class TestDatasetStats:
    def test_counts(self):
        stats = dataset_stats("toy", [[1, 2], [2, 3, 4], [2]])
        assert stats.n_transactions == 3
        assert stats.distinct_items == 4
        assert stats.avg_item_cardinality == pytest.approx(2.0)

    def test_fimi_bytes_matches_written_file(self, tmp_path):
        from repro.datasets import write_fimi

        db = [[1, 22, 333], [4444]]
        stats = dataset_stats("toy", db)
        path = tmp_path / "x.fimi"
        write_fimi(path, db)
        assert stats.fimi_bytes == path.stat().st_size

    def test_empty_database(self):
        stats = dataset_stats("empty", [])
        assert stats.n_transactions == 0
        assert stats.avg_item_cardinality == 0.0

    def test_row_formats(self):
        row = dataset_stats("toy", [[1, 2]]).row()
        assert "toy" in row
